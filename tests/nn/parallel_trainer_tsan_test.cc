// Concurrency stress tests for the threaded data-parallel trainer. These exist to run
// under ThreadSanitizer (-DESPRESSO_SANITIZE=thread): each test drives the ThreadPool
// from the fault-injection contention path hard enough that any unsynchronized access
// in ThreadPool, MLP::ComputeGradients, or the trainer's fan-out shows up as a race.
// They also pass (as plain determinism checks) in non-sanitized builds.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "src/compress/compressor.h"
#include "src/fault/fault_plan.h"
#include "src/nn/dataset.h"
#include "src/nn/parallel_trainer.h"
#include "src/util/thread_pool.h"

namespace espresso {
namespace {

// A contention schedule from the fault layer: iterations where a CPU spike is active
// submit extra busywork to the pool, mimicking compression workers competing with
// gradient workers for the same lanes.
FaultPlan ContentionPlan() {
  FaultSpec spec;
  spec.seed = 7;
  spec.cpu_contention_probability = 0.5;
  spec.cpu_slowdown = 4.0;
  return FaultPlan(spec);
}

TEST(ParallelTrainerTsan, ThreadPoolSurvivesFaultDrivenContention) {
  const FaultPlan plan = ContentionPlan();
  ThreadPool pool(4);
  std::atomic<uint64_t> work{0};
  for (size_t iteration = 0; iteration < 200; ++iteration) {
    const IterationFaults faults = plan.AtIteration(iteration);
    const size_t tasks = faults.cpu_contention_active ? 16 : 4;
    for (size_t t = 0; t < tasks; ++t) {
      pool.Submit([&work] {
        uint64_t local = 0;
        for (int i = 0; i < 1000; ++i) {
          local += static_cast<uint64_t>(i) * 2654435761u;
        }
        work.fetch_add(local, std::memory_order_relaxed);
      });
    }
    pool.Wait();  // synchronous-iteration barrier, as in the trainer
  }
  EXPECT_GT(work.load(), 0u);
}

TEST(ParallelTrainerTsan, ConcurrentPoolsDoNotInterfere) {
  // Two independent pools hammered from two driver threads — the shape of trainer +
  // background fault injector running side by side.
  std::atomic<int> counter{0};
  auto hammer = [&counter] {
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
      for (int t = 0; t < 8; ++t) {
        pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.Wait();
    }
  };
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(counter.load(), 2 * 50 * 8);
}

TEST(ParallelTrainerTsan, ThreadedTrainingMatchesInlineTraining) {
  // The threaded fan-out must be bit-identical to the inline schedule: same shards,
  // same reduction order, no shared mutable state between workers.
  const Dataset all = MakeGaussianBlobs(768, 8, 3, 2.5, 7);
  const Dataset train = Slice(all, 0, 512);
  const Dataset test = Slice(all, 512, 256);

  TrainConfig config;
  config.workers = 4;
  config.hidden_dim = 16;
  config.batch_per_worker = 16;
  config.epochs = 3;
  config.scheme = SyncScheme::kExactAllreduce;
  config.seed = 11;

  config.threads = 0;
  const std::vector<EpochStats> inline_stats = TrainDataParallel(train, test, config);
  config.threads = 4;
  const std::vector<EpochStats> threaded_stats = TrainDataParallel(train, test, config);

  ASSERT_EQ(inline_stats.size(), threaded_stats.size());
  for (size_t e = 0; e < inline_stats.size(); ++e) {
    EXPECT_DOUBLE_EQ(inline_stats[e].train_loss, threaded_stats[e].train_loss);
    EXPECT_DOUBLE_EQ(inline_stats[e].test_accuracy, threaded_stats[e].test_accuracy);
  }
}

TEST(ParallelTrainerTsan, ThreadedCompressedTrainingIsRaceFreeUnderContention) {
  // Compressed divisible sync with threads > workers' natural parallelism, repeated
  // across fault-plan iterations so contention-active and quiet epochs interleave.
  const Dataset all = MakeGaussianBlobs(384, 8, 3, 2.5, 13);
  const Dataset train = Slice(all, 0, 256);
  const Dataset test = Slice(all, 256, 128);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.25});

  TrainConfig config;
  config.workers = 4;
  config.hidden_dim = 16;
  config.batch_per_worker = 16;
  config.epochs = 2;
  config.scheme = SyncScheme::kCompressedDivisible;
  config.compressor = compressor.get();
  config.seed = 11;
  config.threads = 8;

  const std::vector<EpochStats> stats = TrainDataParallel(train, test, config);
  ASSERT_EQ(stats.size(), 2u);
  for (const EpochStats& s : stats) {
    EXPECT_TRUE(std::isfinite(s.train_loss));
  }
}

}  // namespace
}  // namespace espresso

// Convergence validation (§5.4 / Figure 16, at laptop scale): data-parallel training
// with real compressed gradient exchange + error feedback reaches FP32-level accuracy.
#include <gtest/gtest.h>

#include "src/nn/parallel_trainer.h"

namespace espresso {
namespace {

struct ConvergenceSetup {
  const char* algorithm;
  SyncScheme scheme;
};

class ConvergenceParam : public ::testing::TestWithParam<ConvergenceSetup> {};

TrainConfig BaseConfig() {
  TrainConfig config;
  config.workers = 4;
  config.hidden_dim = 24;
  config.batch_per_worker = 16;
  config.learning_rate = 0.05;
  config.epochs = 20;
  config.seed = 1234;
  return config;
}

TEST_P(ConvergenceParam, CompressedTrainingMatchesFp32Accuracy) {
  const Dataset all = MakeGaussianBlobs(1536, 12, 4, 2.5, 99);
  const Dataset train = Slice(all, 0, 1024);
  const Dataset test = Slice(all, 1024, 512);

  TrainConfig fp32 = BaseConfig();
  const auto baseline = TrainDataParallel(train, test, fp32);

  const auto compressor = CreateCompressor(
      CompressorConfig{.algorithm = GetParam().algorithm, .ratio = 0.05});
  TrainConfig compressed = BaseConfig();
  compressed.scheme = GetParam().scheme;
  compressed.compressor = compressor.get();
  const auto with_gc = TrainDataParallel(train, test, compressed);

  const double fp32_acc = baseline.back().test_accuracy;
  const double gc_acc = with_gc.back().test_accuracy;
  EXPECT_GT(fp32_acc, 0.85);
  // The paper's Figure 16: compression with error feedback lands within a whisker of
  // the no-compression accuracy.
  EXPECT_GT(gc_acc, fp32_acc - 0.05)
      << GetParam().algorithm << ": " << gc_acc << " vs " << fp32_acc;
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSchemes, ConvergenceParam,
    ::testing::Values(
        ConvergenceSetup{"dgc", SyncScheme::kCompressedIndivisible},
        ConvergenceSetup{"dgc", SyncScheme::kCompressedDivisible},
        ConvergenceSetup{"randomk", SyncScheme::kCompressedIndivisible},
        ConvergenceSetup{"randomk", SyncScheme::kCompressedDivisible},
        ConvergenceSetup{"efsignsgd", SyncScheme::kCompressedIndivisible},
        ConvergenceSetup{"fp16", SyncScheme::kCompressedDivisible}),
    [](const auto& info) {
      return std::string(info.param.algorithm) +
             (info.param.scheme == SyncScheme::kCompressedIndivisible ? "_indiv" : "_div");
    });

TEST(Convergence, ErrorFeedbackMattersForAggressiveSparsification) {
  const Dataset all = MakeGaussianBlobs(1536, 12, 4, 2.5, 99);
  const Dataset train = Slice(all, 0, 1024);
  const Dataset test = Slice(all, 1024, 512);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});

  TrainConfig with_ef = BaseConfig();
  with_ef.scheme = SyncScheme::kCompressedIndivisible;
  with_ef.compressor = compressor.get();
  with_ef.error_feedback = true;

  TrainConfig without_ef = with_ef;
  without_ef.error_feedback = false;

  const double acc_ef = TrainDataParallel(train, test, with_ef).back().test_accuracy;
  const double acc_no_ef =
      TrainDataParallel(train, test, without_ef).back().test_accuracy;
  EXPECT_GE(acc_ef, acc_no_ef);
}

TEST(Convergence, MomentumCorrectionPreservesAccuracyAtAggressiveSparsity) {
  // DGC = top-k + momentum correction; at 1% density it must stay within a whisker of
  // plain-EF training (and converge at all).
  const Dataset all = MakeGaussianBlobs(1536, 12, 4, 2.5, 99);
  const Dataset train = Slice(all, 0, 1024);
  const Dataset test = Slice(all, 1024, 512);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});

  TrainConfig config = BaseConfig();
  config.scheme = SyncScheme::kCompressedIndivisible;
  config.compressor = compressor.get();
  config.momentum_correction = 0.5;
  const auto history = TrainDataParallel(train, test, config);
  EXPECT_GT(history.back().test_accuracy, 0.80);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
}

TEST(Convergence, LossMonotonicallyImprovesOverall) {
  const Dataset all = MakeGaussianBlobs(768, 8, 3, 2.5, 7);
  const Dataset train = Slice(all, 0, 512);
  const Dataset test = Slice(all, 512, 256);
  TrainConfig config = BaseConfig();
  config.epochs = 8;
  const auto history = TrainDataParallel(train, test, config);
  ASSERT_EQ(history.size(), 8u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].epoch, i);
  }
}

TEST(Convergence, MoreWorkersSameGlobalBatchSameResult) {
  // 1 worker with batch 32 and 4 workers with batch 8 consume the same data and (in
  // exact FP32 sync) produce identical training trajectories.
  const Dataset all = MakeGaussianBlobs(640, 8, 3, 2.5, 7);
  const Dataset train = Slice(all, 0, 512);
  const Dataset test = Slice(all, 512, 128);
  TrainConfig one = BaseConfig();
  one.workers = 1;
  one.batch_per_worker = 32;
  one.epochs = 3;
  TrainConfig four = BaseConfig();
  four.workers = 4;
  four.batch_per_worker = 8;
  four.epochs = 3;
  const auto a = TrainDataParallel(train, test, one);
  const auto b = TrainDataParallel(train, test, four);
  EXPECT_NEAR(a.back().test_accuracy, b.back().test_accuracy, 1e-6);
  EXPECT_NEAR(a.back().train_loss, b.back().train_loss, 1e-5);
}

}  // namespace
}  // namespace espresso

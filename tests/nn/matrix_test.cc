#include "src/nn/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace espresso {
namespace {

Matrix Make(size_t r, size_t c, std::initializer_list<float> values) {
  Matrix m(r, c);
  size_t i = 0;
  for (float v : values) {
    m.data[i++] = v;
  }
  return m;
}

TEST(Matrix, MatMul) {
  const Matrix a = Make(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = Make(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix out;
  MatMul(a, b, &out);
  EXPECT_EQ(out.rows, 2u);
  EXPECT_EQ(out.cols, 2u);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154.0f);
}

TEST(Matrix, MatMulBtEqualsMatMulWithTranspose) {
  const Matrix a = Make(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix bt = Make(2, 3, {7, 9, 11, 8, 10, 12});  // transpose of b above
  Matrix out;
  MatMulBt(a, bt, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154.0f);
}

TEST(Matrix, MatMulAtEqualsTransposedProduct) {
  const Matrix a = Make(3, 2, {1, 4, 2, 5, 3, 6});  // a^T = [[1,2,3],[4,5,6]]
  const Matrix b = Make(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix out;
  MatMulAt(a, b, &out);
  EXPECT_EQ(out.rows, 2u);
  EXPECT_EQ(out.cols, 2u);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154.0f);
}

TEST(Matrix, AddBiasRows) {
  Matrix m = Make(2, 2, {1, 2, 3, 4});
  const std::vector<float> bias = {10.0f, 20.0f};
  AddBiasRows(&m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 24.0f);
}

TEST(Matrix, ReluForwardAndBackward) {
  Matrix m = Make(1, 4, {-1.0f, 0.0f, 2.0f, -3.0f});
  Matrix mask;
  ReluForward(&m, &mask);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 2.0f);
  Matrix grad = Make(1, 4, {1.0f, 1.0f, 1.0f, 1.0f});
  ReluBackward(&grad, mask);
  EXPECT_FLOAT_EQ(grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 3), 0.0f);
}

TEST(Matrix, SoftmaxRowsSumToOne) {
  Matrix m = Make(2, 3, {1.0f, 2.0f, 3.0f, -5.0f, 0.0f, 5.0f});
  SoftmaxRows(&m);
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GT(m.at(r, c), 0.0f);
      sum += m.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  EXPECT_GT(m.at(0, 2), m.at(0, 0));  // larger logits -> larger probabilities
}

TEST(Matrix, SoftmaxNumericallyStable) {
  Matrix m = Make(1, 2, {1000.0f, 1001.0f});
  SoftmaxRows(&m);
  EXPECT_NEAR(m.at(0, 0) + m.at(0, 1), 1.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(m.at(0, 0)));
}

}  // namespace
}  // namespace espresso

#include "src/nn/dataset.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

TEST(Dataset, ShapeAndLabelsInRange) {
  const Dataset d = MakeGaussianBlobs(100, 8, 3, 2.0, 1);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.x.rows, 100u);
  EXPECT_EQ(d.x.cols, 8u);
  for (int y : d.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 3);
  }
}

TEST(Dataset, Deterministic) {
  const Dataset a = MakeGaussianBlobs(50, 4, 2, 2.0, 7);
  const Dataset b = MakeGaussianBlobs(50, 4, 2, 2.0, 7);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.x.data, b.x.data);
}

TEST(Dataset, AllClassesRepresented) {
  const Dataset d = MakeGaussianBlobs(500, 4, 5, 2.0, 3);
  std::vector<int> counts(5, 0);
  for (int y : d.labels) {
    ++counts[y];
  }
  for (int c : counts) {
    EXPECT_GT(c, 50);
  }
}

TEST(Dataset, LargerMarginSeparatesClasses) {
  // With a huge margin, same-class points are much closer than cross-class points.
  const Dataset d = MakeGaussianBlobs(200, 6, 2, 10.0, 4);
  double intra = 0.0, inter = 0.0;
  size_t intra_n = 0, inter_n = 0;
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = i + 1; j < 50; ++j) {
      double dist = 0.0;
      for (size_t k = 0; k < d.x.cols; ++k) {
        const double diff = d.x.at(i, k) - d.x.at(j, k);
        dist += diff * diff;
      }
      if (d.labels[i] == d.labels[j]) {
        intra += dist;
        ++intra_n;
      } else {
        inter += dist;
        ++inter_n;
      }
    }
  }
  EXPECT_LT(intra / intra_n, inter / inter_n);
}

TEST(Dataset, SliceExtractsRows) {
  const Dataset d = MakeGaussianBlobs(20, 3, 2, 2.0, 2);
  const Dataset s = Slice(d, 5, 10);
  EXPECT_EQ(s.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s.labels[i], d.labels[5 + i]);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(s.x.at(i, j), d.x.at(5 + i, j));
    }
  }
}

TEST(DatasetDeathTest, SliceOutOfRangeDies) {
  const Dataset d = MakeGaussianBlobs(10, 3, 2, 2.0, 2);
  EXPECT_DEATH(Slice(d, 5, 10), "");
}

}  // namespace
}  // namespace espresso

// Near-optimality validation (§5.2.4): on models small enough for exhaustive search,
// Espresso's greedy strategy lands within a few percent of the true optimum over the
// same candidate space; on the real models it lands within 15% of the Upper Bound
// (Figure 14 reports <10% of an even looser bound on the paper's testbed).
#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/espresso.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

ModelProfile SmallModel(size_t tensors, uint64_t seed) {
  ModelProfile m;
  m.name = "small" + std::to_string(seed);
  m.forward_time_s = 5e-3;
  m.optimizer_time_s = 1e-3;
  m.batch_size = 1;
  m.throughput_unit = "it/s";
  for (size_t i = 0; i < tensors; ++i) {
    // Mixed sizes and compute times keyed off the seed for variety.
    const size_t elements = (1u << 20) << ((seed + i) % 3);
    m.tensors.push_back({"T" + std::to_string(i), elements,
                         2e-3 * static_cast<double>((seed + i) % 4 + 1)});
  }
  return m;
}

class NearOptimality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NearOptimality, WithinTenPercentOfBruteForce) {
  const ModelProfile model = SmallModel(3, GetParam());
  const ClusterSpec cluster = GetParam() % 2 == 0 ? NvlinkCluster() : PcieCluster();
  const auto compressor = CreateCompressor(
      CompressorConfig{.algorithm = GetParam() % 3 == 0 ? "efsignsgd" : "dgc",
                       .ratio = 0.01});

  EspressoSelector selector(model, cluster, *compressor);
  const SelectionResult espresso = selector.Select();

  // Brute force over the same all-GPU candidate space as Algorithm 1. The full Espresso
  // pipeline can legitimately beat it (Algorithm 2 adds CPU devices the space lacks),
  // but the GPU stage alone cannot, and the final result must stay within 10%.
  const TreeConfig config{cluster.machines, cluster.gpus_per_machine,
                          compressor->SupportsCompressedAggregation()};
  const auto brute =
      BruteForceStrategy(selector.evaluator(), CandidateOptions(config), 1u << 20);
  ASSERT_TRUE(brute.has_value());
  const Strategy gpu_stage = selector.SelectGpuCompression();
  EXPECT_LE(brute->iteration_time,
            selector.evaluator().IterationTime(gpu_stage) + 1e-12);
  EXPECT_LE(espresso.iteration_time, brute->iteration_time * 1.10)
      << "Espresso " << espresso.iteration_time << " vs optimal " << brute->iteration_time;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NearOptimality, ::testing::Range<uint64_t>(0, 8));

TEST(NearOptimality, RealModelsWithinFifteenPercentOfUpperBound) {
  struct Case {
    const char* model;
    const char* algorithm;
    bool pcie;
  };
  for (const Case& c : {Case{"gpt2", "efsignsgd", false}, Case{"bert-base", "randomk", false},
                        Case{"ugatit", "dgc", false}, Case{"vgg16", "randomk", true},
                        Case{"lstm", "efsignsgd", true}}) {
    const ModelProfile model = GetModel(c.model);
    const ClusterSpec cluster = c.pcie ? PcieCluster() : NvlinkCluster();
    const auto compressor =
        CreateCompressor(CompressorConfig{.algorithm = c.algorithm, .ratio = 0.01});
    const double espresso =
        RunScheme(model, cluster, *compressor, Scheme::kEspresso).iteration_time_s;
    const double bound =
        RunScheme(model, cluster, *compressor, Scheme::kUpperBound).iteration_time_s;
    EXPECT_LE(espresso, bound * 1.15) << c.model;
  }
}

TEST(NearOptimality, SelectionTimeOrdersOfMagnitudeBelowBruteForce) {
  // Table 5's punchline: milliseconds vs >24h.
  const ModelProfile model = Gpt2();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "efsignsgd", .ratio = 0.01});
  EspressoSelector selector(model, cluster, *compressor);
  const SelectionResult result = selector.Select();
  const double selection_seconds = result.gpu_stage_seconds + result.offload_stage_seconds;
#ifdef ESPRESSO_VERIFY_SCHEDULES
  // Verification builds audit every simulated timeline, so the wall-clock claim is
  // about the production configuration only; keep a loose sanity bound here.
  EXPECT_LT(selection_seconds, 120.0);
#else
  EXPECT_LT(selection_seconds, 5.0);
#endif

  const double per_eval = selection_seconds /
                          static_cast<double>(std::max<size_t>(1, result.timeline_evaluations));
  const double brute = EstimateBruteForceSeconds(per_eval, 8, model.tensors.size());
  EXPECT_GT(brute, 24.0 * 3600.0);
}

}  // namespace
}  // namespace espresso

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/baselines.h"
#include "src/core/timeline.h"
#include "src/models/model_zoo.h"
#include "src/trace/chrome_trace.h"

namespace espresso {
namespace {

TEST(ChromeTrace, EmitsValidLookingJson) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "dgc"});
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const TimelineResult result =
      evaluator.Evaluate(HiPressStrategy(model, cluster, *compressor), true);

  std::ostringstream os;
  WriteChromeTrace(os, model, result.entries);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("embedding.weight"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);

  // Balanced braces/brackets (cheap structural sanity without a parser).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ChromeTrace, EventCountMatchesEntries) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "dgc"});
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const TimelineResult result =
      evaluator.Evaluate(Fp32Strategy(model, cluster), true);
  std::ostringstream os;
  WriteChromeTrace(os, model, result.entries);
  const std::string json = os.str();
  size_t events = 0;
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, result.entries.size());
}

}  // namespace
}  // namespace espresso

// End-to-end checks across the full (model x testbed x algorithm) grid: Espresso must
// dominate every baseline, and the Upper Bound must dominate everything — the
// structural claims behind Figures 12-14.
#include <gtest/gtest.h>

#include "src/compress/compressor.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

struct Combo {
  const char* model;
  const char* algorithm;
  bool pcie;
};

class EndToEnd : public ::testing::TestWithParam<Combo> {};

TEST_P(EndToEnd, EspressoDominatesBaselinesAndBoundHolds) {
  const Combo& combo = GetParam();
  const ModelProfile model = GetModel(combo.model);
  const ClusterSpec cluster = combo.pcie ? PcieCluster() : NvlinkCluster();
  const auto compressor = CreateCompressor(
      CompressorConfig{.algorithm = combo.algorithm, .ratio = 0.01});

  const ThroughputResult espresso = RunScheme(model, cluster, *compressor, Scheme::kEspresso);
  const ThroughputResult bound = RunScheme(model, cluster, *compressor, Scheme::kUpperBound);
  EXPECT_LE(bound.iteration_time_s, espresso.iteration_time_s + 1e-9);

  for (Scheme scheme : {Scheme::kFp32, Scheme::kBytePSCompress, Scheme::kHiTopKComm,
                        Scheme::kHiPress}) {
    const ThroughputResult r = RunScheme(model, cluster, *compressor, scheme);
    EXPECT_LE(espresso.iteration_time_s, r.iteration_time_s + 1e-9)
        << SchemeName(scheme) << " beats Espresso on " << combo.model;
    EXPECT_LE(bound.iteration_time_s, r.iteration_time_s + 1e-9);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GT(r.scaling_factor, 0.0);
    EXPECT_LE(r.scaling_factor, 1.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, EndToEnd,
    ::testing::Values(Combo{"bert-base", "randomk", false}, Combo{"gpt2", "efsignsgd", false},
                      Combo{"ugatit", "dgc", false}, Combo{"vgg16", "randomk", true},
                      Combo{"lstm", "efsignsgd", true}, Combo{"resnet101", "dgc", true}),
    [](const auto& info) {
      return std::string(info.param.model).substr(0, 4) + "_" + info.param.algorithm +
             (info.param.pcie ? "_pcie" : "_nvlink");
    });

TEST(EndToEnd, ScalingFactorDefinition) {
  const ModelProfile model = Gpt2();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "dgc"});
  const ThroughputResult r = RunScheme(model, cluster, *compressor, Scheme::kFp32);
  // scaling = T_n / (n * T_1).
  const double t1 = SingleGpuThroughput(model);
  EXPECT_NEAR(r.scaling_factor, r.throughput / (64.0 * t1), 1e-9);
}

TEST(EndToEnd, ThroughputScalesWithClusterForEspresso) {
  const ModelProfile model = BertBase();
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "randomk"});
  double previous = 0.0;
  for (size_t machines : {1u, 2u, 4u, 8u}) {
    const ThroughputResult r =
        RunScheme(model, NvlinkCluster(machines), *compressor, Scheme::kEspresso);
    EXPECT_GT(r.throughput, previous);
    previous = r.throughput;
  }
}

TEST(EndToEnd, SingleMachineClusterWorks) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster(1, 8);
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "dgc"});
  const ThroughputResult espresso = RunScheme(model, cluster, *compressor, Scheme::kEspresso);
  const ThroughputResult fp32 = RunScheme(model, cluster, *compressor, Scheme::kFp32);
  EXPECT_LE(espresso.iteration_time_s, fp32.iteration_time_s + 1e-9);
}

TEST(EndToEnd, Figure2StoryHoldsOnToyTimeline) {
  // The motivating figure: a good strategy beats FP32; compressing everything on GPUs
  // can be worse than compressing selectively.
  ModelProfile model;
  model.name = "fig2";
  model.forward_time_s = 4e-3;
  model.optimizer_time_s = 1e-3;
  model.batch_size = 1;
  model.throughput_unit = "it/s";
  model.tensors = {{"T0", 8 << 20, 6e-3}, {"T1", 8 << 20, 6e-3}, {"T2", 8 << 20, 6e-3}};
  const ClusterSpec cluster = PcieCluster();
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "dgc"});
  const double fp32 = RunScheme(model, cluster, *compressor, Scheme::kFp32).iteration_time_s;
  const double espresso =
      RunScheme(model, cluster, *compressor, Scheme::kEspresso).iteration_time_s;
  EXPECT_LT(espresso, fp32);
}

}  // namespace
}  // namespace espresso

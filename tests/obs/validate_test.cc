#include "src/obs/validate.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace espresso::obs {
namespace {

// Writes `text` to a temp file and returns its path; removed by the caller.
std::string WriteTempFile(const std::string& tag, const std::string& text) {
  const std::string path =
      ::testing::TempDir() + "espresso_validate_" + tag + ".txt";
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

TEST(ValidateJson, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(ValidateJsonDocument("{}").ok);
  EXPECT_TRUE(ValidateJsonDocument("[]").ok);
  EXPECT_TRUE(ValidateJsonDocument("  {\"a\":[1,2.5,-3e-2,true,false,null]} ").ok);
  EXPECT_TRUE(ValidateJsonDocument(R"({"s":"\"\\\/\b\f\n\r\té"})").ok);
  EXPECT_TRUE(ValidateJsonDocument(R"({"nested":{"deep":[{"x":1}]}})").ok);
}

TEST(ValidateJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(ValidateJsonDocument("").ok);
  EXPECT_FALSE(ValidateJsonDocument("{").ok);
  EXPECT_FALSE(ValidateJsonDocument("{\"a\":}").ok);
  EXPECT_FALSE(ValidateJsonDocument("[1,]").ok);
  EXPECT_FALSE(ValidateJsonDocument("{\"a\":1}{").ok);  // trailing bytes
  EXPECT_FALSE(ValidateJsonDocument(R"({"s":"bad \x escape"})").ok);
  EXPECT_FALSE(ValidateJsonDocument("{\"s\":\"unterminated").ok);
  EXPECT_FALSE(ValidateJsonDocument("{\"a\" 1}").ok);  // missing colon
  const ValidationResult trailing = ValidateJsonDocument("{} extra");
  EXPECT_FALSE(trailing.ok);
  EXPECT_NE(trailing.error.find("trailing"), std::string::npos);
}

TEST(ValidateJson, CountsMetricsArrayElements) {
  const ValidationResult r =
      ValidateJsonDocument(R"({"metrics":[{"a":1},{"b":2},{"c":3}]})");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.samples, 3u);
}

TEST(ValidateJson, CountsTraceEventsArrayElements) {
  const ValidationResult r =
      ValidateJsonDocument(R"({"traceEvents":[{"ph":"X"},{"ph":"M"}]})");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.samples, 2u);
}

TEST(ValidateJson, OnlyFirstCountedArrayIsCounted) {
  // Nested "metrics" keys inside counted elements must not double-count.
  const ValidationResult r = ValidateJsonDocument(
      R"({"metrics":[{"metrics":[1,2,3,4]}],"traceEvents":[1,2]})");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.samples, 1u);
}

TEST(ValidateJson, NoCountedKeyMeansZeroSamples) {
  const ValidationResult r = ValidateJsonDocument(R"({"other":[1,2,3]})");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.samples, 0u);
}

TEST(ValidatePrometheus, AcceptsTextExpositionFormat) {
  const ValidationResult r = ValidatePrometheusText(
      "# HELP demo_total helps\n"
      "# TYPE demo_total counter\n"
      "demo_total 42\n"
      "demo_seconds_bucket{le=\"+Inf\"} 3\n"
      "demo_ratio -0.5\n"
      "demo_inf +Inf\n");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.samples, 4u);  // comment lines are not samples
}

TEST(ValidatePrometheus, RejectsBadLines) {
  EXPECT_FALSE(ValidatePrometheusText("demo_total\n").ok);        // no value
  EXPECT_FALSE(ValidatePrometheusText("1bad_name 1\n").ok);       // bad name
  EXPECT_FALSE(ValidatePrometheusText("demo_total abc\n").ok);    // bad value
  EXPECT_FALSE(ValidatePrometheusText("demo{le=\"1\" 2\n").ok);   // unclosed labels
}

TEST(ValidatePrometheus, RejectsZeroSamples) {
  const ValidationResult r = ValidatePrometheusText("# only comments\n\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no metric samples"), std::string::npos);
}

TEST(ValidateFile, MissingFileFails) {
  const ValidationResult r = ValidateMetricsFile("/nonexistent/metrics.prom");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cannot read"), std::string::npos);
}

TEST(ValidateFile, EmptyFileFails) {
  const std::string path = WriteTempFile("empty", "  \n\t");
  const ValidationResult r = ValidateMetricsFile(path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("empty file"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ValidateFile, DispatchesOnLeadingBrace) {
  const std::string json =
      WriteTempFile("json", R"({"metrics":[{"name":"x","count":1}]})");
  const ValidationResult jr = ValidateMetricsFile(json);
  EXPECT_TRUE(jr.ok) << jr.error;
  EXPECT_EQ(jr.samples, 1u);
  std::remove(json.c_str());

  const std::string prom = WriteTempFile("prom", "demo_total 1\n");
  const ValidationResult pr = ValidateMetricsFile(prom);
  EXPECT_TRUE(pr.ok) << pr.error;
  EXPECT_EQ(pr.samples, 1u);
  std::remove(prom.c_str());
}

TEST(ValidateFile, JsonWithZeroSamplesFails) {
  const std::string path = WriteTempFile("zero", R"({"metrics":[]})");
  const ValidationResult r = ValidateMetricsFile(path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no metrics or traceEvents entries"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ValidateFile, ErrorsArePrefixedWithThePath) {
  const std::string path = WriteTempFile("bad", "{broken");
  const ValidationResult r = ValidateMetricsFile(path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find(path), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace espresso::obs

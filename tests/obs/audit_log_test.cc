#include "src/obs/audit_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/metrics.h"

namespace espresso::obs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

size_t FileLineCount(const std::string& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  return lines;
}

TEST(AuditLog, EnvelopeAndFields) {
  AuditLog log;
  const uint64_t seq0 = log.Append("deploy", [](JsonWriter& json) {
    json.Field("version", static_cast<uint64_t>(3));
  });
  const uint64_t seq1 = log.Append("reject");
  EXPECT_EQ(seq0, 0u);
  EXPECT_EQ(seq1, 1u);
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "{\"seq\":0,\"event\":\"deploy\",\"version\":3}");
  EXPECT_EQ(entries[1], "{\"seq\":1,\"event\":\"reject\"}");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.write_failed());
}

// Regression: pre-fix, entries_ grew without bound — a leak in any long-lived
// process that audits every request.
TEST(AuditLog, InMemoryRetentionIsBounded) {
  const std::string path = TempPath("audit_ring.jsonl");
  std::remove(path.c_str());
  AuditLog log(/*retention=*/4);
  ASSERT_TRUE(log.Open(path));
  for (int i = 0; i < 10; ++i) {
    log.Append("event");
  }
  EXPECT_EQ(log.size(), 10u);  // total appended, not capped
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 4u);  // ring of the last N
  // The ring holds the MOST RECENT lines, sequence numbers intact.
  EXPECT_EQ(entries.front(), "{\"seq\":6,\"event\":\"event\"}");
  EXPECT_EQ(entries.back(), "{\"seq\":9,\"event\":\"event\"}");
  // Full history only on disk.
  EXPECT_EQ(FileLineCount(path), 10u);
  std::remove(path.c_str());
}

TEST(AuditLog, ZeroRetentionKeepsDiskOnlyHistory) {
  const std::string path = TempPath("audit_zero.jsonl");
  std::remove(path.c_str());
  AuditLog log(/*retention=*/0);
  ASSERT_TRUE(log.Open(path));
  log.Append("a");
  log.Append("b");
  EXPECT_TRUE(log.entries().empty());
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(FileLineCount(path), 2u);
  EXPECT_FALSE(log.write_failed());
  std::remove(path.c_str());
}

// Regression: pre-fix, a failed write (disk full) was silently ignored — audit
// records vanished with no counter, no sticky state, nothing for an operator to
// alert on. /dev/full deterministically fails every flush with ENOSPC.
TEST(AuditLog, WriteFailureIsCountedAndSticky) {
  AuditLog log;
  std::string error;
  if (!log.Open("/dev/full", &error)) {
    GTEST_SKIP() << "/dev/full unavailable: " << error;
  }
  MetricsRegistry& registry = GlobalMetrics();
  const MetricValue* before_metric =
      registry.Scrape().Find("espresso_audit_write_failures_total");
  const uint64_t before = before_metric != nullptr ? before_metric->count : 0;

  log.Append("doomed");
  EXPECT_TRUE(log.write_failed());
  EXPECT_EQ(log.write_failures(), 1u);
  EXPECT_NE(log.last_write_error().find("/dev/full"), std::string::npos);
  EXPECT_NE(log.last_write_error().find("seq 0"), std::string::npos);

  // Still counting: the stream error is cleared so later appends keep trying.
  log.Append("also doomed");
  EXPECT_EQ(log.write_failures(), 2u);
  // Sticky: the first failure's description is retained.
  EXPECT_NE(log.last_write_error().find("seq 0"), std::string::npos);

  const MetricValue* after_metric =
      registry.Scrape().Find("espresso_audit_write_failures_total");
  ASSERT_NE(after_metric, nullptr);
  EXPECT_EQ(after_metric->count, before + 2);

  // The in-memory ring still has both lines — degraded, not lost.
  EXPECT_EQ(log.entries().size(), 2u);
}

TEST(AuditLog, HealthyFileWritesDoNotTripTheFailureState) {
  const std::string path = TempPath("audit_ok.jsonl");
  std::remove(path.c_str());
  AuditLog log;
  ASSERT_TRUE(log.Open(path));
  for (int i = 0; i < 5; ++i) {
    log.Append("fine");
  }
  EXPECT_FALSE(log.write_failed());
  EXPECT_EQ(log.write_failures(), 0u);
  EXPECT_EQ(log.last_write_error(), "");
  EXPECT_EQ(FileLineCount(path), 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace espresso::obs

#include "src/obs/exporters.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/validate.h"

namespace espresso::obs {
namespace {

MetricsRegistry& PopulatedRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->Add(r->RegisterCounter("demo_requests_total", "requests served"), 42);
    r->Set(r->RegisterGauge("demo_ratio", "a ratio"), 0.75);
    const Histogram h = r->RegisterHistogram("demo_seconds", "durations", {0.1, 1.0});
    r->Observe(h, 0.05);
    r->Observe(h, 0.5);
    r->Observe(h, 5.0);
    return r;
  }();
  return *registry;
}

TEST(Prometheus, EmitsTextExpositionFormat) {
  std::ostringstream os;
  WritePrometheus(PopulatedRegistry().Scrape(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP demo_requests_total requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("demo_requests_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("demo_ratio 0.75\n"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf.
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"0.1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_count 3\n"), std::string::npos);

  const ValidationResult valid = ValidatePrometheusText(text);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_EQ(valid.samples, 7u);  // 1 counter + 1 gauge + 3 buckets + sum + count
}

TEST(MetricsJson, IsValidAndByteStable) {
  std::ostringstream a, b;
  WriteMetricsJson(PopulatedRegistry().Scrape(), a);
  WriteMetricsJson(PopulatedRegistry().Scrape(), b);
  EXPECT_EQ(a.str(), b.str());  // identical snapshots -> identical bytes

  const ValidationResult valid = ValidateJsonDocument(a.str());
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_EQ(valid.samples, 3u);  // three metrics in the "metrics" array

  EXPECT_NE(a.str().find("\"name\":\"demo_seconds\""), std::string::npos);
  EXPECT_NE(a.str().find("\"bounds\":[0.1,1]"), std::string::npos);
  EXPECT_NE(a.str().find("\"counts\":[1,1,1]"), std::string::npos);
}

TEST(MetricsJson, EmptySnapshotStillValidates) {
  MetricsRegistry registry;
  std::ostringstream os;
  WriteMetricsJson(registry.Scrape(), os);
  const ValidationResult valid = ValidateJsonDocument(os.str());
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_EQ(valid.samples, 0u);
}

}  // namespace
}  // namespace espresso::obs

#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/thread_pool.h"

namespace espresso::obs {
namespace {

TEST(TraceCollector, DisabledCollectorDropsRecords) {
  TraceCollector collector;  // disabled by default
  collector.Record({"span", "cat", 0, 0.0, 1.0});
  EXPECT_TRUE(collector.spans().empty());
}

TEST(TraceCollector, SpansComeBackSorted) {
  TraceCollector collector;
  collector.set_enabled(true);
  collector.Record({"late", "cat", 0, 2.0, 3.0});
  collector.Record({"early", "cat", 0, 0.0, 1.0});
  collector.Record({"mid", "cat", 0, 1.0, 2.0});
  const auto spans = collector.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "early");
  EXPECT_EQ(spans[1].name, "mid");
  EXPECT_EQ(spans[2].name, "late");
}

TEST(ScopedSpan, RecordsIntoCollectorAndHistogram) {
  MetricsRegistry registry;
  const Histogram h = registry.RegisterHistogram("span_seconds", "", {10.0});
  TraceCollector collector;
  collector.set_enabled(true);
  {
    ScopedSpan span("unit", "test", h, &registry, &collector);
    EXPECT_GE(span.ElapsedSeconds(), 0.0);
  }
  const auto spans = collector.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit");
  EXPECT_EQ(spans[0].category, "test");
  EXPECT_GE(spans[0].end_s, spans[0].start_s);
  const MetricsSnapshot snapshot = registry.Scrape();
  const MetricValue* m = snapshot.Find("span_seconds");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 1u);
}

TEST(ScopedSpan, NestingTracksDepthAndContainment) {
  TraceCollector collector;
  collector.set_enabled(true);
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  {
    ScopedSpan outer("outer", "test", {}, nullptr, &collector);
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    {
      ScopedSpan inner("inner", "test", {}, nullptr, &collector);
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  const auto spans = collector.spans();
  ASSERT_EQ(spans.size(), 2u);
  const auto& outer_span = spans[0].name == "outer" ? spans[0] : spans[1];
  const auto& inner_span = spans[0].name == "outer" ? spans[1] : spans[0];
  EXPECT_EQ(outer_span.name, "outer");
  EXPECT_EQ(inner_span.name, "inner");
  // Inner is contained in outer, so Perfetto renders them as a flame stack.
  EXPECT_LE(outer_span.start_s, inner_span.start_s);
  EXPECT_GE(outer_span.end_s, inner_span.end_s);
}

// Spans from pool workers must record cleanly and carry distinct thread ordinals;
// run under TSan in CI this also proves the record path is race-free.
TEST(ScopedSpan, NestsUnderThreadPool) {
  MetricsRegistry registry;
  const Histogram h = registry.RegisterHistogram("pool_span_seconds", "", {10.0});
  TraceCollector collector;
  collector.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&registry, &collector, h] {
        for (int i = 0; i < kPerThread; ++i) {
          ScopedSpan outer("outer", "pool", h, &registry, &collector);
          ScopedSpan inner("inner", "pool", h, &registry, &collector);
          EXPECT_GE(ScopedSpan::CurrentDepth(), 2);
        }
      });
    }
    pool.Wait();
  }
  const auto spans = collector.spans();
  EXPECT_EQ(spans.size(), 2u * kThreads * kPerThread);
  const MetricsSnapshot snapshot = registry.Scrape();
  const MetricValue* m = snapshot.Find("pool_span_seconds");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 2u * kThreads * kPerThread);
}

TEST(TraceCollector, ClearEmptiesTheBuffer) {
  TraceCollector collector;
  collector.set_enabled(true);
  collector.Record({"a", "b", 0, 0.0, 1.0});
  collector.Clear();
  EXPECT_TRUE(collector.spans().empty());
}

}  // namespace
}  // namespace espresso::obs

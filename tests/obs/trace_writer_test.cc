#include "src/obs/trace_writer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/validate.h"

namespace espresso::obs {
namespace {

ModelProfile TwoTensorModel() {
  ModelProfile model;
  model.name = "toy";
  model.tensors.push_back({"t0", 1000, 1e-3});
  model.tensors.push_back({"t1", 2000, 2e-3});
  return model;
}

ClusterSpec ToyCluster() {
  ClusterSpec cluster;
  cluster.machines = 2;
  cluster.gpus_per_machine = 2;
  cluster.intra = LinkSpec{"intra", 1e-6, 100.0e9};
  cluster.inter = LinkSpec{"inter", 10e-6, 10.0e9};
  return cluster;
}

// A compress -> send -> decompress chain for tensor 0 plus a lone compute slice for
// tensor 1 (chains of one op get no flow arrows).
std::vector<TimelineEntry> ChainEntries() {
  return {
      {0, "compress", "gpu", 0.0, 1e-3},
      {0, "allgather", "inter", 1e-3, 3e-3},
      {0, "decompress", "gpu", 3e-3, 4e-3},
      {1, "compute", "gpu", 0.0, 5e-4},
      {0, "compress", "cpu", 5e-3, 6e-3},
      {1, "allreduce", "intra", 1e-3, 2e-3},
  };
}

std::string Render(const ExtendedTraceOptions& options,
                   const TraceCollector* wall = nullptr) {
  std::ostringstream os;
  WriteExtendedChromeTrace(os, TwoTensorModel(), ToyCluster(), ChainEntries(), {},
                           wall, options);
  return os.str();
}

TEST(ExtendedTrace, OutputIsValidJson) {
  const std::string text = Render({});
  const ValidationResult valid = ValidateJsonDocument(text);
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_GT(valid.samples, 0u);
}

TEST(ExtendedTrace, EmitsFlowEventsAlongTensorChains) {
  const std::string text = Render({});
  // Tensor 0 has a 4-op chain: one start, two steps, one finish, all flow id 1.
  EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(text.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"flow\""), std::string::npos);

  ExtendedTraceOptions no_flows;
  no_flows.flow_events = false;
  EXPECT_EQ(Render(no_flows).find("\"cat\":\"flow\""), std::string::npos);
}

TEST(ExtendedTrace, EmitsCounterTracks) {
  const std::string text = Render({});
  EXPECT_NE(text.find("\"name\":\"cpu_pool_occupancy\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"intra_link_bandwidth_bytes_per_s\""),
            std::string::npos);
  EXPECT_NE(text.find("\"name\":\"inter_link_bandwidth_bytes_per_s\""),
            std::string::npos);
  // The inter track rises to the link's full bandwidth (1e10 B/s, shortest-form
  // double) while the send is in flight.
  EXPECT_NE(text.find("\"value\":1e+10"), std::string::npos);

  ExtendedTraceOptions no_counters;
  no_counters.counter_tracks = false;
  EXPECT_EQ(Render(no_counters).find("\"ph\":\"C\""), std::string::npos);
}

TEST(ExtendedTrace, NamesTensorsInSliceArgs) {
  const std::string text = Render({});
  EXPECT_NE(text.find("\"tensor\":\"t0\""), std::string::npos);
  EXPECT_NE(text.find("\"tensor\":\"t1\""), std::string::npos);
}

TEST(ExtendedTrace, SimulatedPartIsDeterministic) {
  EXPECT_EQ(Render({}), Render({}));
}

TEST(ExtendedTrace, AppendsWallSpansAsSecondProcess) {
  TraceCollector wall;
  wall.set_enabled(true);
  wall.Record({"selector.select", "selector", 0, 0.0, 0.5});
  const std::string text = Render({}, &wall);
  EXPECT_NE(text.find("\"name\":\"wall clock\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"selector.select\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\":1"), std::string::npos);
  const ValidationResult valid = ValidateJsonDocument(text);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(SpanTrace, WallOnlyOutputValidates) {
  TraceCollector wall;
  wall.set_enabled(true);
  wall.Record({"bench.arm", "bench", 3, 0.0, 1.0});
  std::ostringstream os;
  WriteSpanTrace(os, wall);
  const ValidationResult valid = ValidateJsonDocument(os.str());
  EXPECT_TRUE(valid.ok) << valid.error;
  EXPECT_NE(os.str().find("\"tid\":103"), std::string::npos);  // wall tid base + 3
}

}  // namespace
}  // namespace espresso::obs

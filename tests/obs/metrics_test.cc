#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/util/thread_pool.h"

namespace espresso::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry registry;
  const Counter c = registry.RegisterCounter("requests_total", "help text");
  registry.Add(c);
  registry.Add(c, 41);
  const MetricsSnapshot snapshot = registry.Scrape();
  const MetricValue* m = snapshot.Find("requests_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->count, 42u);
  EXPECT_EQ(m->help, "help text");
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  const Gauge g = registry.RegisterGauge("temperature", "");
  registry.Set(g, 1.5);
  registry.Set(g, -2.25);
  const MetricsSnapshot snapshot = registry.Scrape();
  const MetricValue* m = snapshot.Find("temperature");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(m->value, -2.25);
}

TEST(MetricsRegistry, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  const Histogram h = registry.RegisterHistogram("latency", "", {1.0, 2.0, 4.0});
  registry.Observe(h, 0.5);   // bucket 0 (le 1)
  registry.Observe(h, 1.0);   // bucket 0 (le semantics: value <= bound)
  registry.Observe(h, 3.0);   // bucket 2 (le 4)
  registry.Observe(h, 100.0); // overflow (+Inf)
  const MetricsSnapshot snapshot = registry.Scrape();
  const MetricValue* m = snapshot.Find("latency");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  ASSERT_EQ(m->bucket_counts.size(), 4u);
  EXPECT_EQ(m->bucket_counts[0], 2u);
  EXPECT_EQ(m->bucket_counts[1], 0u);
  EXPECT_EQ(m->bucket_counts[2], 1u);
  EXPECT_EQ(m->bucket_counts[3], 1u);
  EXPECT_EQ(m->count, 4u);
  EXPECT_DOUBLE_EQ(m->value, 104.5);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  const Counter a = registry.RegisterCounter("dup_total", "first");
  const Counter b = registry.RegisterCounter("dup_total", "second help ignored");
  EXPECT_EQ(a.cell, b.cell);
  registry.Add(a);
  registry.Add(b);
  const MetricsSnapshot snapshot = registry.Scrape();
  const MetricValue* m = snapshot.Find("dup_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 2u);
  EXPECT_EQ(m->help, "first");
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(MetricsRegistry, InvalidHandlesAreInert) {
  MetricsRegistry registry;
  registry.Add(Counter{});
  registry.Set(Gauge{}, 1.0);
  registry.Observe(Histogram{}, 1.0);
  EXPECT_EQ(registry.Scrape().metrics.size(), 0u);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.RegisterCounter("zebra", "");
  registry.RegisterCounter("alpha", "");
  registry.RegisterGauge("mid", "");
  const MetricsSnapshot snapshot = registry.Scrape();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_EQ(snapshot.metrics[0].name, "alpha");
  EXPECT_EQ(snapshot.metrics[1].name, "mid");
  EXPECT_EQ(snapshot.metrics[2].name, "zebra");
}

// The core shard-merge property: increments from many threads land in per-thread
// shards, and Scrape() must sum them all — deterministically, regardless of the
// interleaving that produced them.
TEST(MetricsRegistry, MergesThreadShardsExactly) {
  MetricsRegistry registry;
  const Counter c = registry.RegisterCounter("work_total", "");
  const Histogram h = registry.RegisterHistogram("work_seconds", "", {0.5, 1.5, 2.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&registry, c, h, t] {
        for (int i = 0; i < kPerThread; ++i) {
          registry.Add(c);
          registry.Observe(h, static_cast<double>(t % 3));
        }
      });
    }
    pool.Wait();
  }
  const MetricsSnapshot snapshot = registry.Scrape();
  const MetricValue* counter = snapshot.Find("work_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->count, static_cast<uint64_t>(kThreads) * kPerThread);
  const MetricValue* hist = snapshot.Find("work_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<uint64_t>(kThreads) * kPerThread);
  // t % 3 over 8 threads: values 0 (x3 threads), 1 (x3), 2 (x2).
  ASSERT_EQ(hist->bucket_counts.size(), 4u);
  EXPECT_EQ(hist->bucket_counts[0], 3u * kPerThread);  // 0.0 <= 0.5
  EXPECT_EQ(hist->bucket_counts[1], 3u * kPerThread);  // 1.0 <= 1.5
  EXPECT_EQ(hist->bucket_counts[2], 2u * kPerThread);  // 2.0 <= 2.5
  EXPECT_EQ(hist->bucket_counts[3], 0u);
  EXPECT_DOUBLE_EQ(hist->value, (3.0 * 0 + 3.0 * 1 + 2.0 * 2) * kPerThread);
  EXPECT_GE(registry.shard_count(), 1u);
}

// Scraping twice with no recording in between must be byte-identical — the basis of
// the "byte-stable JSON metrics dump" guarantee.
TEST(MetricsRegistry, RepeatedScrapesAreIdentical) {
  MetricsRegistry registry;
  const Counter c = registry.RegisterCounter("stable_total", "");
  const Histogram h = registry.RegisterHistogram("stable_seconds", "", {1.0});
  registry.Add(c, 7);
  registry.Observe(h, 0.25);
  const MetricsSnapshot a = registry.Scrape();
  const MetricsSnapshot b = registry.Scrape();
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name);
    EXPECT_EQ(a.metrics[i].count, b.metrics[i].count);
    EXPECT_EQ(a.metrics[i].value, b.metrics[i].value);
    EXPECT_EQ(a.metrics[i].bucket_counts, b.metrics[i].bucket_counts);
  }
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  MetricsRegistry registry;
  const Counter c = registry.RegisterCounter("resettable_total", "");
  const Gauge g = registry.RegisterGauge("resettable", "");
  registry.Add(c, 5);
  registry.Set(g, 9.0);
  registry.Reset();
  const MetricsSnapshot snapshot = registry.Scrape();
  EXPECT_EQ(snapshot.Find("resettable_total")->count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.Find("resettable")->value, 0.0);
}

TEST(MetricsRegistry, ThreadLocalCacheSurvivesRegistryTeardown) {
  // A thread that recorded into registry A must not write into registry B when B
  // reuses A's address (generation check in the thread-local shard cache).
  auto a = std::make_unique<MetricsRegistry>();
  const Counter ca = a->RegisterCounter("x_total", "");
  a->Add(ca);
  a.reset();
  MetricsRegistry b;
  const Counter cb = b.RegisterCounter("x_total", "");
  b.Add(cb, 3);
  const MetricsSnapshot snapshot = b.Scrape();
  EXPECT_EQ(snapshot.Find("x_total")->count, 3u);
}

TEST(GlobalMetrics, IsASingleton) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
}

TEST(Buckets, HelpersProduceMonotoneBounds) {
  const std::vector<double> linear = LinearBuckets(1.0, 2.0, 4);
  ASSERT_EQ(linear.size(), 4u);
  EXPECT_DOUBLE_EQ(linear[0], 1.0);
  EXPECT_DOUBLE_EQ(linear[3], 7.0);
  const std::vector<double> expo = ExponentialBuckets(1e-6, 10.0, 5);
  for (size_t i = 1; i < expo.size(); ++i) {
    EXPECT_GT(expo[i], expo[i - 1]);
  }
  const std::vector<double> defaults = DefaultTimeBuckets();
  for (size_t i = 1; i < defaults.size(); ++i) {
    EXPECT_GT(defaults[i], defaults[i - 1]);
  }
}

}  // namespace
}  // namespace espresso::obs

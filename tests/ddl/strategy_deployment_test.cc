// The runtime half of the fail-closed deployment pipeline: atomic hot-swap (readers
// see a complete old or complete new strategy, never a mix), reject-keeps-last-known-
// good, operator and watchdog rollback, audit log + metrics, and behaviour under
// concurrent stepping (exercised with TSan in CI).
#include "src/ddl/strategy_deployment.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/core/eval_cache.h"
#include "src/models/model_zoo.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

uint64_t CounterValue(const char* name) {
  const obs::MetricsSnapshot snapshot = obs::GlobalMetrics().Scrape();
  const obs::MetricValue* metric = snapshot.Find(name);
  return metric == nullptr ? 0 : metric->count;
}

struct DeployFixture {
  ModelProfile model = Lstm();
  ClusterSpec cluster = NvlinkCluster(2, 2);
  CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  std::unique_ptr<Compressor> compressor = CreateCompressor(gc);

  StrategyIR CompileSelected(uint64_t iteration = 0) const {
    EspressoSelector selector(model, cluster, *compressor);
    const SelectionResult result = selector.Select();
    StrategyProvenance provenance;
    provenance.origin = "test";
    provenance.selector = "espresso";
    provenance.iteration = iteration;
    return CompileStrategyIR(result.strategy, result.iteration_time, model, cluster, gc,
                             provenance);
  }

  StrategyIR CompileBaseline(const Strategy& strategy) const {
    const TimelineEvaluator evaluator(model, cluster, *compressor);
    StrategyProvenance provenance;
    provenance.origin = "test-baseline";
    provenance.selector = "manual";
    return CompileStrategyIR(strategy, evaluator.IterationTime(strategy), model, cluster,
                             gc, provenance);
  }

  StrategyDeployment MakeDeployment(DeploymentConfig config = {}) const {
    return StrategyDeployment(model, cluster, *compressor, gc, std::move(config));
  }
};

TEST(StrategyDeployment, BootstrapThenAcquire) {
  const DeployFixture fixture;
  StrategyDeployment deployment = fixture.MakeDeployment();
  EXPECT_EQ(deployment.Acquire(), nullptr);
  EXPECT_EQ(deployment.version(), 0u);

  const Strategy fp32 = Fp32Strategy(fixture.model, fixture.cluster);
  deployment.Bootstrap(fp32, "selector", 0.5);
  const auto live = deployment.Acquire();
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->version, 1u);
  EXPECT_EQ(live->origin, "selector");
  EXPECT_EQ(live->fingerprint, StrategyFingerprint(fp32));
  ASSERT_EQ(deployment.events().size(), 1u);
  EXPECT_EQ(deployment.events()[0].event, "bootstrap");
}

TEST(StrategyDeployment, DeployValidIrSwapsAtomically) {
  const DeployFixture fixture;
  StrategyDeployment deployment = fixture.MakeDeployment();
  deployment.Bootstrap(Fp32Strategy(fixture.model, fixture.cluster), "selector", 0.5);
  const auto before = deployment.Acquire();

  const uint64_t deployed_before = CounterValue("espresso_deploy_deployed_total");
  const DeployResult result = deployment.Deploy(fixture.CompileSelected(7));
  EXPECT_TRUE(result.accepted) << result.reason;
  EXPECT_FALSE(result.forced_digest);
  EXPECT_EQ(result.version, 2u);
  EXPECT_EQ(CounterValue("espresso_deploy_deployed_total"), deployed_before + 1);

  // The old snapshot is still intact for in-flight steps; new acquires see v2.
  EXPECT_EQ(before->version, 1u);
  EXPECT_EQ(before->fingerprint,
            StrategyFingerprint(Fp32Strategy(fixture.model, fixture.cluster)));
  const auto after = deployment.Acquire();
  EXPECT_EQ(after->version, 2u);
  EXPECT_EQ(after->origin, "test");
  EXPECT_EQ(deployment.events().back().event, "deploy");
  EXPECT_EQ(deployment.events().back().iteration, 7u);
}

TEST(StrategyDeployment, RejectKeepsLastKnownGood) {
  const DeployFixture fixture;
  StrategyDeployment deployment = fixture.MakeDeployment();
  deployment.Bootstrap(Fp32Strategy(fixture.model, fixture.cluster), "selector", 0.5);

  StrategyIR stale = fixture.CompileSelected();
  stale.model_digest ^= 1;
  const uint64_t rejected_before = CounterValue("espresso_deploy_rejected_total");
  const DeployResult result = deployment.Deploy(stale);
  EXPECT_FALSE(result.accepted);
  EXPECT_FALSE(result.reason.empty());
  EXPECT_NE(result.reason.find("ir.digest-mismatch"), std::string::npos)
      << result.reason;
  EXPECT_EQ(result.version, 1u);  // still the bootstrap
  EXPECT_EQ(CounterValue("espresso_deploy_rejected_total"), rejected_before + 1);

  const auto live = deployment.Acquire();
  EXPECT_EQ(live->version, 1u);
  EXPECT_EQ(live->origin, "selector");
  EXPECT_EQ(deployment.events().back().event, "reject");

  // The rejection is visible in the audit log.
  bool found = false;
  for (const std::string& line : deployment.audit_log().entries()) {
    if (line.find("\"reject\"") != std::string::npos &&
        line.find("ir.digest-mismatch") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(StrategyDeployment, ForceDigestDeploysButMarksTheEvent) {
  const DeployFixture fixture;
  DeploymentConfig config;
  config.force_digest = true;
  StrategyDeployment deployment = fixture.MakeDeployment(config);
  deployment.Bootstrap(Fp32Strategy(fixture.model, fixture.cluster), "selector", 0.5);

  StrategyIR stale = fixture.CompileSelected();
  stale.cluster_digest ^= 1;
  const uint64_t forced_before = CounterValue("espresso_deploy_forced_total");
  const DeployResult result = deployment.Deploy(stale);
  EXPECT_TRUE(result.accepted) << result.reason;
  EXPECT_TRUE(result.forced_digest);
  EXPECT_EQ(CounterValue("espresso_deploy_forced_total"), forced_before + 1);
  EXPECT_EQ(deployment.events().back().event, "forced-deploy");
}

TEST(StrategyDeployment, OperatorRollbackRestoresPreviousStrategy) {
  const DeployFixture fixture;
  StrategyDeployment deployment = fixture.MakeDeployment();
  EXPECT_FALSE(deployment.Rollback("nothing yet"));

  const Strategy fp32 = Fp32Strategy(fixture.model, fixture.cluster);
  deployment.Bootstrap(fp32, "selector", 0.5);
  EXPECT_FALSE(deployment.Rollback("no swap yet"));

  ASSERT_TRUE(deployment.Deploy(fixture.CompileSelected()).accepted);
  ASSERT_TRUE(deployment.Rollback("operator said so"));
  const auto live = deployment.Acquire();
  EXPECT_EQ(live->fingerprint, StrategyFingerprint(fp32));
  EXPECT_EQ(live->version, 3u);  // versions are monotonic, content is the old one
  EXPECT_EQ(deployment.events().back().event, "rollback");
  EXPECT_EQ(deployment.events().back().detail, "operator said so");
  // Rolling back twice in a row has nothing left to restore.
  EXPECT_FALSE(deployment.Rollback("again"));
}

TEST(StrategyDeployment, RegressionWatchdogRollsBackAutomatically) {
  const DeployFixture fixture;
  DeploymentConfig config;
  config.regression_threshold = 2.0;
  config.baseline_window = 4;
  StrategyDeployment deployment = fixture.MakeDeployment(config);
  deployment.Bootstrap(Fp32Strategy(fixture.model, fixture.cluster), "selector", 0.5);

  // Build a healthy baseline of ~100ms steps.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(deployment.ReportStepTime(0.100));
  }
  ASSERT_TRUE(deployment.Deploy(fixture.CompileSelected()).accepted);
  const uint64_t rollbacks_before = CounterValue("espresso_deploy_rollbacks_total");

  // First post-swap step regresses 5x past the baseline: automatic rollback.
  EXPECT_TRUE(deployment.ReportStepTime(0.500));
  EXPECT_EQ(CounterValue("espresso_deploy_rollbacks_total"), rollbacks_before + 1);
  const auto live = deployment.Acquire();
  EXPECT_EQ(live->fingerprint,
            StrategyFingerprint(Fp32Strategy(fixture.model, fixture.cluster)));
  EXPECT_EQ(deployment.events().back().event, "rollback");

  // A healthy first post-swap step keeps the deployment.
  ASSERT_TRUE(deployment.Deploy(fixture.CompileSelected()).accepted);
  EXPECT_FALSE(deployment.ReportStepTime(0.110));
  EXPECT_EQ(deployment.Acquire()->origin, "test");
}

TEST(StrategyDeployment, WatchdogDisabledByNonPositiveThreshold) {
  const DeployFixture fixture;
  DeploymentConfig config;
  config.regression_threshold = 0.0;
  StrategyDeployment deployment = fixture.MakeDeployment(config);
  deployment.Bootstrap(Fp32Strategy(fixture.model, fixture.cluster), "selector", 0.5);
  for (int i = 0; i < 4; ++i) deployment.ReportStepTime(0.1);
  ASSERT_TRUE(deployment.Deploy(fixture.CompileSelected()).accepted);
  EXPECT_FALSE(deployment.ReportStepTime(100.0));
  EXPECT_EQ(deployment.Acquire()->origin, "test");
}

TEST(StrategyDeployment, AuditLogPersistsToJsonlFile) {
  const DeployFixture fixture;
  const std::string path = ::testing::TempDir() + "/deploy_audit.jsonl";
  std::remove(path.c_str());
  DeploymentConfig config;
  config.audit_log_path = path;
  {
    StrategyDeployment deployment = fixture.MakeDeployment(config);
    deployment.Bootstrap(Fp32Strategy(fixture.model, fixture.cluster), "selector", 0.5);
    StrategyIR stale = fixture.CompileSelected();
    stale.model_digest ^= 1;
    deployment.Deploy(stale);
    deployment.Deploy(fixture.CompileSelected());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"event\":\"bootstrap\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"event\":\"reject\""), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("\"event\":\"deploy\""), std::string::npos) << lines[2];
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"seq\":" + std::to_string(i)), std::string::npos)
        << lines[i];
  }
  std::remove(path.c_str());
}

TEST(StrategyDeployment, ExecuteUsesOneSnapshotPerStep) {
  const DeployFixture fixture;
  StrategyDeployment deployment = fixture.MakeDeployment();

  ExecutorConfig exec;
  exec.machines = fixture.cluster.machines;
  exec.gpus_per_machine = fixture.cluster.gpus_per_machine;
  exec.compressor = fixture.compressor.get();
  std::vector<RankBuffers> gradients(fixture.model.tensors.size(),
                                     RankBuffers(exec.ranks(), std::vector<float>(64)));
  for (size_t t = 0; t < gradients.size(); ++t) {
    for (size_t r = 0; r < gradients[t].size(); ++r) {
      Rng rng(DeriveSeed(1234 + t, r));
      rng.FillNormal(gradients[t][r], 0.0, 1.0);
    }
  }
  const std::vector<RankBuffers> untouched = gradients;

  // Nothing deployed: no snapshot, gradients untouched.
  EXPECT_EQ(ExecuteDeployedStrategy(deployment, exec, gradients), nullptr);
  EXPECT_EQ(gradients, untouched);

  deployment.Bootstrap(Fp32Strategy(fixture.model, fixture.cluster), "selector", 0.5);
  const auto used = ExecuteDeployedStrategy(deployment, exec, gradients);
  ASSERT_NE(used, nullptr);
  EXPECT_EQ(used->version, 1u);
  // FP32 allreduce across equal-sized buffers: every rank ends identical.
  for (size_t t = 0; t < gradients.size(); ++t) {
    for (size_t r = 1; r < gradients[t].size(); ++r) {
      EXPECT_EQ(gradients[t][r], gradients[t][0]) << "tensor " << t;
    }
  }
}

TEST(StrategyDeployment, TraceInstantsRenderTheHistory) {
  const DeployFixture fixture;
  StrategyDeployment deployment = fixture.MakeDeployment();
  deployment.Bootstrap(Fp32Strategy(fixture.model, fixture.cluster), "selector", 0.5);
  deployment.Deploy(fixture.CompileSelected(10));
  deployment.Rollback("test");

  const std::vector<TraceInstant> instants =
      DeployTraceInstants(deployment.events(), 0.5);
  ASSERT_EQ(instants.size(), 3u);
  EXPECT_EQ(instants[0].name, "deploy_bootstrap");
  EXPECT_EQ(instants[1].name, "deploy_deploy");
  EXPECT_DOUBLE_EQ(instants[1].time_s, 5.0);  // iteration 10 x 0.5s
  EXPECT_EQ(instants[2].name, "deploy_rollback");
  EXPECT_NE(instants[2].detail.find("test"), std::string::npos);
}

// --- Concurrency (run under TSan in CI) ---

// Readers hammer Acquire() while a writer alternates between two valid strategies.
// Every snapshot must be internally consistent: its fingerprint matches its own
// strategy bytes — a torn swap (mixing tensors of both strategies) cannot pass.
TEST(StrategyDeployment, ConcurrentAcquireSeesOnlyCompleteStrategies) {
  const DeployFixture fixture;
  StrategyDeployment deployment = fixture.MakeDeployment();
  const Strategy fp32 = Fp32Strategy(fixture.model, fixture.cluster);
  deployment.Bootstrap(fp32, "selector", 0.5);
  const StrategyIR selected = fixture.CompileSelected();
  const StrategyIR baseline = fixture.CompileBaseline(
      HiPressStrategy(fixture.model, fixture.cluster, *fixture.compressor));
  const uint64_t selected_fp = StrategyFingerprint(selected.strategy);
  const uint64_t baseline_fp = StrategyFingerprint(baseline.strategy);
  const uint64_t fp32_fp = StrategyFingerprint(fp32);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = deployment.Acquire();
        if (snapshot == nullptr) continue;
        const uint64_t fp = StrategyFingerprint(snapshot->strategy);
        if (fp != snapshot->fingerprint ||
            (fp != selected_fp && fp != baseline_fp && fp != fp32_fp)) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(deployment.Deploy(i % 2 == 0 ? selected : baseline).accepted);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(deployment.version(), 21u);
}

// Rollback under load: readers step through Acquire() continuously while a deploy
// lands and the regression watchdog rolls it straight back. Every snapshot observed
// on the way — old, new, and restored — must be complete and self-consistent.
TEST(StrategyDeployment, RollbackUnderConcurrentStepping) {
  const DeployFixture fixture;
  DeploymentConfig config;
  config.regression_threshold = 2.0;
  StrategyDeployment deployment = fixture.MakeDeployment(config);
  const Strategy fp32 = Fp32Strategy(fixture.model, fixture.cluster);
  deployment.Bootstrap(fp32, "selector", 0.5);
  for (int i = 0; i < 4; ++i) deployment.ReportStepTime(0.1);

  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};
  std::vector<std::thread> steppers;
  for (int r = 0; r < 3; ++r) {
    steppers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = deployment.Acquire();
        if (snapshot == nullptr) continue;
        if (StrategyFingerprint(snapshot->strategy) != snapshot->fingerprint) {
          inconsistent.fetch_add(1);
        }
      }
    });
  }
  ASSERT_TRUE(deployment.Deploy(fixture.CompileSelected()).accepted);
  // The chaos channel: the new deployment's first measured step is 5x the baseline,
  // so the watchdog reverts it while the steppers are mid-flight.
  EXPECT_TRUE(deployment.ReportStepTime(0.5));
  stop.store(true);
  for (std::thread& t : steppers) t.join();
  EXPECT_EQ(inconsistent.load(), 0);
  const auto live = deployment.Acquire();
  EXPECT_EQ(live->origin, "selector");
  EXPECT_EQ(live->fingerprint, StrategyFingerprint(fp32));
  EXPECT_EQ(deployment.events().back().event, "rollback");
}

}  // namespace
}  // namespace espresso

// Bit-identity of the SoA batched-compression pre-pass: running a strategy (or a
// training run) with small-tensor batching enabled must produce byte-for-byte the
// same results as the per-tensor path, and the whole pipeline must be bit-identical
// between the scalar kernel table and the best SIMD table the host supports. The
// batching layer reorders WHEN compression happens (one CompressBatch ahead of the
// per-tensor loop) but never what is computed — error-feedback state is independent
// per (rank, tensor), transmit order is untouched, and every kernel table is
// bit-identical to scalar — so any divergence here is a dataplane bug.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/compress/kernels/kernels.h"
#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/ddl/strategy_executor.h"
#include "src/nn/parallel_trainer.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

struct CompressorCase {
  const char* label;
  CompressorConfig config;
};

std::vector<CompressorCase> AllCompressors() {
  return {
      {"randomk", {.algorithm = "randomk", .ratio = 0.25}},
      {"topk", {.algorithm = "topk", .ratio = 0.25}},
      {"efsignsgd", {.algorithm = "efsignsgd"}},
      {"qsgd", {.algorithm = "qsgd", .bits = 4}},
      {"terngrad", {.algorithm = "terngrad"}},
      {"fp16", {.algorithm = "fp16"}},
      {"threshold", {.algorithm = "threshold", .threshold = 0.2}},
  };
}

std::vector<CompressionOption> OptionMatrix() {
  const TreeConfig tree{2, 2, false};
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  std::vector<CompressionOption> options = CandidateOptions(tree);
  options.push_back(InterOnlyIndivisibleOption(cluster, Device::kGpu));
  options.push_back(InterOnlyDivisibleOption(cluster, Device::kGpu));
  options.push_back(AlltoallAlltoallOption(cluster, Device::kGpu));
  return options;
}

// Tensor sizes straddling the batch cutoff: batched, batched, at-cutoff, above
// (never batched), batched-small.
const size_t kTensorSizes[] = {17, 96, 4096, 5000, 64};

std::vector<RankBuffers> StepGradients(size_t ranks, uint64_t seed) {
  std::vector<RankBuffers> gradients;
  for (size_t t = 0; t < std::size(kTensorSizes); ++t) {
    RankBuffers buffers(ranks, std::vector<float>(kTensorSizes[t]));
    for (size_t r = 0; r < ranks; ++r) {
      Rng rng(DeriveSeed(seed, t * ranks + r));
      rng.FillNormal(buffers[r], 0.0, 1.0);
    }
    gradients.push_back(buffers);
  }
  return gradients;
}

void ExpectGradientsBitIdentical(const std::vector<RankBuffers>& a,
                                 const std::vector<RankBuffers>& b, const char* label,
                                 int step) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    for (size_t r = 0; r < a[t].size(); ++r) {
      ASSERT_EQ(std::memcmp(a[t][r].data(), b[t][r].data(),
                            a[t][r].size() * sizeof(float)), 0)
          << label << " step " << step << " tensor " << t << " rank " << r;
    }
  }
}

// All compressors, a strategy cycling through the full option matrix, three steps of
// persistent error feedback: batching on vs off must agree bit for bit.
TEST(ExecutorBatching, BatchedStrategyMatchesUnbatchedBitExactly) {
  const std::vector<CompressionOption> options = OptionMatrix();
  const size_t ranks = 4;
  for (const CompressorCase& cc : AllCompressors()) {
    const auto compressor = CreateCompressor(cc.config);
    Strategy strategy;
    for (size_t t = 0; t < std::size(kTensorSizes); ++t) {
      strategy.options.push_back(options[(t * 5) % options.size()]);
    }
    std::vector<ErrorFeedback> feedback_batched(ranks);
    std::vector<ErrorFeedback> feedback_plain(ranks);
    ExecutorWorkspace ws_batched;
    ExecutorWorkspace ws_plain;
    for (int step = 0; step < 3; ++step) {
      std::vector<RankBuffers> batched = StepGradients(ranks, 101 * (step + 1));
      std::vector<RankBuffers> plain = batched;
      ExecutorConfig config{.machines = 2, .gpus_per_machine = 2,
                            .compressor = compressor.get(),
                            .seed = static_cast<uint64_t>(step)};
      config.feedback = &feedback_batched;
      config.batch_cutoff_elements = 4096;
      ExecuteStrategy(strategy, config, batched, &ws_batched);
      config.feedback = &feedback_plain;
      config.batch_cutoff_elements = 0;
      ExecuteStrategy(strategy, config, plain, &ws_plain);
      ExpectGradientsBitIdentical(batched, plain, cc.label, step);
    }
  }
}

// The whole executor pipeline must not depend on the dispatched ISA: scalar-forced
// and best-table runs of the same strategy agree bit for bit (with batching on, so
// the CompressBatch overrides are exercised too).
TEST(ExecutorBatching, StrategyExecutionIsIsaIndependent) {
  const std::vector<CompressionOption> options = OptionMatrix();
  const size_t ranks = 4;
  const kernels::KernelOps* best = kernels::SupportedOps().back();
  for (const CompressorCase& cc : AllCompressors()) {
    const auto compressor = CreateCompressor(cc.config);
    Strategy strategy;
    for (size_t t = 0; t < std::size(kTensorSizes); ++t) {
      strategy.options.push_back(options[(t * 3) % options.size()]);
    }
    std::vector<ErrorFeedback> feedback_scalar(ranks);
    std::vector<ErrorFeedback> feedback_simd(ranks);
    ExecutorWorkspace ws_scalar;
    ExecutorWorkspace ws_simd;
    for (int step = 0; step < 2; ++step) {
      std::vector<RankBuffers> scalar = StepGradients(ranks, 707 * (step + 1));
      std::vector<RankBuffers> simd = scalar;
      ExecutorConfig config{.machines = 2, .gpus_per_machine = 2,
                            .compressor = compressor.get(),
                            .seed = static_cast<uint64_t>(step)};
      kernels::SetActiveForTesting(&kernels::Scalar());
      config.feedback = &feedback_scalar;
      ExecuteStrategy(strategy, config, scalar, &ws_scalar);
      kernels::SetActiveForTesting(best);
      config.feedback = &feedback_simd;
      ExecuteStrategy(strategy, config, simd, &ws_simd);
      kernels::SetActiveForTesting(nullptr);
      ExpectGradientsBitIdentical(scalar, simd, cc.label, step);
    }
  }
}

// End-to-end trainer: the per-step batched pre-pass (kCompressedIndivisible) must
// reproduce the unbatched run's entire history — losses, accuracies, and fault
// counters — exactly.
TEST(ExecutorBatching, TrainerBatchingPreservesHistoryExactly) {
  const Dataset all = MakeGaussianBlobs(768, 12, 4, 2.5, 99);
  const Dataset train = Slice(all, 0, 512);
  const Dataset test = Slice(all, 512, 256);
  for (const char* algorithm : {"dgc", "qsgd", "efsignsgd"}) {
    const auto compressor =
        CreateCompressor(CompressorConfig{.algorithm = algorithm, .ratio = 0.05,
                                          .bits = 4});
    TrainConfig config;
    config.workers = 4;
    config.hidden_dim = 16;
    config.batch_per_worker = 16;
    config.epochs = 3;
    config.scheme = SyncScheme::kCompressedIndivisible;
    config.compressor = compressor.get();
    config.seed = 1234;
    config.batch_cutoff_elements = 1 << 20;  // every tensor batched
    const auto batched = TrainDataParallel(train, test, config);
    config.batch_cutoff_elements = 0;  // batching disabled
    const auto plain = TrainDataParallel(train, test, config);
    ASSERT_EQ(batched.size(), plain.size());
    for (size_t e = 0; e < batched.size(); ++e) {
      EXPECT_EQ(batched[e].train_loss, plain[e].train_loss) << algorithm << " epoch " << e;
      EXPECT_EQ(batched[e].train_accuracy, plain[e].train_accuracy)
          << algorithm << " epoch " << e;
      EXPECT_EQ(batched[e].test_accuracy, plain[e].test_accuracy)
          << algorithm << " epoch " << e;
      EXPECT_EQ(batched[e].payloads_dropped, plain[e].payloads_dropped);
      EXPECT_EQ(batched[e].payloads_corrupted, plain[e].payloads_corrupted);
    }
  }
}

}  // namespace
}  // namespace espresso

// Round-trip invariance of the deployment hand-off (the acceptance bar for the
// versioned IR): select -> compile IR -> write file -> read file -> validate -> execute
// must be indistinguishable from executing the in-memory SelectionResult — same
// evaluator pricing, same fingerprints, and bit-identical gradient aggregates — for
// every compressor on both committed testbeds.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/ir_validator.h"
#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/core/eval_cache.h"
#include "src/core/strategy_ir.h"
#include "src/ddl/strategy_executor.h"
#include "src/models/model_zoo.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

struct CompressorCase {
  const char* label;
  CompressorConfig config;
};

// The full compressor matrix. `threshold` is content-dependent (the selector's cost
// model refuses to price it), so it ships a hand-built legal strategy instead of a
// selected one — the IR pipeline must carry it just the same.
std::vector<CompressorCase> AllCompressors() {
  return {
      {"randomk", {.algorithm = "randomk", .ratio = 0.25}},
      {"dgc", {.algorithm = "dgc", .ratio = 0.25}},
      {"efsignsgd", {.algorithm = "efsignsgd"}},
      {"qsgd", {.algorithm = "qsgd", .bits = 4}},
      {"terngrad", {.algorithm = "terngrad"}},
      {"fp16", {.algorithm = "fp16"}},
      {"threshold", {.algorithm = "threshold", .threshold = 0.2}},
  };
}

RankBuffers StepGradients(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

void ExpectBitIdentical(const RankBuffers& a, const RankBuffers& b, const char* label,
                        const char* testbed) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size());
    ASSERT_EQ(std::memcmp(a[r].data(), b[r].data(), a[r].size() * sizeof(float)), 0)
        << label << " on " << testbed << " rank " << r;
  }
}

TEST(IrRoundTrip, SelectWriteLoadExecuteIsInvariant) {
  const ModelProfile model = Lstm();
  struct Testbed {
    const char* name;
    ClusterSpec cluster;
  };
  const Testbed testbeds[] = {{"nvlink", NvlinkCluster(2, 2)},
                              {"pcie", PcieCluster(2, 2)}};
  for (const Testbed& testbed : testbeds) {
    for (const CompressorCase& cc : AllCompressors()) {
      const auto compressor = CreateCompressor(cc.config);
      const bool selectable = std::string(cc.label) != "threshold";

      Strategy selected;
      double fs_score = 0.0;
      const TimelineEvaluator evaluator(model, testbed.cluster, *compressor);
      if (selectable) {
        EspressoSelector selector(model, testbed.cluster, *compressor);
        const SelectionResult result = selector.Select();
        selected = result.strategy;
        fs_score = result.iteration_time;
      } else {
        selected = HiPressStrategy(model, testbed.cluster, *compressor);
        fs_score = evaluator.IterationTime(selected);
      }

      // Select -> compile -> write -> read.
      StrategyProvenance provenance;
      provenance.origin = "selector";
      provenance.selector = selectable ? "espresso" : "manual";
      const StrategyIR ir = CompileStrategyIR(selected, fs_score, model,
                                              testbed.cluster, cc.config, provenance);
      const std::string path = ::testing::TempDir() + "/roundtrip_" + testbed.name +
                               "_" + cc.label + ".json";
      std::string error;
      ASSERT_TRUE(WriteStrategyIRFile(path, ir, &error)) << error;
      const StrategyIRParseResult parsed = ReadStrategyIRFile(path);
      ASSERT_TRUE(parsed.ok) << cc.label << ": " << parsed.error;
      std::remove(path.c_str());

      // The loaded document passes fail-closed admission on the same configuration.
      const IRValidationResult admitted = ValidateStrategyIR(
          parsed.ir, model, testbed.cluster, *compressor, cc.config);
      ASSERT_TRUE(admitted.ok) << cc.label << "\n" << admitted.report.ToString();
      EXPECT_FALSE(admitted.digest_mismatch);

      // Invariance: identical fingerprints, identical pricing...
      ASSERT_EQ(parsed.ir.strategy.options.size(), selected.options.size());
      EXPECT_EQ(StrategyFingerprint(parsed.ir.strategy), StrategyFingerprint(selected))
          << cc.label;
      EXPECT_EQ(evaluator.IterationTime(parsed.ir.strategy),
                evaluator.IterationTime(selected))
          << cc.label;

      // ...and bit-identical execution against the same gradients and seeds.
      ExecutorConfig exec;
      exec.machines = testbed.cluster.machines;
      exec.gpus_per_machine = testbed.cluster.gpus_per_machine;
      exec.compressor = compressor.get();
      exec.seed = 99;
      RankBuffers from_memory = StepGradients(exec.ranks(), 96, 7);
      RankBuffers from_ir = from_memory;
      ExecuteOption(selected.options[0], exec, /*tensor_id=*/0, from_memory);
      ExecuteOption(parsed.ir.strategy.options[0], exec, /*tensor_id=*/0, from_ir);
      ExpectBitIdentical(from_memory, from_ir, cc.label, testbed.name);
    }
  }
}

}  // namespace
}  // namespace espresso

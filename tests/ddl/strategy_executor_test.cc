#include "src/ddl/strategy_executor.h"

#include <gtest/gtest.h>

#include "src/collectives/primitives.h"
#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

RankBuffers RandomBuffers(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

void ExpectAllRanksEqual(const RankBuffers& buffers) {
  for (size_t r = 1; r < buffers.size(); ++r) {
    ASSERT_EQ(buffers[r].size(), buffers[0].size());
    for (size_t i = 0; i < buffers[0].size(); ++i) {
      ASSERT_EQ(buffers[r][i], buffers[0][i]) << "rank " << r << " idx " << i;
    }
  }
}

void ExpectNearNaiveSum(const RankBuffers& buffers, const std::vector<float>& expected,
                        float tolerance) {
  for (size_t r = 0; r < buffers.size(); ++r) {
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(buffers[r][i], expected[i], tolerance)
          << "rank " << r << " idx " << i;
    }
  }
}

TEST(StrategyExecutor, Fp32HierarchicalMatchesNaiveSum) {
  const ExecutorConfig config{.machines = 3, .gpus_per_machine = 2};
  RankBuffers buffers = RandomBuffers(config.ranks(), 97, 1);
  const std::vector<float> expected = NaiveSum(buffers);
  const TreeConfig tree{config.machines, config.gpus_per_machine, false};
  ExecuteOption(DefaultUncompressedOption(tree), config, 0, buffers);
  ExpectAllRanksEqual(buffers);
  ExpectNearNaiveSum(buffers, expected, 1e-4f);
}

TEST(StrategyExecutor, FlatAllreduceMatchesNaiveSum) {
  const ExecutorConfig config{.machines = 1, .gpus_per_machine = 4};
  RankBuffers buffers = RandomBuffers(4, 33, 2);
  const std::vector<float> expected = NaiveSum(buffers);
  const TreeConfig tree{1, 4, false};
  ExecuteOption(DefaultUncompressedOption(tree), config, 0, buffers);
  ExpectNearNaiveSum(buffers, expected, 1e-4f);
}

// Every candidate option of the decision algorithm must aggregate correctly. FP16 is
// near-lossless, so the executed result must match the exact sum tightly even through
// multi-stage compress/decompress pipelines.
TEST(StrategyExecutor, EveryCandidateOptionAggregatesCorrectlyUnderFp16) {
  const auto fp16 = CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  ExecutorConfig config{.machines = 2, .gpus_per_machine = 2, .compressor = fp16.get()};
  const TreeConfig tree{config.machines, config.gpus_per_machine, false};
  for (const CompressionOption& option : CandidateOptions(tree)) {
    RankBuffers buffers = RandomBuffers(config.ranks(), 64, 3);
    const std::vector<float> expected = NaiveSum(buffers);
    ExecuteOption(option, config, 0, buffers);
    ExpectAllRanksEqual(buffers);
    ExpectNearNaiveSum(buffers, expected, 0.05f);
  }
}

// The semantic power test: execute EVERY structural path of the decision tree and
// check aggregation. With compressed-domain aggregation enabled the skip paths require
// shared-seed Random-k; those are checked for rank agreement and support containment.
TEST(StrategyExecutor, EveryEnumeratedPathExecutes) {
  const auto fp16 = CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  const auto randomk =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.25});
  const TreeConfig plain{2, 2, false};
  const TreeConfig with_agg{2, 2, true};

  for (const CompressionOption& option : EnumerateOptions(plain).options) {
    ExecutorConfig config{.machines = 2, .gpus_per_machine = 2, .compressor = fp16.get()};
    RankBuffers buffers = RandomBuffers(4, 48, 4);
    const std::vector<float> expected = NaiveSum(buffers);
    ExecuteOption(option, config, 0, buffers);
    ExpectAllRanksEqual(buffers);
    ExpectNearNaiveSum(buffers, expected, 0.05f);
  }
  for (const CompressionOption& option : EnumerateOptions(with_agg).options) {
    ExecutorConfig config{.machines = 2, .gpus_per_machine = 2,
                          .compressor = randomk.get()};
    RankBuffers buffers = RandomBuffers(4, 48, 5);
    ExecuteOption(option, config, 0, buffers);
    ExpectAllRanksEqual(buffers);
    for (float v : buffers[0]) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(StrategyExecutor, SkipVariantEqualsExplicitAggregation) {
  // With shared-seed Random-k, aggregating in the compressed domain (the skip path)
  // must produce exactly the decompress-aggregate result of the indivisible scheme.
  const auto randomk =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.2});
  ExecutorConfig config{.machines = 1, .gpus_per_machine = 4, .compressor = randomk.get()};
  const TreeConfig tree{1, 4, true};

  CompressionOption explicit_agg, skip_agg;
  for (const CompressionOption& option : EnumerateOptions(tree).options) {
    if (option.label == "flat[comp+agc+dec]") {
      explicit_agg = option;
    }
    if (option.label == "flat[comp+agc+aggc]") {
      skip_agg = option;
    }
  }
  ASSERT_FALSE(explicit_agg.ops.empty());
  ASSERT_FALSE(skip_agg.ops.empty());

  RankBuffers a = RandomBuffers(4, 100, 6);
  RankBuffers b = a;
  ExecuteOption(explicit_agg, config, 0, a);
  ExecuteOption(skip_agg, config, 0, b);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t i = 0; i < 100; ++i) {
      ASSERT_NEAR(a[r][i], b[r][i], 1e-5f);
    }
  }
}

TEST(StrategyExecutor, BaselineOptionsExecute) {
  const auto fp16 = CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  ExecutorConfig config{.machines = 2, .gpus_per_machine = 2, .compressor = fp16.get()};
  for (const CompressionOption& option :
       {InterOnlyIndivisibleOption(cluster, Device::kGpu),
        InterOnlyDivisibleOption(cluster, Device::kGpu),
        AlltoallAlltoallOption(cluster, Device::kGpu)}) {
    RankBuffers buffers = RandomBuffers(4, 40, 7);
    const std::vector<float> expected = NaiveSum(buffers);
    ExecuteOption(option, config, 0, buffers);
    ExpectAllRanksEqual(buffers);
    ExpectNearNaiveSum(buffers, expected, 0.05f);
  }
}

TEST(StrategyExecutor, ErrorFeedbackTelescopesThroughExecutor) {
  const auto topk = CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.1});
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  std::vector<ErrorFeedback> feedback(4);
  ExecutorConfig config{.machines = 2, .gpus_per_machine = 2, .compressor = topk.get(),
                        .feedback = &feedback};
  const CompressionOption option = InterOnlyIndivisibleOption(cluster, Device::kGpu);

  const size_t n = 50;
  std::vector<float> grad(n);
  Rng rng(8);
  rng.FillNormal(grad, 0.0, 1.0);

  // Synchronize the same per-rank gradient repeatedly; with EF, the accumulated
  // aggregate converges toward steps * exact-sum (nothing is lost permanently).
  std::vector<double> accumulated(n, 0.0);
  const int steps = 40;
  for (int s = 0; s < steps; ++s) {
    RankBuffers buffers(4, grad);
    config.seed = static_cast<uint64_t>(s);
    ExecuteOption(option, config, /*tensor_id=*/3, buffers);
    for (size_t i = 0; i < n; ++i) {
      accumulated[i] += buffers[0][i];
    }
  }
  double err = 0.0, energy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double target = 4.0 * grad[i] * steps;
    err += (accumulated[i] - target) * (accumulated[i] - target);
    energy += target * target;
  }
  EXPECT_LT(err, energy * 0.01);
}

TEST(StrategyExecutor, ExecuteStrategyHandlesMixedOptions) {
  const auto fp16 = CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  const TreeConfig tree{2, 2, false};
  ExecutorConfig config{.machines = 2, .gpus_per_machine = 2, .compressor = fp16.get()};

  Strategy strategy;
  strategy.options = {DefaultUncompressedOption(tree),
                      InterOnlyIndivisibleOption(cluster, Device::kGpu),
                      InterOnlyDivisibleOption(cluster, Device::kCpu)};
  std::vector<RankBuffers> gradients;
  std::vector<std::vector<float>> expected;
  for (size_t t = 0; t < 3; ++t) {
    gradients.push_back(RandomBuffers(4, 30 + 7 * t, 9 + t));
    expected.push_back(NaiveSum(gradients.back()));
  }
  ExecuteStrategy(strategy, config, gradients);
  for (size_t t = 0; t < 3; ++t) {
    ExpectAllRanksEqual(gradients[t]);
    ExpectNearNaiveSum(gradients[t], expected[t], 0.05f);
  }
}

TEST(StrategyExecutorDeathTest, CompressedOptionWithoutCompressorDies) {
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  ExecutorConfig config{.machines = 2, .gpus_per_machine = 2};
  RankBuffers buffers = RandomBuffers(4, 16, 10);
  EXPECT_DEATH(
      ExecuteOption(InterOnlyIndivisibleOption(cluster, Device::kGpu), config, 0, buffers),
      "compressor");
}

}  // namespace
}  // namespace espresso

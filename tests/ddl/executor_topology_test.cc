// Parameterized sweep: the strategy executor must aggregate correctly over every
// cluster topology shape (flat single-machine, single-GPU-per-machine, and proper
// hierarchies), for every candidate option valid there.
#include <gtest/gtest.h>

#include "src/collectives/primitives.h"
#include "src/core/decision_tree.h"
#include "src/ddl/strategy_executor.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

using Topology = std::pair<size_t, size_t>;  // machines, gpus_per_machine

class ExecutorTopology : public ::testing::TestWithParam<Topology> {};

TEST_P(ExecutorTopology, CandidatesAggregateUnderFp16) {
  const auto [machines, gpus] = GetParam();
  const auto fp16 = CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  ExecutorConfig config{machines, gpus, fp16.get()};
  const TreeConfig tree{machines, gpus, false};
  uint64_t seed = 0;
  for (const CompressionOption& option : CandidateOptions(tree)) {
    RankBuffers buffers(config.ranks(), std::vector<float>(37));
    for (size_t r = 0; r < config.ranks(); ++r) {
      Rng rng(DeriveSeed(100 + seed, r));
      rng.FillNormal(buffers[r], 0.0, 1.0);
    }
    ++seed;
    const std::vector<float> expected = NaiveSum(buffers);
    ExecuteOption(option, config, seed, buffers);
    for (size_t r = 0; r < config.ranks(); ++r) {
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(buffers[r][i], expected[i], 0.05f)
            << option.Describe() << " rank " << r << " @" << machines << "x" << gpus;
      }
    }
  }
}

TEST_P(ExecutorTopology, RandomkSkipPathsAggregateConsistently) {
  const auto [machines, gpus] = GetParam();
  const auto randomk =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.3});
  ExecutorConfig config{machines, gpus, randomk.get()};
  const TreeConfig tree{machines, gpus, true};
  for (const CompressionOption& option : CandidateOptions(tree)) {
    RankBuffers buffers(config.ranks(), std::vector<float>(41));
    for (size_t r = 0; r < config.ranks(); ++r) {
      Rng rng(DeriveSeed(7, r));
      rng.FillNormal(buffers[r], 0.0, 1.0);
    }
    ExecuteOption(option, config, 0, buffers);
    for (size_t r = 1; r < config.ranks(); ++r) {
      ASSERT_EQ(buffers[r], buffers[0]) << option.Describe();
    }
    for (float v : buffers[0]) {
      ASSERT_TRUE(std::isfinite(v)) << option.Describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, ExecutorTopology,
                         ::testing::Values(Topology{1, 2}, Topology{1, 8}, Topology{2, 1},
                                           Topology{8, 1}, Topology{2, 2}, Topology{2, 4},
                                           Topology{4, 2}, Topology{3, 3}),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param.first) + "_g" +
                                  std::to_string(info.param.second);
                         });

}  // namespace
}  // namespace espresso

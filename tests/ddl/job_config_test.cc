#include "src/ddl/job_config.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

ConfigFile ModelZooFile() { return ConfigFile::ParseString("[model]\nname = gpt2\n"); }
ConfigFile GcFile() {
  return ConfigFile::ParseString("[compression]\nalgorithm = dgc\nratio = 0.01\n");
}
ConfigFile SystemFile() {
  return ConfigFile::ParseString("[cluster]\ntestbed = nvlink\nmachines = 4\n");
}

TEST(JobConfig, LoadsZooModel) {
  const JobConfigResult r = LoadJobConfig(ModelZooFile(), GcFile(), SystemFile());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.job.model.name, "gpt2");
  EXPECT_EQ(r.job.model.TensorCount(), 148u);
  EXPECT_EQ(r.job.compressor.algorithm, "dgc");
  EXPECT_EQ(r.job.cluster.machines, 4u);
  EXPECT_EQ(r.job.cluster.gpus_per_machine, 8u);  // preset default preserved
  EXPECT_NE(r.job.MakeCompressor(), nullptr);
}

TEST(JobConfig, LoadsCustomModelInBackwardOrder) {
  const ConfigFile model = ConfigFile::ParseString(R"(
[model]
label = tiny
forward_ms = 10
optimizer_ms = 1
batch_size = 4
unit = samples/s
[tensors]
out.weight = 1000, 0.5
in.weight = 2000, 1.5
)");
  const JobConfigResult r = LoadJobConfig(model, GcFile(), SystemFile());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.job.model.name, "tiny");
  ASSERT_EQ(r.job.model.TensorCount(), 2u);
  EXPECT_EQ(r.job.model.tensors[0].name, "out.weight");
  EXPECT_EQ(r.job.model.tensors[1].elements, 2000u);
  EXPECT_DOUBLE_EQ(r.job.model.tensors[1].backward_time_s, 1.5e-3);
  EXPECT_DOUBLE_EQ(r.job.model.forward_time_s, 10e-3);
  EXPECT_EQ(r.job.model.batch_size, 4u);
}

TEST(JobConfig, ClusterOverrides) {
  const ConfigFile system = ConfigFile::ParseString(R"(
[cluster]
testbed = pcie
machines = 2
gpus_per_machine = 4
inter_gbps = 40
inter_latency_us = 10
cpu_workers_per_gpu = 5
host_copy_contends_intra = false
)");
  const JobConfigResult r = LoadJobConfig(ModelZooFile(), GcFile(), system);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.job.cluster.machines, 2u);
  EXPECT_EQ(r.job.cluster.gpus_per_machine, 4u);
  EXPECT_DOUBLE_EQ(r.job.cluster.inter.bytes_per_second, 40e9 / 8.0);
  EXPECT_DOUBLE_EQ(r.job.cluster.inter.latency_s, 10e-6);
  EXPECT_EQ(r.job.cluster.cpu_workers_per_gpu, 5u);
  EXPECT_FALSE(r.job.cluster.host_copy_contends_intra);
}

TEST(JobConfig, MaxCompressOpsConstraint) {
  const ConfigFile gc = ConfigFile::ParseString(
      "[compression]\nalgorithm = efsignsgd\nmax_compress_ops = 1\n");
  const JobConfigResult r = LoadJobConfig(ModelZooFile(), gc, SystemFile());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.job.max_compress_ops, 1u);
}

TEST(JobConfig, RejectsBadInputs) {
  // Missing tensors and no zoo name.
  EXPECT_FALSE(LoadJobConfig(ConfigFile::ParseString("[model]\nbatch_size = 4\n"),
                             GcFile(), SystemFile())
                   .ok);
  // Malformed tensor entry.
  EXPECT_FALSE(LoadJobConfig(ConfigFile::ParseString("[tensors]\nw = 100\n"), GcFile(),
                             SystemFile())
                   .ok);
  // Ratio out of range.
  EXPECT_FALSE(LoadJobConfig(ModelZooFile(),
                             ConfigFile::ParseString("[compression]\nratio = 1.5\n"),
                             SystemFile())
                   .ok);
  // Unknown testbed.
  EXPECT_FALSE(LoadJobConfig(ModelZooFile(), GcFile(),
                             ConfigFile::ParseString("[cluster]\ntestbed = tpu\n"))
                   .ok);
  // Parse error propagates with a file tag.
  const JobConfigResult r =
      LoadJobConfig(ConfigFile::ParseString("broken"), GcFile(), SystemFile());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("model config"), std::string::npos);
}

TEST(JobConfig, ShippedConfigFilesLoad) {
  // The sample files in configs/ must stay valid.
  const JobConfigResult r = LoadJobConfigFromFiles(
      "configs/model_gpt2.ini", "configs/gc_dgc.ini", "configs/system_nvlink.ini");
  if (!r.ok) {
    GTEST_SKIP() << "configs/ not reachable from test cwd: " << r.error;
  }
  EXPECT_EQ(r.job.model.name, "gpt2");
  EXPECT_EQ(r.job.cluster.intra.name, "nvlink");
}

}  // namespace
}  // namespace espresso

// Bit-identity of the pooled execution dataplane: running an option through a shared,
// warmed-up ExecutorWorkspace must produce byte-for-byte the same aggregates as running
// each step against a fresh (cold) workspace. The memory layer is a pure reuse
// optimization — the float summation orders, RNG draw sequences, and payload orderings
// are untouched — so any divergence here is a dataplane bug, not tolerance noise.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/ddl/strategy_executor.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

struct CompressorCase {
  const char* label;
  CompressorConfig config;
};

std::vector<CompressorCase> AllCompressors() {
  return {
      {"randomk", {.algorithm = "randomk", .ratio = 0.25}},
      {"topk", {.algorithm = "topk", .ratio = 0.25}},
      {"efsignsgd", {.algorithm = "efsignsgd"}},
      {"qsgd", {.algorithm = "qsgd", .bits = 4}},
      {"terngrad", {.algorithm = "terngrad"}},
      {"fp16", {.algorithm = "fp16"}},
      {"threshold", {.algorithm = "threshold", .threshold = 0.2}},
  };
}

// The option matrix: every pruned candidate (flat + hierarchical, divisible +
// indivisible mixes) plus the three named baselines over the 2x2 cluster.
std::vector<CompressionOption> OptionMatrix() {
  const TreeConfig tree{2, 2, false};
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  std::vector<CompressionOption> options = CandidateOptions(tree);
  options.push_back(InterOnlyIndivisibleOption(cluster, Device::kGpu));
  options.push_back(InterOnlyDivisibleOption(cluster, Device::kGpu));
  options.push_back(AlltoallAlltoallOption(cluster, Device::kGpu));
  return options;
}

RankBuffers StepGradients(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

void ExpectBitIdentical(const RankBuffers& a, const RankBuffers& b, const char* label,
                        size_t option_index, int step) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size());
    for (size_t i = 0; i < a[r].size(); ++i) {
      // memcmp-style comparison: bit-identical, not approximately equal.
      ASSERT_EQ(std::memcmp(&a[r][i], &b[r][i], sizeof(float)), 0)
          << label << " option " << option_index << " step " << step << " rank " << r
          << " idx " << i << ": " << a[r][i] << " vs " << b[r][i];
    }
  }
}

// All compressors x all options: three steps through ONE shared workspace versus the
// same three steps each against a fresh workspace, with independent but identically
// seeded error-feedback state on both sides.
TEST(ExecutorEquivalence, SharedWorkspaceMatchesFreshWorkspaceBitExactly) {
  const std::vector<CompressionOption> options = OptionMatrix();
  const size_t ranks = 4;
  const size_t n = 96;  // not a multiple of 4 partitions' shard sizes being equal
  for (const CompressorCase& cc : AllCompressors()) {
    const auto compressor = CreateCompressor(cc.config);
    for (size_t o = 0; o < options.size(); ++o) {
      std::vector<ErrorFeedback> feedback_shared(ranks);
      std::vector<ErrorFeedback> feedback_fresh(ranks);
      ExecutorWorkspace shared;
      for (int step = 0; step < 3; ++step) {
        ExecutorConfig config{.machines = 2, .gpus_per_machine = 2,
                              .compressor = compressor.get(),
                              .seed = static_cast<uint64_t>(step)};
        RankBuffers warm = StepGradients(ranks, n, 11 * (step + 1));
        RankBuffers cold = warm;

        config.feedback = &feedback_shared;
        ExecuteOption(options[o], config, /*tensor_id=*/0, warm, &shared);

        ExecutorWorkspace fresh;
        config.feedback = &feedback_fresh;
        ExecuteOption(options[o], config, /*tensor_id=*/0, cold, &fresh);

        ExpectBitIdentical(warm, cold, cc.label, o, step);
      }
    }
  }
}

// The compressed-domain aggregation (skip) paths only exist for shared-seed Random-k;
// run the full enumerated tree with aggregation enabled through a shared workspace.
TEST(ExecutorEquivalence, CompressedAggregationPathsMatchBitExactly) {
  const auto randomk =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.2});
  const TreeConfig with_agg{2, 2, true};
  const std::vector<CompressionOption> options = EnumerateOptions(with_agg).options;
  ASSERT_FALSE(options.empty());
  ExecutorWorkspace shared;
  for (size_t o = 0; o < options.size(); ++o) {
    for (int step = 0; step < 2; ++step) {
      ExecutorConfig config{.machines = 2, .gpus_per_machine = 2,
                            .compressor = randomk.get(),
                            .seed = static_cast<uint64_t>(step)};
      RankBuffers warm = StepGradients(4, 64, 17 * (step + 1));
      RankBuffers cold = warm;
      ExecuteOption(options[o], config, 0, warm, &shared);
      ExecutorWorkspace fresh;
      ExecuteOption(options[o], config, 0, cold, &fresh);
      ExpectBitIdentical(warm, cold, "randomk-agg", o, step);
    }
  }
}

// Tensor shapes changing under one workspace (the strategy case: many tensors, one
// workspace) must not perturb results either.
TEST(ExecutorEquivalence, MixedShapesThroughOneWorkspaceMatch) {
  const auto topk =
      CreateCompressor(CompressorConfig{.algorithm = "topk", .ratio = 0.3});
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  const CompressionOption option = InterOnlyIndivisibleOption(cluster, Device::kGpu);
  ExecutorWorkspace shared;
  const size_t sizes[] = {128, 9, 64, 33, 128};
  for (int step = 0; step < 2; ++step) {
    for (size_t t = 0; t < std::size(sizes); ++t) {
      ExecutorConfig config{.machines = 2, .gpus_per_machine = 2,
                            .compressor = topk.get(),
                            .seed = static_cast<uint64_t>(step)};
      RankBuffers warm = StepGradients(4, sizes[t], 23 * (t + 1) + step);
      RankBuffers cold = warm;
      ExecuteOption(option, config, t, warm, &shared);
      ExecutorWorkspace fresh;
      ExecuteOption(option, config, t, cold, &fresh);
      ExpectBitIdentical(warm, cold, "mixed-shapes", t, step);
    }
  }
}

}  // namespace
}  // namespace espresso

#include "src/ddl/experiment.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

TEST(Experiment, SingleGpuThroughputDefinition) {
  const ModelProfile model = Lstm();
  EXPECT_DOUBLE_EQ(SingleGpuThroughput(model),
                   static_cast<double>(model.batch_size) / model.SingleGpuIterationTime());
}

TEST(Experiment, MeasureThroughputConsistency) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "dgc"});
  const ThroughputResult r =
      MeasureThroughput(model, cluster, *compressor, Fp32Strategy(model, cluster));
  EXPECT_NEAR(r.throughput,
              64.0 * static_cast<double>(model.batch_size) / r.iteration_time_s, 1e-6);
  EXPECT_NEAR(r.scaling_factor, r.throughput / (64.0 * SingleGpuThroughput(model)), 1e-9);
}

TEST(Experiment, SchemeNames) {
  EXPECT_STREQ(SchemeName(Scheme::kFp32), "FP32");
  EXPECT_STREQ(SchemeName(Scheme::kBytePSCompress), "BytePS-Compress");
  EXPECT_STREQ(SchemeName(Scheme::kHiTopKComm), "HiTopKComm");
  EXPECT_STREQ(SchemeName(Scheme::kHiPress), "HiPress");
  EXPECT_STREQ(SchemeName(Scheme::kEspresso), "Espresso");
  EXPECT_STREQ(SchemeName(Scheme::kUpperBound), "Upper Bound");
}

TEST(Experiment, RunSchemeCoversAllSchemes) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "efsignsgd"});
  for (Scheme scheme : {Scheme::kFp32, Scheme::kBytePSCompress, Scheme::kHiTopKComm,
                        Scheme::kHiPress, Scheme::kEspresso, Scheme::kUpperBound}) {
    const ThroughputResult r = RunScheme(model, cluster, *compressor, scheme);
    EXPECT_GT(r.iteration_time_s, 0.0) << SchemeName(scheme);
    EXPECT_GT(r.throughput, 0.0) << SchemeName(scheme);
  }
}

TEST(Experiment, ScalingFactorAtMostOnePlusEpsilon) {
  // Communication can only slow an iteration down relative to a single GPU.
  const ModelProfile model = Gpt2();
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "randomk"});
  for (bool pcie : {false, true}) {
    const ClusterSpec cluster = pcie ? PcieCluster() : NvlinkCluster();
    const ThroughputResult r = RunScheme(model, cluster, *compressor, Scheme::kUpperBound);
    EXPECT_LE(r.scaling_factor, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace espresso

#include "src/ddl/profiler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/models/model_zoo.h"

namespace espresso {
namespace {

TEST(ProfileModel, RecoversGroundTruthFromNoisyTraces) {
  const ModelProfile truth = Lstm();
  const ModelProfileResult result = ProfileModel(truth, /*iterations=*/100,
                                                 /*jitter=*/0.05, /*seed=*/7);
  ASSERT_EQ(result.profile.TensorCount(), truth.TensorCount());
  EXPECT_EQ(result.iterations, 100u);
  for (size_t i = 0; i < truth.tensors.size(); ++i) {
    EXPECT_NEAR(result.profile.tensors[i].backward_time_s, truth.tensors[i].backward_time_s,
                truth.tensors[i].backward_time_s * 0.03)
        << truth.tensors[i].name;
  }
  // The paper reports <5% normalized standard deviation for these measurements; the
  // profiler's per-tensor spread should match the injected jitter.
  EXPECT_LT(result.max_normalized_stddev, 0.10);
  EXPECT_GT(result.max_normalized_stddev, 0.01);
}

TEST(ProfileModel, ZeroJitterIsExact) {
  const ModelProfile truth = Vgg16();
  const ModelProfileResult result = ProfileModel(truth, 10, 0.0, 1);
  for (size_t i = 0; i < truth.tensors.size(); ++i) {
    EXPECT_NEAR(result.profile.tensors[i].backward_time_s,
                truth.tensors[i].backward_time_s,
                truth.tensors[i].backward_time_s * 1e-12);
  }
  EXPECT_LT(result.max_normalized_stddev, 1e-6);
}

TEST(ProfileModel, MoreIterationsTightenTheEstimate) {
  const ModelProfile truth = Lstm();
  auto worst_error = [&](size_t iterations) {
    const ModelProfileResult result = ProfileModel(truth, iterations, 0.2, 3);
    double worst = 0.0;
    for (size_t i = 0; i < truth.tensors.size(); ++i) {
      worst = std::max(worst,
                       std::fabs(result.profile.tensors[i].backward_time_s -
                                 truth.tensors[i].backward_time_s) /
                           truth.tensors[i].backward_time_s);
    }
    return worst;
  };
  EXPECT_LT(worst_error(400), worst_error(4));
}

TEST(ProfileCompressor, MeasuresRealWallClock) {
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "efsignsgd"});
  const CompressorProfileResult result =
      ProfileCompressor(*compressor, {1 << 12, 1 << 14, 1 << 16}, /*repetitions=*/5);
  ASSERT_EQ(result.points.size(), 3u);
  for (const auto& p : result.points) {
    EXPECT_GT(p.compress_seconds, 0.0);
    EXPECT_GT(p.decompress_seconds, 0.0);
  }
  // Bigger tensors take longer.
  EXPECT_GT(result.points[2].compress_seconds, result.points[0].compress_seconds);
  // The fitted model is usable by the cost layer.
  EXPECT_GT(result.fitted.compress_bytes_per_s, 0.0);
  EXPECT_GT(result.fitted.decompress_bytes_per_s, 0.0);
  EXPECT_GE(result.fitted.launch_overhead_s, 0.0);
}

TEST(ProfileCompressor, FitPredictsMeasuredPoints) {
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  const CompressorProfileResult result =
      ProfileCompressor(*compressor, {1 << 13, 1 << 15, 1 << 17, 1 << 19}, 5);
  // The affine fit should track the largest measured point within ~3x (timer noise on a
  // loaded host can be substantial; the shape is what matters).
  const auto& largest = result.points.back();
  const double predicted =
      result.fitted.launch_overhead_s +
      static_cast<double>(largest.elements) * sizeof(float) /
          result.fitted.compress_bytes_per_s;
  EXPECT_GT(predicted, largest.compress_seconds / 3.0);
  EXPECT_LT(predicted, largest.compress_seconds * 3.0);
}

TEST(ProfileCompressorDeathTest, RejectsEmptyInputs) {
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  EXPECT_DEATH(ProfileCompressor(*compressor, {}, 5), "");
  EXPECT_DEATH(ProfileCompressor(*compressor, {16}, 0), "");
}

}  // namespace
}  // namespace espresso

#include "src/analysis/schedule_verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

ModelProfile SmallModel() {
  ModelProfile m;
  m.name = "toy";
  m.forward_time_s = 5e-3;
  m.optimizer_time_s = 1e-3;
  m.batch_size = 1;
  m.throughput_unit = "it/s";
  m.tensors = {
      {"T0", 4 << 20, 10e-3},
      {"T1", 4 << 20, 10e-3},
      {"T2", 4 << 20, 10e-3},
  };
  return m;
}

std::unique_ptr<Compressor> Dgc() {
  return CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
}

const Diagnostic* FindRule(const DiagnosticReport& report, const char* rule) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) {
      return &d;
    }
  }
  return nullptr;
}

class ScheduleVerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = SmallModel();
    cluster_ = NvlinkCluster();
    compressor_ = Dgc();
    evaluator_ = std::make_unique<TimelineEvaluator>(model_, cluster_, *compressor_);
    config_.cpu_workers = cluster_.cpu_workers_per_gpu;
  }

  TimelineResult Simulate(const Strategy& strategy) {
    return evaluator_->Evaluate(strategy, /*record_entries=*/true);
  }

  ModelProfile model_;
  ClusterSpec cluster_;
  std::unique_ptr<Compressor> compressor_;
  std::unique_ptr<TimelineEvaluator> evaluator_;
  VerifierConfig config_;
};

TEST_F(ScheduleVerifierTest, RealTimelinesVerifyClean) {
  for (const Strategy& strategy :
       {Fp32Strategy(model_, cluster_), HiPressStrategy(model_, cluster_, *compressor_),
        BytePSCompressStrategy(model_, cluster_, *compressor_)}) {
    const TimelineResult result = Simulate(strategy);
    ASSERT_FALSE(result.entries.empty());
    const DiagnosticReport report =
        VerifySimulatedTimeline(strategy, result.entries, config_);
    EXPECT_FALSE(report.HasErrors()) << strategy.Summary() << "\n" << report.ToString();
  }
}

TEST_F(ScheduleVerifierTest, SelectedStrategyVerifiesClean) {
  EspressoSelector selector(model_, cluster_, *compressor_);
  const Strategy strategy = selector.Select().strategy;
  const TimelineResult result = Simulate(strategy);
  const DiagnosticReport report =
      VerifySimulatedTimeline(strategy, result.entries, config_);
  EXPECT_FALSE(report.HasErrors()) << report.ToString();
}

TEST_F(ScheduleVerifierTest, DetectsSerialOverlapWithWitness) {
  const Strategy strategy = Fp32Strategy(model_, cluster_);
  std::vector<TimelineEntry> entries = Simulate(strategy).entries;
  // Drag the second gpu compute back over the first.
  entries[1].start = entries[0].start;
  const DiagnosticReport report = VerifySchedule(entries, config_);
  const Diagnostic* d = FindRule(report, rules::kSerialOverlap);
  ASSERT_NE(d, nullptr) << report.ToString();
  // The minimal witness: exactly the two conflicting intervals.
  ASSERT_EQ(d->witnesses.size(), 2u);
  EXPECT_EQ(d->witnesses[0].resource, "gpu");
  EXPECT_EQ(d->witnesses[1].resource, "gpu");
}

TEST_F(ScheduleVerifierTest, ZeroDurationIntervalsDoNotOverlap) {
  // A zero-length op coinciding with another task's boundary occupies no time.
  std::vector<TimelineEntry> entries = {
      {0, "compute", "gpu", 0.0, 1.0},
      {0, "compress", "gpu", 1.0, 1.0},
      {1, "compute", "gpu", 1.0, 2.0},
  };
  VerifierConfig config = config_;
  config.check_priority = false;
  EXPECT_FALSE(VerifySchedule(entries, config).HasErrors());
}

TEST_F(ScheduleVerifierTest, DetectsNestedOverlap) {
  // The long interval contains a later short one; adjacent-pair scanning would miss
  // the third interval against the first.
  std::vector<TimelineEntry> entries = {
      {0, "allreduce", "inter", 0.0, 10.0},
      {1, "allreduce", "inter", 1.0, 2.0},
      {2, "allreduce", "inter", 5.0, 6.0},
  };
  VerifierConfig config = config_;
  config.check_priority = false;
  const DiagnosticReport report = VerifySchedule(entries, config);
  EXPECT_GE(report.ErrorCount(), 2u) << report.ToString();
  EXPECT_TRUE(report.HasRule(rules::kSerialOverlap));
}

TEST_F(ScheduleVerifierTest, DetectsCausalityViolation) {
  const Strategy strategy = Fp32Strategy(model_, cluster_);
  std::vector<TimelineEntry> entries = Simulate(strategy).entries;
  // Find a comm entry and start it before its tensor's compute finished.
  const auto comm = std::find_if(entries.begin(), entries.end(), [](const TimelineEntry& e) {
    return e.kind != "compute" && e.kind != "hostcopy";
  });
  ASSERT_NE(comm, entries.end());
  comm->start = 0.0;
  const DiagnosticReport report = VerifySchedule(entries, config_);
  EXPECT_TRUE(report.HasRule(rules::kCausality)) << report.ToString();
}

TEST_F(ScheduleVerifierTest, DetectsPoolOvercommit) {
  // cpu is a pool: `workers` concurrent lanes are fine, workers + 1 is a violation.
  std::vector<TimelineEntry> entries;
  entries.reserve(config_.cpu_workers + 2);
  for (size_t i = 0; i < config_.cpu_workers + 1; ++i) {
    entries.push_back(TimelineEntry{i, "compress", "cpu", 0.0, 1.0});
  }
  VerifierConfig config = config_;
  config.check_priority = false;
  EXPECT_TRUE(VerifySchedule(entries, config).HasRule(rules::kPoolOvercommit));

  entries.pop_back();
  EXPECT_FALSE(VerifySchedule(entries, config).HasErrors());
}

TEST_F(ScheduleVerifierTest, DetectsPriorityInversion) {
  // Tensor 1's comm runs first even though tensor 0's was ready (both computes done).
  std::vector<TimelineEntry> entries = {
      {0, "compute", "gpu", 0.0, 1.0},
      {0, "allreduce", "inter", 5.0, 6.0},
      {1, "compute", "gpu", 1.0, 2.0},
      {1, "allreduce", "inter", 2.0, 5.0},
  };
  const DiagnosticReport report = VerifySchedule(entries, config_);
  const Diagnostic* d = FindRule(report, rules::kPriorityInversion);
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->witnesses.size(), 2u);
}

TEST_F(ScheduleVerifierTest, FifoOrderIsNotAnInversion) {
  std::vector<TimelineEntry> entries = {
      {0, "compute", "gpu", 0.0, 1.0},
      {0, "allreduce", "inter", 1.0, 3.0},
      {1, "compute", "gpu", 1.0, 2.0},
      {1, "allreduce", "inter", 3.0, 4.0},
  };
  EXPECT_FALSE(VerifySchedule(entries, config_).HasErrors());
}

TEST_F(ScheduleVerifierTest, DetectsNonFiniteAndNegativeDurations) {
  std::vector<TimelineEntry> entries = {
      {0, "compute", "gpu", 0.0, std::numeric_limits<double>::infinity()},
      {1, "compute", "gpu", 2.0, 1.0},
  };
  VerifierConfig config = config_;
  config.check_priority = false;
  const DiagnosticReport report = VerifySchedule(entries, config);
  EXPECT_TRUE(report.HasRule(rules::kNonFiniteTime));
  EXPECT_TRUE(report.HasRule(rules::kNegativeDuration));
}

TEST_F(ScheduleVerifierTest, DetectsOpCountMismatch) {
  const Strategy strategy = Fp32Strategy(model_, cluster_);
  std::vector<TimelineEntry> entries = Simulate(strategy).entries;
  // Drop tensor 0's comm entry: the option says it must exist.
  const auto comm = std::find_if(entries.begin(), entries.end(), [](const TimelineEntry& e) {
    return e.tensor == 0 && e.kind != "compute" && e.kind != "hostcopy";
  });
  ASSERT_NE(comm, entries.end());
  entries.erase(comm);
  const DiagnosticReport report = VerifySimulatedTimeline(strategy, entries, config_);
  EXPECT_TRUE(report.HasRule(rules::kOpCountMismatch)) << report.ToString();
}

TEST_F(ScheduleVerifierTest, DetectsBytesNotConserved) {
  // A strategy whose compress op claims to cover less than the domain it compressed.
  // The entries are simulated from the legal FP32 strategy and extended by hand (the
  // evaluator itself refuses to run illegal strategies in verification builds).
  Strategy strategy = Fp32Strategy(model_, cluster_);
  std::vector<TimelineEntry> entries = Simulate(strategy).entries;

  Op compress;
  compress.task = ActionTask::kCompress;
  compress.phase = strategy.options[0].flat ? CommPhase::kFlat : CommPhase::kIntraFirst;
  compress.domain_fraction = 1.0;
  compress.payload_fraction = 0.25;
  Op decompress = compress;
  decompress.task = ActionTask::kDecompress;
  decompress.payload_fraction = 1.0;
  strategy.options[0].ops.insert(strategy.options[0].ops.begin(), {compress, decompress});

  // Mirror the new ops as zero-duration entries right before tensor 0's first comm so
  // the stream still corresponds to the (now illegal) option.
  const auto comm = std::find_if(entries.begin(), entries.end(), [](const TimelineEntry& e) {
    return e.tensor == 0 && e.kind != "compute" && e.kind != "hostcopy";
  });
  ASSERT_NE(comm, entries.end());
  const double t = comm->start;
  entries.insert(comm, {TimelineEntry{0, "compress", "gpu", t, t},
                        TimelineEntry{0, "decompress", "gpu", t, t}});
  const DiagnosticReport report = VerifySimulatedTimeline(strategy, entries, config_);
  EXPECT_TRUE(report.HasRule(rules::kBytesNotConserved)) << report.ToString();
}

}  // namespace
}  // namespace espresso

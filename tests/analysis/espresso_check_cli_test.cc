// Subprocess tests for the espresso_check executable: exit-code contract (0 clean,
// 1 findings, 2 usage/config errors), --json byte-stability across runs, and the three
// --inject self-test modes mirroring strategy_lint --inject.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace espresso {
namespace {

#ifndef ESPRESSO_CHECK_PATH
#error "ESPRESSO_CHECK_PATH must point at the espresso_check executable"
#endif
#ifndef ESPRESSO_CONFIG_DIR
#error "ESPRESSO_CONFIG_DIR must point at the repository's configs/ directory"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

std::string ConfigPath(const std::string& name) {
  return std::string(ESPRESSO_CONFIG_DIR) + "/" + name;
}

std::string JobArgs() {
  return ConfigPath("model_gpt2.ini") + " " + ConfigPath("gc_dgc.ini") + " " +
         ConfigPath("system_nvlink.ini");
}

RunResult RunCheck(const std::string& args) {
  // Unique per test AND per call: ctest runs the cases of this binary in parallel,
  // so a shared capture file would race.
  static int call_count = 0;
  const std::string out_path =
      ::testing::TempDir() + "/espresso_check_out_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
      std::to_string(call_count++) + ".txt";
  const std::string command =
      std::string(ESPRESSO_CHECK_PATH) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(command.c_str());
  RunResult result;
#ifdef WIFEXITED
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  result.exit_code = status;
#endif
  std::ifstream in(out_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  std::remove(out_path.c_str());
  return result;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(EspressoCheckCli, CleanRunOverCommittedConfigsExitsZero) {
  const RunResult result = RunCheck(JobArgs());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("options"), std::string::npos) << result.output;
}

TEST(EspressoCheckCli, UsageAndConfigErrorsExitTwo) {
  EXPECT_EQ(RunCheck("").exit_code, 2);
  EXPECT_EQ(RunCheck(JobArgs() + " --inject bogus-mode").exit_code, 2);
  EXPECT_EQ(RunCheck(JobArgs() + " --no-such-flag").exit_code, 2);
  EXPECT_EQ(RunCheck(ConfigPath("does_not_exist.ini") + " " + ConfigPath("gc_dgc.ini") +
                     " " + ConfigPath("system_nvlink.ini"))
                .exit_code,
            2);
}

TEST(EspressoCheckCli, InjectMissingOptionFailsWithSpaceRule) {
  const RunResult result = RunCheck(JobArgs() + " --inject missing-option");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("esc.space-incomplete"), std::string::npos)
      << result.output;
}

TEST(EspressoCheckCli, InjectCostNegativeFailsWithIntervalRule) {
  const RunResult result = RunCheck(JobArgs() + " --inject cost-negative");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("esc.interval-property"), std::string::npos)
      << result.output;
}

TEST(EspressoCheckCli, InjectValidatorSplitFailsWithDifferentialRule) {
  const RunResult result = RunCheck(JobArgs() + " --inject validator-split");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("esc.validator-split"), std::string::npos)
      << result.output;
}

TEST(EspressoCheckCli, SkipFlagsAreAccepted) {
  const RunResult result =
      RunCheck(JobArgs() + " --skip-space --skip-cost --skip-differential");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(EspressoCheckCli, JsonReportIsByteStableAcrossRuns) {
  const std::string path_a = ::testing::TempDir() + "/espresso_check_a.json";
  const std::string path_b = ::testing::TempDir() + "/espresso_check_b.json";
  ASSERT_EQ(RunCheck(JobArgs() + " --json " + path_a).exit_code, 0);
  ASSERT_EQ(RunCheck(JobArgs() + " --json " + path_b).exit_code, 0);
  const std::string a = ReadFile(path_a);
  const std::string b = ReadFile(path_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "espresso_check --json must be deterministic";
  EXPECT_NE(a.find("\"stats\""), std::string::npos) << a;
  EXPECT_NE(a.find("\"report\""), std::string::npos) << a;
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(EspressoCheckCli, JsonIsWrittenOnFailureToo) {
  const std::string path = ::testing::TempDir() + "/espresso_check_inject.json";
  const RunResult result =
      RunCheck(JobArgs() + " --inject missing-option --json " + path);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("esc.space-incomplete"), std::string::npos) << json;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace espresso

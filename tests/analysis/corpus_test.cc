// Deterministic regression runner over the committed strategy-IR mutation corpus
// (tests/analysis/corpus/, emitted by `espresso_check --emit-corpus`). Every document's
// verdict is pinned in MANIFEST.tsv, so parser robustness and the two admission paths'
// agreement no longer depend on in-test generation alone: a parser or validator change
// that silently flips a verdict fails here with the file name.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/ir_validator.h"
#include "src/analysis/strategy_linter.h"
#include "src/core/strategy_ir.h"
#include "src/ddl/job_config.h"

namespace espresso {
namespace {

#ifndef ESPRESSO_CORPUS_DIR
#error "ESPRESSO_CORPUS_DIR must point at tests/analysis/corpus"
#endif
#ifndef ESPRESSO_CONFIG_DIR
#error "ESPRESSO_CONFIG_DIR must point at the repository's configs/ directory"
#endif

struct ManifestRow {
  std::string file;
  std::string expect;  // accept | reject | parse-error
};

std::vector<ManifestRow> LoadManifest() {
  std::ifstream in(std::string(ESPRESSO_CORPUS_DIR) + "/MANIFEST.tsv");
  EXPECT_TRUE(in.good()) << "missing corpus MANIFEST.tsv — regenerate with "
                            "espresso_check --emit-corpus";
  std::vector<ManifestRow> rows;
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "file\texpect");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    EXPECT_NE(tab, std::string::npos) << line;
    rows.push_back({line.substr(0, tab), line.substr(tab + 1)});
  }
  return rows;
}

std::string ReadCorpusFile(const std::string& name) {
  std::ifstream in(std::string(ESPRESSO_CORPUS_DIR) + "/" + name);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The job the corpus was emitted against (see MANIFEST.tsv provenance): GPT-2 on the
// NVLink testbed with Random-k 1% — the compressed-aggregation path, so skip-stage
// pipelines appear in the mixed strategies.
JobConfig CorpusJob() {
  const std::string dir(ESPRESSO_CONFIG_DIR);
  const JobConfigResult loaded =
      LoadJobConfigFromFiles(dir + "/model_gpt2.ini", dir + "/gc_randomk.ini",
                             dir + "/system_nvlink.ini");
  EXPECT_TRUE(loaded.ok) << loaded.error;
  return loaded.job;
}

TEST(StrategyCorpus, CoversAllThreeVerdictClasses) {
  const std::vector<ManifestRow> rows = LoadManifest();
  ASSERT_FALSE(rows.empty());
  size_t accepts = 0, rejects = 0, parse_errors = 0;
  for (const ManifestRow& row : rows) {
    if (row.expect == "accept") ++accepts;
    else if (row.expect == "reject") ++rejects;
    else if (row.expect == "parse-error") ++parse_errors;
    else ADD_FAILURE() << row.file << ": unknown verdict '" << row.expect << "'";
  }
  EXPECT_GT(accepts, 0u);
  EXPECT_GT(rejects, 0u);
  EXPECT_GT(parse_errors, 0u);
}

TEST(StrategyCorpus, EveryDocumentReproducesItsPinnedVerdict) {
  const JobConfig job = CorpusJob();
  const auto compressor = job.MakeCompressor();
  ASSERT_NE(compressor, nullptr);
  const TreeConfig tree{job.cluster.machines, job.cluster.gpus_per_machine,
                        compressor->SupportsCompressedAggregation(),
                        job.max_compress_ops};
  LintOptions lint_options;
  lint_options.expected_tensors = job.model.tensors.size();
  IRValidationOptions validate;
  validate.max_compress_ops = job.max_compress_ops;

  for (const ManifestRow& row : LoadManifest()) {
    const std::string text = ReadCorpusFile(row.file);
    ASSERT_FALSE(text.empty()) << row.file;
    const StrategyIRParseResult parsed = ParseStrategyIR(text);
    if (row.expect == "parse-error") {
      EXPECT_FALSE(parsed.ok) << row.file << " now parses; the strict grammar or "
                              << "payload digest stopped catching this corruption";
      continue;
    }
    ASSERT_TRUE(parsed.ok) << row.file << ": " << parsed.error;
    const bool admitted = ValidateStrategyIR(parsed.ir, job.model, job.cluster,
                                             *compressor, job.compressor, validate)
                              .ok;
    EXPECT_EQ(admitted, row.expect == "accept")
        << row.file << " flipped its admission verdict";
    // The differential contract, pinned: linter and validator agree on every document.
    const bool lint_accepts =
        !LintStrategy(tree, parsed.ir.strategy, lint_options).HasErrors();
    EXPECT_EQ(lint_accepts, admitted) << row.file << " splits the two validators";
  }
}

}  // namespace
}  // namespace espresso

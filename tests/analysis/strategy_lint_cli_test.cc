// Subprocess tests for the strategy_lint executable: the mutation-mode contract (each
// --inject mode trips its pass with the expected rule id and a non-zero exit) and the
// clean-run contract over the committed example configs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace espresso {
namespace {

#ifndef STRATEGY_LINT_PATH
#error "STRATEGY_LINT_PATH must point at the strategy_lint executable"
#endif
#ifndef ESPRESSO_CONFIG_DIR
#error "ESPRESSO_CONFIG_DIR must point at the repository's configs/ directory"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

std::string ConfigPath(const std::string& name) {
  return std::string(ESPRESSO_CONFIG_DIR) + "/" + name;
}

std::string JobArgs() {
  return ConfigPath("model_gpt2.ini") + " " + ConfigPath("gc_dgc.ini") + " " +
         ConfigPath("system_nvlink.ini");
}

RunResult RunLint(const std::string& args) {
  // Unique per test AND per call: ctest runs the cases of this binary in parallel,
  // so a shared capture file would race.
  static int call_count = 0;
  const std::string out_path =
      ::testing::TempDir() + "/strategy_lint_out_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
      std::to_string(call_count++) + ".txt";
  const std::string command =
      std::string(STRATEGY_LINT_PATH) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(command.c_str());
  RunResult result;
#ifdef WIFEXITED
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  result.exit_code = status;
#endif
  std::ifstream in(out_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  std::remove(out_path.c_str());
  return result;
}

TEST(StrategyLintCli, CleanRunOverCommittedConfigs) {
  const RunResult result = RunLint(JobArgs());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("no diagnostics"), std::string::npos) << result.output;
}

TEST(StrategyLintCli, CleanRunOnPcieTestbed) {
  const RunResult result = RunLint(ConfigPath("model_gpt2.ini") + " " +
                                   ConfigPath("gc_efsignsgd_limited.ini") + " " +
                                   ConfigPath("system_pcie.ini"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(StrategyLintCli, InjectIllegalOptionFailsWithLinterRule) {
  const RunResult result = RunLint(JobArgs() + " --inject illegal-option");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("strategy.double-compress"), std::string::npos)
      << result.output;
}

TEST(StrategyLintCli, InjectOverlapFailsWithVerifierRule) {
  const RunResult result = RunLint(JobArgs() + " --inject overlap");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("schedule.serial-overlap"), std::string::npos)
      << result.output;
}

TEST(StrategyLintCli, InjectDominatedFailsWithDominanceRule) {
  const RunResult result = RunLint(JobArgs() + " --inject dominated");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("dominance.worse-than-baseline"), std::string::npos)
      << result.output;
}

TEST(StrategyLintCli, WritesJsonReport) {
  const std::string json_path = ::testing::TempDir() + "/strategy_lint_report.json";
  const RunResult result =
      RunLint(JobArgs() + " --inject illegal-option --json " + json_path);
  EXPECT_EQ(result.exit_code, 1);
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"errors\""), std::string::npos) << json;
  EXPECT_NE(json.find("strategy.double-compress"), std::string::npos) << json;
  std::remove(json_path.c_str());
}

TEST(StrategyLintCli, UsageErrorsExitTwo) {
  EXPECT_EQ(RunLint("").exit_code, 2);
  EXPECT_EQ(RunLint(JobArgs() + " --inject bogus").exit_code, 2);
  EXPECT_EQ(RunLint(ConfigPath("does_not_exist.ini") + " " + ConfigPath("gc_dgc.ini") +
                    " " + ConfigPath("system_nvlink.ini"))
                .exit_code,
            2);
}

TEST(StrategyLintCli, InjectStaleDigestFailsWithIrRule) {
  const RunResult result = RunLint(JobArgs() + " --inject stale-digest");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("ir.digest-mismatch"), std::string::npos)
      << result.output;
}

TEST(StrategyLintCli, StaleDigestIsForcibleButStillWarns) {
  const RunResult result =
      RunLint(JobArgs() + " --inject stale-digest --force-digest");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("ir.digest-mismatch"), std::string::npos)
      << result.output;
}

TEST(StrategyLintCli, ValidatesIrAgainstMismatchedSystemConfig) {
  // An IR honestly compiled for the nvlink testbed must be refused on the pcie one:
  // the cluster digest no longer matches. espresso_cli produces the IR; asserting
  // through strategy_lint --ir exercises the full cross-tool hand-off.
  const std::string ir_path = ::testing::TempDir() + "/cross_config.json";
#ifdef ESPRESSO_CLI_PATH
  const std::string emit = std::string(ESPRESSO_CLI_PATH) + " " + JobArgs() +
                           " --ir-out=" + ir_path + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(emit.c_str()), 0);
  const RunResult same = RunLint(JobArgs() + " --ir " + ir_path);
  EXPECT_EQ(same.exit_code, 0) << same.output;
  const RunResult crossed =
      RunLint(ConfigPath("model_gpt2.ini") + " " + ConfigPath("gc_dgc.ini") + " " +
              ConfigPath("system_pcie.ini") + " --ir " + ir_path);
  EXPECT_EQ(crossed.exit_code, 1) << crossed.output;
  EXPECT_NE(crossed.output.find("ir.digest-mismatch"), std::string::npos)
      << crossed.output;
  std::remove(ir_path.c_str());
#else
  GTEST_SKIP() << "espresso_cli not available to emit the IR";
#endif
}

TEST(StrategyLintCli, IrFlagRejectsMissingAndMalformedFiles) {
  EXPECT_EQ(RunLint(JobArgs() + " --ir /nonexistent/ir.json").exit_code, 2);
  const std::string bad_path = ::testing::TempDir() + "/not_an_ir.json";
  std::ofstream(bad_path) << "{\"espresso_strategy_ir\": 1}\n";
  const RunResult result = RunLint(JobArgs() + " --ir " + bad_path);
  EXPECT_EQ(result.exit_code, 2) << result.output;
  std::remove(bad_path.c_str());
}

}  // namespace
}  // namespace espresso

// Fail-closed admission of strategy IR documents: digests compared against the
// loader's own configuration, the full linter pass, and schedule re-verification —
// with --force-digest downgrading only the digest gate and never the legality gates.
#include "src/analysis/ir_validator.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

struct ValidatorFixture {
  ModelProfile model = Lstm();
  ClusterSpec cluster = NvlinkCluster(2, 2);
  CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  std::unique_ptr<Compressor> compressor = CreateCompressor(gc);

  StrategyIR Compile() const {
    EspressoSelector selector(model, cluster, *compressor);
    const SelectionResult result = selector.Select();
    StrategyProvenance provenance;
    provenance.origin = "test";
    provenance.selector = "espresso";
    return CompileStrategyIR(result.strategy, result.iteration_time, model, cluster, gc,
                             provenance);
  }

  IRValidationResult Validate(const StrategyIR& ir,
                              const IRValidationOptions& options = {}) const {
    return ValidateStrategyIR(ir, model, cluster, *compressor, gc, options);
  }
};

TEST(IrValidator, AdmitsAFreshlyCompiledIr) {
  const ValidatorFixture fixture;
  const StrategyIR ir = fixture.Compile();
  const IRValidationResult result = fixture.Validate(ir);
  EXPECT_TRUE(result.ok) << result.report.ToString();
  EXPECT_FALSE(result.digest_mismatch);
  EXPECT_FALSE(result.report.HasErrors());
  EXPECT_NEAR(result.evaluated_fs, ir.fs_score, 1e-12);
}

TEST(IrValidator, RefusesUnknownSchemaVersion) {
  const ValidatorFixture fixture;
  StrategyIR ir = fixture.Compile();
  ir.schema_version = kStrategyIrSchemaVersion + 1;
  const IRValidationResult result = fixture.Validate(ir);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.report.HasRule(rules::kIrSchemaVersion))
      << result.report.ToString();
}

TEST(IrValidator, RefusesEveryStaleConfigDigest) {
  const ValidatorFixture fixture;
  for (int which = 0; which < 3; ++which) {
    StrategyIR ir = fixture.Compile();
    (which == 0   ? ir.model_digest
     : which == 1 ? ir.cluster_digest
                  : ir.compression_digest) ^= 1;
    const IRValidationResult result = fixture.Validate(ir);
    EXPECT_FALSE(result.ok) << "digest " << which;
    EXPECT_TRUE(result.digest_mismatch);
    EXPECT_TRUE(result.report.HasRule(rules::kIrDigestMismatch))
        << result.report.ToString();
    // Fail-closed also means: don't burn simulation time on a refused document.
    EXPECT_EQ(result.evaluated_fs, 0.0);
  }
}

TEST(IrValidator, ForceDigestDowngradesToWarningButStillAudits) {
  const ValidatorFixture fixture;
  StrategyIR ir = fixture.Compile();
  ir.cluster_digest ^= 1;
  IRValidationOptions options;
  options.force_digest = true;
  const IRValidationResult result = fixture.Validate(ir, options);
  EXPECT_TRUE(result.ok) << result.report.ToString();
  EXPECT_TRUE(result.digest_mismatch);  // callers audit forced deploys
  EXPECT_TRUE(result.report.HasRule(rules::kIrDigestMismatch));
  EXPECT_FALSE(result.report.HasErrors());
  EXPECT_GT(result.report.WarningCount(), 0u);
}

TEST(IrValidator, RefusesIllegalStrategiesEvenWhenForced) {
  const ValidatorFixture fixture;
  StrategyIR ir = fixture.Compile();
  // Plant a double-compress: digests are stale now AND the strategy is illegal.
  Op compress;
  compress.task = ActionTask::kCompress;
  compress.phase = ir.strategy.options[0].flat ? CommPhase::kFlat : CommPhase::kIntraFirst;
  compress.domain_fraction = 1.0;
  compress.payload_fraction = 0.1;
  ir.strategy.options[0].ops.insert(ir.strategy.options[0].ops.begin(), 2, compress);
  IRValidationOptions options;
  options.force_digest = true;  // the escape hatch must not bypass legality
  const IRValidationResult result = fixture.Validate(ir, options);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.report.HasErrors());
}

TEST(IrValidator, RefusesWrongTensorCount) {
  const ValidatorFixture fixture;
  StrategyIR ir = fixture.Compile();
  ir.strategy.options.pop_back();
  const IRValidationResult result = fixture.Validate(ir);
  EXPECT_FALSE(result.ok) << result.report.ToString();
}

TEST(IrValidator, WarnsOnScoreDrift) {
  const ValidatorFixture fixture;
  StrategyIR ir = fixture.Compile();
  ir.fs_score *= 1.25;  // claims a score the local cost model cannot reproduce
  const IRValidationResult result = fixture.Validate(ir);
  EXPECT_TRUE(result.ok) << result.report.ToString();  // drift warns, never blocks
  EXPECT_TRUE(result.report.HasRule(rules::kIrScoreDrift)) << result.report.ToString();
}

TEST(IrValidator, SkippingScheduleVerificationStillChecksDigestsAndLint) {
  const ValidatorFixture fixture;
  StrategyIR ir = fixture.Compile();
  ir.model_digest ^= 1;
  IRValidationOptions options;
  options.verify_schedule = false;
  const IRValidationResult result = fixture.Validate(ir, options);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.report.HasRule(rules::kIrDigestMismatch));
  EXPECT_EQ(result.evaluated_fs, 0.0);
}

}  // namespace
}  // namespace espresso

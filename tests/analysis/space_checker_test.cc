#include "src/analysis/space_checker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "src/models/model_zoo.h"

namespace espresso {
namespace {

// A small but hierarchical configuration: full pass runtime stays in milliseconds
// while still exercising every phase of the option space.
struct SmallJob {
  ModelProfile model = Lstm();
  ClusterSpec cluster = NvlinkCluster(/*machines=*/2, /*gpus_per_machine=*/2);
  CompressorConfig config;
  std::unique_ptr<Compressor> compressor;

  SmallJob() {
    config.algorithm = "randomk";
    config.ratio = 0.01;
    compressor = CreateCompressor(config);
  }

  SpaceCheckResult Run(const SpaceCheckOptions& options = {}) const {
    return CheckStrategySpace(model, cluster, *compressor, config,
                              /*max_compress_ops=*/0, options);
  }
};

TEST(SpaceChecker, CleanConfigurationPassesAllThreePasses) {
  const SmallJob job;
  const SpaceCheckResult result = job.Run();
  EXPECT_TRUE(result.ok()) << result.report.ToString();
  EXPECT_GT(result.stats.options, 0u);
  EXPECT_GE(result.stats.device_choices, result.stats.options);
  EXPECT_GT(result.stats.mutants_total, 0u);
  EXPECT_EQ(result.stats.mutants_total,
            result.stats.mutants_rejected + result.stats.mutants_reenumerated);
  EXPECT_GT(result.stats.fingerprints_audited, result.stats.options);
  EXPECT_EQ(result.stats.fingerprint_collisions, 0u);
  EXPECT_GT(result.stats.interval_checks, 0u);
  EXPECT_GT(result.stats.monotonicity_checks, 0u);
  EXPECT_GT(result.stats.differential_valid, 0u);
  EXPECT_GT(result.stats.differential_corrupted, 0u);
  EXPECT_GT(result.stats.differential_tampered, 0u);
}

TEST(SpaceChecker, SkipFlagsDisableTheirPasses) {
  const SmallJob job;
  SpaceCheckOptions options;
  options.check_space = false;
  options.check_cost = false;
  options.check_differential = false;
  const SpaceCheckResult result = job.Run(options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.stats.mutants_total, 0u);
  EXPECT_EQ(result.stats.interval_checks, 0u);
  EXPECT_EQ(result.stats.differential_valid, 0u);
}

TEST(SpaceChecker, InjectMissingOptionTripsCompleteness) {
  const SmallJob job;
  SpaceCheckOptions options;
  options.inject = SpaceCheckInject::kMissingOption;
  const SpaceCheckResult result = job.Run(options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.report.HasRule(rules::kEscSpaceIncomplete))
      << result.report.ToString();
}

TEST(SpaceChecker, InjectCostNegativeTripsIntervalAudit) {
  const SmallJob job;
  SpaceCheckOptions options;
  options.inject = SpaceCheckInject::kCostNegative;
  const SpaceCheckResult result = job.Run(options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.report.HasRule(rules::kEscIntervalProperty))
      << result.report.ToString();
}

TEST(SpaceChecker, InjectValidatorSplitTripsDifferentialPass) {
  const SmallJob job;
  SpaceCheckOptions options;
  options.inject = SpaceCheckInject::kValidatorSplit;
  const SpaceCheckResult result = job.Run(options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.report.HasRule(rules::kEscValidatorSplit))
      << result.report.ToString();
}

TEST(SpaceChecker, InjectionsAreConfinedToTheirPass) {
  // Each planted violation must trip exactly its own rule — cross-pass fallout would
  // make the CI negative gates ambiguous.
  const SmallJob job;
  for (const SpaceCheckInject inject :
       {SpaceCheckInject::kMissingOption, SpaceCheckInject::kCostNegative,
        SpaceCheckInject::kValidatorSplit}) {
    SpaceCheckOptions options;
    options.inject = inject;
    const SpaceCheckResult result = job.Run(options);
    const size_t tripped = (result.report.HasRule(rules::kEscSpaceIncomplete) ? 1 : 0) +
                           (result.report.HasRule(rules::kEscIntervalProperty) ? 1 : 0) +
                           (result.report.HasRule(rules::kEscValidatorSplit) ? 1 : 0);
    EXPECT_EQ(tripped, 1u) << result.report.ToString();
    EXPECT_FALSE(result.report.HasRule(rules::kEscSpaceUnsound));
    EXPECT_FALSE(result.report.HasRule(rules::kEscFingerprintCollision));
  }
}

TEST(SpaceChecker, EmitCorpusWritesManifestAndFiles) {
  const SmallJob job;
  const std::string dir = ::testing::TempDir() + "/space_checker_corpus";
  std::filesystem::remove_all(dir);
  SpaceCheckOptions options;
  options.emit_corpus_dir = dir;
  const SpaceCheckResult result = job.Run(options);
  EXPECT_TRUE(result.ok()) << result.report.ToString();
  ASSERT_GT(result.stats.corpus_files_written, 0u);

  std::ifstream manifest(dir + "/MANIFEST.tsv");
  ASSERT_TRUE(manifest.good());
  std::string header;
  std::getline(manifest, header);
  EXPECT_EQ(header, "file\texpect");
  size_t rows = 0;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    ASSERT_NE(tab, std::string::npos) << line;
    const std::string file = line.substr(0, tab);
    const std::string expect = line.substr(tab + 1);
    EXPECT_TRUE(expect == "accept" || expect == "reject" || expect == "parse-error")
        << line;
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + file)) << file;
    ++rows;
  }
  // corpus_files_written counts the manifest itself alongside the .esp documents.
  EXPECT_EQ(rows + 1, result.stats.corpus_files_written);
  std::filesystem::remove_all(dir);
}

TEST(SpaceChecker, DeterministicAcrossRuns) {
  // The seeded corpus and the enumeration order are deterministic, so two runs must
  // produce identical statistics (the CLI's --json byte-stability rests on this).
  const SmallJob job;
  const SpaceCheckResult a = job.Run();
  const SpaceCheckResult b = job.Run();
  EXPECT_EQ(a.stats.options, b.stats.options);
  EXPECT_EQ(a.stats.device_choices, b.stats.device_choices);
  EXPECT_EQ(a.stats.mutants_total, b.stats.mutants_total);
  EXPECT_EQ(a.stats.mutants_rejected, b.stats.mutants_rejected);
  EXPECT_EQ(a.stats.fingerprints_audited, b.stats.fingerprints_audited);
  EXPECT_EQ(a.stats.interval_checks, b.stats.interval_checks);
  EXPECT_EQ(a.stats.differential_valid, b.stats.differential_valid);
  EXPECT_EQ(a.stats.differential_corrupted, b.stats.differential_corrupted);
}

}  // namespace
}  // namespace espresso

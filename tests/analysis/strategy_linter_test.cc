#include "src/analysis/strategy_linter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

bool HasErrorRule(const DiagnosticReport& report, const char* rule) {
  return std::any_of(report.diagnostics().begin(), report.diagnostics().end(),
                     [&](const Diagnostic& d) {
                       return d.severity == Severity::kError && d.rule == rule;
                     });
}

// The linter must accept exactly what the decision tree emits: every enumerated path
// of every topology/capability combination lints clean.
TEST(StrategyLinter, AcceptsEveryEnumeratedOption) {
  const std::vector<TreeConfig> configs = {
      {8, 8, false}, {8, 8, true}, {4, 4, false}, {4, 4, true},
      {1, 8, false}, {1, 8, true}, {8, 1, false}, {2, 2, true},
  };
  for (const TreeConfig& config : configs) {
    const OptionSpace space = EnumerateOptions(config);
    ASSERT_FALSE(space.options.empty());
    for (const CompressionOption& option : space.options) {
      const DiagnosticReport report = LintOption(config, option, 0);
      EXPECT_FALSE(report.HasErrors())
          << option.Describe() << "\n"
          << report.ToString() << "(machines=" << config.machines
          << ", gpus=" << config.gpus_per_machine << ", agg="
          << config.supports_compressed_aggregation << ")";
    }
  }
}

TEST(StrategyLinter, AcceptsCandidatesAndDefaultOption) {
  for (const bool agg : {false, true}) {
    const TreeConfig config{8, 8, agg};
    for (const CompressionOption& option : CandidateOptions(config)) {
      EXPECT_FALSE(LintOption(config, option, 0).HasErrors()) << option.Describe();
    }
    EXPECT_FALSE(LintOption(config, DefaultUncompressedOption(config), 0).HasErrors());
  }
}

// One-edit mutations of legal options must be rejected. Each mutation below breaks an
// invariant no legal pipeline can satisfy, so "some error" is the exact expectation.
TEST(StrategyLinter, RejectsOneEditMutations) {
  const TreeConfig config{8, 8, true};
  const OptionSpace space = EnumerateOptions(config);
  size_t mutants = 0;
  for (const CompressionOption& option : space.options) {
    ASSERT_FALSE(LintOption(config, option, 0).HasErrors());

    // Mutation 1: duplicate the first compress op (re-compressing a compressed payload).
    for (size_t k = 0; k < option.ops.size(); ++k) {
      if (option.ops[k].task == ActionTask::kCompress) {
        CompressionOption mutant = option;
        mutant.ops.insert(mutant.ops.begin() + static_cast<long>(k), option.ops[k]);
        const DiagnosticReport report = LintOption(config, mutant, 0);
        EXPECT_TRUE(HasErrorRule(report, rules::kDoubleCompress)) << mutant.Describe();
        ++mutants;
        break;
      }
    }

    // Mutation 2: drop the last decompress (payload can never return to raw).
    for (size_t k = option.ops.size(); k-- > 0;) {
      if (option.ops[k].task == ActionTask::kDecompress) {
        CompressionOption mutant = option;
        mutant.ops.erase(mutant.ops.begin() + static_cast<long>(k));
        EXPECT_TRUE(LintOption(config, mutant, 0).HasErrors()) << mutant.Describe();
        ++mutants;
        break;
      }
    }

    // Mutation 3: flip the wire flag of the first comm op (state mismatch).
    for (size_t k = 0; k < option.ops.size(); ++k) {
      if (option.ops[k].task == ActionTask::kComm) {
        CompressionOption mutant = option;
        mutant.ops[k].compressed = !mutant.ops[k].compressed;
        const DiagnosticReport report = LintOption(config, mutant, 0);
        EXPECT_TRUE(HasErrorRule(report, rules::kCommStateMismatch)) << mutant.Describe();
        ++mutants;
        break;
      }
    }

    // Mutation 4: zero the fan_in of the first decompress.
    for (size_t k = 0; k < option.ops.size(); ++k) {
      if (option.ops[k].task == ActionTask::kDecompress) {
        CompressionOption mutant = option;
        mutant.ops[k].fan_in = 0;
        const DiagnosticReport report = LintOption(config, mutant, 0);
        EXPECT_TRUE(HasErrorRule(report, rules::kOpFractionRange)) << mutant.Describe();
        ++mutants;
        break;
      }
    }

    // Mutation 5: move the first op into the wrong phase family.
    {
      CompressionOption mutant = option;
      mutant.ops[0].phase = option.flat ? CommPhase::kInter : CommPhase::kFlat;
      const DiagnosticReport report = LintOption(config, mutant, 0);
      EXPECT_TRUE(HasErrorRule(report, rules::kFlatPhaseMix)) << mutant.Describe();
      ++mutants;
    }
  }
  EXPECT_GT(mutants, space.options.size());  // several mutants per option on average
}

TEST(StrategyLinter, MaxCompressOpsBoundaries) {
  // Find enumerated options at 1 and 2 compress ops and check both sides of the limit.
  const TreeConfig unlimited{8, 8, false, 0};
  const OptionSpace space = EnumerateOptions(unlimited);
  const CompressionOption* one = nullptr;
  const CompressionOption* two = nullptr;
  for (const CompressionOption& option : space.options) {
    if (option.CompressOpCount() == 1 && one == nullptr) one = &option;
    if (option.CompressOpCount() == 2 && two == nullptr) two = &option;
  }
  ASSERT_NE(one, nullptr);
  ASSERT_NE(two, nullptr);

  const TreeConfig limit1{8, 8, false, 1};
  EXPECT_FALSE(LintOption(limit1, *one, 0).HasErrors()) << one->Describe();
  EXPECT_TRUE(HasErrorRule(LintOption(limit1, *two, 0), rules::kMaxCompressOps))
      << two->Describe();

  // At the boundary (limit == count) the option is legal; unlimited (0) never fires.
  const TreeConfig limit2{8, 8, false, 2};
  EXPECT_FALSE(HasErrorRule(LintOption(limit2, *two, 0), rules::kMaxCompressOps));
  EXPECT_FALSE(HasErrorRule(LintOption(unlimited, *two, 0), rules::kMaxCompressOps));

  // The enumerator itself respects the constraint, and the linter agrees with it.
  for (const CompressionOption& option : EnumerateOptions(limit1).options) {
    EXPECT_LE(option.CompressOpCount(), 1u);
    EXPECT_FALSE(LintOption(limit1, option, 0).HasErrors()) << option.Describe();
  }
}

// The skip-stage paths (§4.2.2): options that only exist because the GC algorithm can
// aggregate in the compressed domain must be rejected when it cannot.
TEST(StrategyLinter, CompressedAggregationGatesSkipStagePaths) {
  const TreeConfig with_agg{8, 8, true};
  const TreeConfig without_agg{8, 8, false};
  const OptionSpace with = EnumerateOptions(with_agg);
  const OptionSpace without = EnumerateOptions(without_agg);
  ASSERT_GT(with.options.size(), without.options.size());

  size_t skip_stage_paths = 0;
  for (const CompressionOption& option : with.options) {
    const bool in_base = std::any_of(without.options.begin(), without.options.end(),
                                     [&](const CompressionOption& o) { return o == option; });
    if (in_base) {
      // Shared path: legal under both capability settings.
      EXPECT_FALSE(LintOption(without_agg, option, 0).HasErrors()) << option.Describe();
      continue;
    }
    ++skip_stage_paths;
    EXPECT_FALSE(LintOption(with_agg, option, 0).HasErrors()) << option.Describe();
    EXPECT_TRUE(HasErrorRule(LintOption(without_agg, option, 0),
                             rules::kCompressedAggUnsupported))
        << option.Describe();
  }
  EXPECT_GT(skip_stage_paths, 0u);
}

TEST(StrategyLinter, SingleMachineTopologies) {
  // One machine: only the flat level exists; hierarchical options are structural errors.
  const TreeConfig single{1, 8, false};
  for (const CompressionOption& option : EnumerateOptions(single).options) {
    EXPECT_TRUE(option.flat);
    EXPECT_FALSE(LintOption(single, option, 0).HasErrors()) << option.Describe();
  }
  const TreeConfig hier{8, 8, false};
  const OptionSpace hier_space = EnumerateOptions(hier);
  const auto hier_option =
      std::find_if(hier_space.options.begin(), hier_space.options.end(),
                   [](const CompressionOption& o) { return !o.flat; });
  ASSERT_NE(hier_option, hier_space.options.end());
  EXPECT_TRUE(HasErrorRule(LintOption(single, *hier_option, 0),
                           rules::kHierarchicalOnFlatCluster))
      << hier_option->Describe();

  // One GPU per machine behaves the same way on the other axis.
  const TreeConfig tall{8, 1, false};
  for (const CompressionOption& option : EnumerateOptions(tall).options) {
    EXPECT_FALSE(LintOption(tall, option, 0).HasErrors()) << option.Describe();
  }
}

TEST(StrategyLinter, StrategyLevelSizeMismatch) {
  const ModelProfile model = Gpt2();
  const ClusterSpec cluster = NvlinkCluster();
  const TreeConfig config{cluster.machines, cluster.gpus_per_machine, false};
  Strategy strategy = Fp32Strategy(model, cluster);
  LintOptions options;
  options.expected_tensors = model.tensors.size();
  EXPECT_FALSE(LintStrategy(config, strategy, options).HasErrors());

  strategy.options.pop_back();
  EXPECT_TRUE(
      HasErrorRule(LintStrategy(config, strategy, options), rules::kSizeMismatch));
}

TEST(StrategyLinter, EmptyAndCommlessOptions) {
  const TreeConfig config{8, 8, false};
  CompressionOption empty;
  EXPECT_TRUE(HasErrorRule(LintOption(config, empty, 0), rules::kEmptyOption));

  CompressionOption no_comm;
  no_comm.flat = true;
  Op compress;
  compress.task = ActionTask::kCompress;
  Op decompress;
  decompress.task = ActionTask::kDecompress;
  no_comm.ops = {compress, decompress};
  EXPECT_TRUE(HasErrorRule(LintOption(config, no_comm, 0), rules::kNoComm));
}

// Deleting the inter step from a hierarchical pipeline leaves a machine-local option
// that never synchronizes across machines — topologically well-formed (the gap the
// space checker's completeness pass originally exposed), so it needs its own rule.
TEST(StrategyLinter, MissingInterSyncOnHierarchicalOptions) {
  const TreeConfig config{8, 8, false};
  CompressionOption option = DefaultUncompressedOption(config);
  ASSERT_EQ(option.ops.size(), 3u);
  ASSERT_EQ(option.ops[1].phase, CommPhase::kInter);
  option.ops.erase(option.ops.begin() + 1);
  EXPECT_TRUE(HasErrorRule(LintOption(config, option, 0), rules::kMissingInterSync))
      << option.Describe();

  // Flat options are exempt: a flat allreduce crosses machines by construction.
  CompressionOption flat;
  flat.flat = true;
  Op allreduce;
  allreduce.task = ActionTask::kComm;
  allreduce.phase = CommPhase::kFlat;
  allreduce.routine = Routine::kAllreduce;
  flat.ops = {allreduce};
  EXPECT_FALSE(LintOption(config, flat, 0).HasErrors());
}

TEST(StrategyLinter, UncompressedCollectRoutinesAreRejected) {
  // Collect routines move opaque payloads; raw gradients riding them end up as
  // unaggregated shards no op can reduce.
  const TreeConfig config{8, 8, false};
  CompressionOption option;
  option.flat = true;
  Op alltoall;
  alltoall.task = ActionTask::kComm;
  alltoall.phase = CommPhase::kFlat;
  alltoall.routine = Routine::kAlltoall;
  alltoall.payload_fraction = 1.0 / 64.0;
  alltoall.compressed = false;
  option.ops = {alltoall};
  EXPECT_TRUE(HasErrorRule(LintOption(config, option, 0), rules::kUncompressedCollect));
}

TEST(StrategyLinter, PayloadCoverageMismatchIsRejected) {
  // The wire payload must match what the routine fixes per rank: pricing a different
  // byte count than the pipeline moves corrupts every downstream F(S) comparison.
  const TreeConfig config{8, 8, false};
  CompressionOption option = DefaultUncompressedOption(config);
  ASSERT_EQ(option.ops[1].routine, Routine::kAllreduce);
  option.ops[1].payload_fraction = 1.0;  // the inter shard is 1/g, not the full tensor
  EXPECT_TRUE(HasErrorRule(LintOption(config, option, 0), rules::kPayloadCoverage))
      << option.Describe();
}

}  // namespace
}  // namespace espresso

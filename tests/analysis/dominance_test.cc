#include "src/analysis/dominance.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

ModelProfile SmallModel() {
  ModelProfile m;
  m.name = "toy";
  m.forward_time_s = 5e-3;
  m.optimizer_time_s = 1e-3;
  m.batch_size = 1;
  m.throughput_unit = "it/s";
  m.tensors = {
      {"T0", 4 << 20, 10e-3},
      {"T1", 4 << 20, 10e-3},
      {"T2", 4 << 20, 10e-3},
  };
  return m;
}

std::unique_ptr<Compressor> Dgc() {
  return CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
}

TEST(Dominance, SelectedStrategyPasses) {
  const ModelProfile model = SmallModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  EspressoSelector selector(model, cluster, *compressor);
  const DominanceResult result =
      CheckDominance(model, cluster, *compressor, selector.Select().strategy);
  EXPECT_FALSE(result.report.HasErrors()) << result.report.ToString();
  EXPECT_EQ(result.baselines.size(), 4u);
  EXPECT_GT(result.checked_iteration_time, 0.0);
  // The Upper Bound is a lower bound on F(S).
  EXPECT_GE(result.checked_iteration_time,
            result.upper_bound_iteration_time * (1.0 - 0.005));
}

TEST(Dominance, BaselinesThemselvesAreNotDominatedByThemselves) {
  // fp32 compared against the baseline set that includes fp32: at worst a tie-note.
  const ModelProfile model = SmallModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  const DominanceResult result =
      CheckDominance(model, cluster, *compressor, Fp32Strategy(model, cluster));
  EXPECT_FALSE(result.report.HasRule(rules::kBeatsUpperBound)) << result.report.ToString();
}

TEST(Dominance, FiresOnDominatedStrategy) {
  // FP32 communication plus a pointless full-size compress/decompress round trip: pure
  // GPU cost, zero wire savings — strictly worse than the FP32 baseline.
  const ModelProfile model = SmallModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  Strategy wasteful = Fp32Strategy(model, cluster);
  for (CompressionOption& option : wasteful.options) {
    const CommPhase phase = option.flat ? CommPhase::kFlat : CommPhase::kIntraFirst;
    Op compress;
    compress.task = ActionTask::kCompress;
    compress.phase = phase;
    Op decompress;
    decompress.task = ActionTask::kDecompress;
    decompress.phase = phase;
    option.ops.insert(option.ops.begin(), {compress, decompress});
  }
  const DominanceResult result =
      CheckDominance(model, cluster, *compressor, wasteful);
  EXPECT_TRUE(result.report.HasRule(rules::kWorseThanBaseline))
      << result.report.ToString();
  EXPECT_TRUE(result.report.HasErrors());
}

TEST(Dominance, CostModelSanityPassesOnCalibratedClusters) {
  const ModelProfile model = SmallModel();
  const auto compressor = Dgc();
  for (const ClusterSpec& cluster : {NvlinkCluster(), PcieCluster()}) {
    const DiagnosticReport report = CheckCostModelSanity(model, cluster, *compressor);
    EXPECT_FALSE(report.HasErrors()) << report.ToString();
  }
}

TEST(Dominance, CostModelSanityFiresOnBrokenCalibration) {
  const ModelProfile model = SmallModel();
  const auto compressor = Dgc();

  ClusterSpec bad_beta = NvlinkCluster();
  bad_beta.inter.bytes_per_second = 0.0;
  EXPECT_TRUE(CheckCostModelSanity(model, bad_beta, *compressor)
                  .HasRule(rules::kBetaRange));

  ClusterSpec bad_alpha = NvlinkCluster();
  bad_alpha.intra.latency_s = -1e-6;
  EXPECT_TRUE(CheckCostModelSanity(model, bad_alpha, *compressor)
                  .HasRule(rules::kAlphaRange));

  ClusterSpec bad_device = NvlinkCluster();
  bad_device.gpu_compression.compress_bytes_per_s = -1.0;
  EXPECT_TRUE(CheckCostModelSanity(model, bad_device, *compressor)
                  .HasRule(rules::kNegativeDurationModel));
}

}  // namespace
}  // namespace espresso

#include "src/costmodel/compression_cost.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

CompressionCostModel TestModel() {
  const DeviceCostSpec gpu{50e-6, 20e9, 40e9};
  const DeviceCostSpec cpu{5e-6, 2e9, 4e9};
  return CompressionCostModel(gpu, cpu, 1.0, 1.0);
}

TEST(CompressionCost, AffineInSize) {
  const auto model = TestModel();
  const double t1 = model.CompressTime(Device::kGpu, 1e6);
  const double t2 = model.CompressTime(Device::kGpu, 2e6);
  EXPECT_NEAR(t2 - t1, 1e6 / 20e9, 1e-12);
}

TEST(CompressionCost, LaunchOverheadDominatesSmallTensors) {
  const auto model = TestModel();
  EXPECT_NEAR(model.CompressTime(Device::kGpu, 4.0), 50e-6, 1e-6);
  // Small tensors: GPU is SLOWER than CPU despite higher throughput — the Figure 10
  // effect that drives Property 2's size prioritization.
  EXPECT_GT(model.CompressTime(Device::kGpu, 4.0), model.CompressTime(Device::kCpu, 4.0));
}

TEST(CompressionCost, GpuFasterForLargeTensors) {
  const auto model = TestModel();
  EXPECT_LT(model.CompressTime(Device::kGpu, 1e8), model.CompressTime(Device::kCpu, 1e8));
}

TEST(CompressionCost, InvocationsMultiplyLaunches) {
  const auto model = TestModel();
  const double one = model.CompressTime(Device::kGpu, 1e6, 1);
  const double four = model.CompressTime(Device::kGpu, 1e6, 4);
  EXPECT_NEAR(four - one, 3 * 50e-6, 1e-12);
}

TEST(CompressionCost, AggregateDecompressSingleLaunch) {
  const auto model = TestModel();
  // Fused aggregation: fan_in affects the data term only, with one launch.
  const double t = model.AggregateDecompressTime(Device::kGpu, 1e6, 1e4, 8);
  EXPECT_NEAR(t, 50e-6 + (1e6 + 8 * 1e4) / 40e9, 1e-12);
}

TEST(CompressionCost, AlgorithmWeightScalesThroughputTerm) {
  const DeviceCostSpec gpu{0.0, 20e9, 40e9};
  const DeviceCostSpec cpu{0.0, 2e9, 4e9};
  CompressionCostModel heavy(gpu, cpu, 2.0, 4.0);
  CompressionCostModel light(gpu, cpu, 1.0, 1.0);
  EXPECT_NEAR(heavy.CompressTime(Device::kGpu, 1e6),
              2.0 * light.CompressTime(Device::kGpu, 1e6), 1e-12);
  EXPECT_NEAR(heavy.CompressTime(Device::kCpu, 1e6),
              4.0 * light.CompressTime(Device::kCpu, 1e6), 1e-12);
}

TEST(CompressionCost, ZeroThroughputMeansFree) {
  CompressionCostModel zero(DeviceCostSpec{}, DeviceCostSpec{}, 1.0, 1.0);
  EXPECT_EQ(zero.CompressTime(Device::kGpu, 1e9), 0.0);
  EXPECT_EQ(zero.DecompressTime(Device::kCpu, 1e9), 0.0);
  EXPECT_EQ(zero.AggregateDecompressTime(Device::kGpu, 1e9, 1e7, 8), 0.0);
}

TEST(AlgorithmCostWeight, TopKMostExpensiveOnCpu) {
  for (const char* algo : {"randomk", "efsignsgd", "terngrad", "qsgd", "fp16"}) {
    EXPECT_GT(AlgorithmCostWeight("dgc", Device::kCpu),
              AlgorithmCostWeight(algo, Device::kCpu))
        << algo;
  }
}

TEST(AlgorithmCostWeight, CpuNeverCheaperThanGpuWeight) {
  for (const char* algo : {"dgc", "randomk", "efsignsgd", "terngrad", "qsgd", "fp16"}) {
    EXPECT_GE(AlgorithmCostWeight(algo, Device::kCpu),
              AlgorithmCostWeight(algo, Device::kGpu))
        << algo;
  }
}

TEST(DeviceName, Names) {
  EXPECT_STREQ(DeviceName(Device::kGpu), "GPU");
  EXPECT_STREQ(DeviceName(Device::kCpu), "CPU");
}

}  // namespace
}  // namespace espresso

#include "src/costmodel/interval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/costmodel/calibration.h"

namespace espresso {
namespace {

// Outward-conservative containment with a relative epsilon for the floating-point
// reassociation between the interval and double evaluation orders.
bool ContainsApprox(const Interval& iv, double v) {
  const double slack = 1e-9 * (std::abs(v) + 1.0);
  return iv.lo <= v + slack && v - slack <= iv.hi;
}

TEST(Interval, ArithmeticBoundsEveryPointEvaluation) {
  const Interval a(1.0, 2.0);
  const Interval b(0.5, 3.0);
  const std::vector<double> xs = {1.0, 1.25, 1.7, 2.0};
  const std::vector<double> ys = {0.5, 0.9, 2.1, 3.0};
  for (double x : xs) {
    for (double y : ys) {
      EXPECT_TRUE((a + b).Contains(x + y)) << x << "+" << y;
      EXPECT_TRUE((a - b).Contains(x - y)) << x << "-" << y;
      EXPECT_TRUE((a * b).Contains(x * y)) << x << "*" << y;
      EXPECT_TRUE((a / b).Contains(x / y)) << x << "/" << y;
    }
  }
}

TEST(Interval, MultiplicationHandlesSignCrossings) {
  const Interval a(-2.0, 3.0);
  const Interval b(-1.0, 4.0);
  const Interval p = a * b;
  EXPECT_DOUBLE_EQ(p.lo, -8.0);  // -2 * 4
  EXPECT_DOUBLE_EQ(p.hi, 12.0);  // 3 * 4
}

TEST(Interval, HullAndPredicates) {
  const Interval h = Interval::Hull(Interval(1.0, 2.0), Interval(4.0, 5.0));
  EXPECT_DOUBLE_EQ(h.lo, 1.0);
  EXPECT_DOUBLE_EQ(h.hi, 5.0);
  EXPECT_TRUE(h.Contains(3.0));
  EXPECT_TRUE(h.NonNegative());
  EXPECT_TRUE(h.StrictlyPositive());
  EXPECT_FALSE(Interval(-1.0, 1.0).NonNegative());
  EXPECT_TRUE(Interval(0.0, 1.0).NonNegative());
  EXPECT_FALSE(Interval(0.0, 1.0).StrictlyPositive());
  EXPECT_DOUBLE_EQ(Interval(2.0, 5.0).width(), 3.0);
  const Interval point(7.0);
  EXPECT_DOUBLE_EQ(point.width(), 0.0);
}

TEST(Interval, ConstructionAndDivisionGuards) {
  EXPECT_DEATH(Interval(2.0, 1.0), "");
  EXPECT_DEATH(Interval(1.0) / Interval(0.0, 1.0), "");
  EXPECT_DEATH(Interval(1.0) / Interval(-1.0, 1.0), "");
}

TEST(ParameterRanges, MirrorsTimelineLinkDerivation) {
  const ClusterSpec cluster = NvlinkCluster();
  const ParameterRanges ranges = ParameterRanges::ForCluster(cluster, 4.0, 4.0);
  // Intra link spans around the calibrated values.
  EXPECT_TRUE(ranges.intra.Contains(cluster.intra));
  EXPECT_TRUE(ranges.intra.bytes_per_second.StrictlyPositive());
  // The NIC is shared by the machine's GPUs; the inter range brackets the per-GPU
  // share, not the raw NIC rate.
  const double nic_share =
      cluster.inter.bytes_per_second / static_cast<double>(cluster.gpus_per_machine);
  EXPECT_TRUE(ranges.inter.bytes_per_second.Contains(nic_share));
  EXPECT_FALSE(ranges.inter.bytes_per_second.Contains(
      cluster.inter.bytes_per_second * 4.0 * 1.01));
  // Flat collectives ride the shared NIC on multi-machine clusters.
  EXPECT_DOUBLE_EQ(ranges.flat.bytes_per_second.lo, ranges.inter.bytes_per_second.lo);
  EXPECT_DOUBLE_EQ(ranges.flat.bytes_per_second.hi, ranges.inter.bytes_per_second.hi);
  // Launch overheads are points: slack there would mask throughput-term bugs.
  EXPECT_DOUBLE_EQ(ranges.gpu_launch_s.width(), 0.0);
  EXPECT_DOUBLE_EQ(ranges.cpu_launch_s.width(), 0.0);
  // CPU throughput degrades down to a contended worker's share.
  EXPECT_DOUBLE_EQ(ranges.cpu_compress_bps.hi,
                   cluster.cpu_compression.compress_bytes_per_s);
  EXPECT_DOUBLE_EQ(ranges.cpu_compress_bps.lo,
                   cluster.cpu_compression.compress_bytes_per_s /
                       static_cast<double>(cluster.cpu_workers_per_gpu));
}

TEST(ParameterRanges, SingleMachineFlatRidesIntra) {
  const ParameterRanges ranges =
      ParameterRanges::ForCluster(NvlinkCluster(/*machines=*/1, /*gpus=*/8), 4.0, 4.0);
  EXPECT_DOUBLE_EQ(ranges.flat.bytes_per_second.lo, ranges.intra.bytes_per_second.lo);
  EXPECT_DOUBLE_EQ(ranges.flat.bytes_per_second.hi, ranges.intra.bytes_per_second.hi);
}

TEST(ParameterRanges, NarrowerSpansNestInsideWiderOnes) {
  const ClusterSpec cluster = PcieCluster();
  const ParameterRanges narrow = ParameterRanges::ForCluster(cluster, 2.0, 2.0);
  const ParameterRanges wide = ParameterRanges::ForCluster(cluster, 4.0, 4.0);
  EXPECT_GE(narrow.intra.bytes_per_second.lo, wide.intra.bytes_per_second.lo);
  EXPECT_LE(narrow.intra.bytes_per_second.hi, wide.intra.bytes_per_second.hi);
  EXPECT_GE(narrow.inter.latency_s.lo, wide.inter.latency_s.lo);
  EXPECT_LE(narrow.inter.latency_s.hi, wide.inter.latency_s.hi);
}

TEST(IntervalCostModel, BoundsTheConcreteCompressionModel) {
  for (const ClusterSpec& cluster : {NvlinkCluster(), PcieCluster()}) {
    for (const char* algorithm : {"randomk", "topk", "qsgd", "fp16"}) {
      const CompressionCostModel concrete = MakeCompressionCostModel(cluster, algorithm);
      const IntervalCostModel symbolic(ParameterRanges::ForCluster(cluster),
                                       concrete.algorithm_weight(Device::kGpu),
                                       concrete.algorithm_weight(Device::kCpu));
      for (double bytes : {4.0e3, 1.0e6, 4.0e8}) {
        for (Device device : {Device::kGpu, Device::kCpu}) {
          const Interval compress = symbolic.CompressTime(device, bytes);
          EXPECT_TRUE(compress.NonNegative());
          EXPECT_TRUE(ContainsApprox(compress, concrete.CompressTime(device, bytes)))
              << algorithm << " compress " << bytes << "B on " << DeviceName(device);
          for (size_t fan_in : {size_t{1}, size_t{8}}) {
            const Interval agg =
                symbolic.AggregateDecompressTime(device, bytes, bytes / 100.0, fan_in);
            EXPECT_TRUE(agg.NonNegative());
            EXPECT_TRUE(ContainsApprox(
                agg, concrete.AggregateDecompressTime(device, bytes, bytes / 100.0,
                                                      fan_in)))
                << algorithm << " aggregate fan_in=" << fan_in << " on "
                << DeviceName(device);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace espresso

#include "src/costmodel/calibration.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

TEST(Calibration, NvlinkClusterShape) {
  const ClusterSpec spec = NvlinkCluster();
  EXPECT_EQ(spec.machines, 8u);
  EXPECT_EQ(spec.gpus_per_machine, 8u);
  EXPECT_EQ(spec.total_gpus(), 64u);
  EXPECT_EQ(spec.intra.name, "nvlink");
  EXPECT_EQ(spec.inter.name, "eth100g");
  EXPECT_FALSE(spec.host_copy_contends_intra);
}

TEST(Calibration, PcieClusterShape) {
  const ClusterSpec spec = PcieCluster(4, 2);
  EXPECT_EQ(spec.machines, 4u);
  EXPECT_EQ(spec.gpus_per_machine, 2u);
  EXPECT_EQ(spec.intra.name, "pcie3x16");
  EXPECT_EQ(spec.inter.name, "eth25g");
  EXPECT_TRUE(spec.host_copy_contends_intra);
}

TEST(Calibration, NvlinkMuchFasterThanPcie) {
  EXPECT_GT(NvLinkIntra().bytes_per_second, 10 * PcieIntra().bytes_per_second);
}

TEST(Calibration, EthernetTiersOrdered) {
  EXPECT_GT(Ethernet100G().bytes_per_second, Ethernet25G().bytes_per_second);
  EXPECT_NEAR(Ethernet100G().bytes_per_second / Ethernet25G().bytes_per_second, 4.0, 0.1);
}

TEST(Calibration, GpuCompressionFasterPerByteThanCpu) {
  const DeviceCostSpec gpu = V100CompressionSpec();
  const DeviceCostSpec cpu = XeonCompressionSpec();
  EXPECT_GT(gpu.compress_bytes_per_s, 5 * cpu.compress_bytes_per_s);
  // ... but pays a larger per-kernel overhead (the Figure-10 constant).
  EXPECT_GT(gpu.launch_overhead_s, cpu.launch_overhead_s);
}

TEST(Calibration, CompressionModelWiring) {
  const ClusterSpec cluster = NvlinkCluster();
  const CompressionCostModel dgc = MakeCompressionCostModel(cluster, "dgc");
  const CompressionCostModel sign = MakeCompressionCostModel(cluster, "efsignsgd");
  // DGC (selection-heavy) costs more per byte than sign quantization on both devices.
  EXPECT_GT(dgc.CompressTime(Device::kGpu, 1e8), sign.CompressTime(Device::kGpu, 1e8));
  EXPECT_GT(dgc.CompressTime(Device::kCpu, 1e8), sign.CompressTime(Device::kCpu, 1e8));
}

}  // namespace
}  // namespace espresso

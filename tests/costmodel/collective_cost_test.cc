#include "src/costmodel/collective_cost.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

const LinkSpec kLink{"test", 10e-6, 1e9};  // 10us latency, 1 GB/s

TEST(CollectiveCost, SingleParticipantIsFree) {
  EXPECT_EQ(AllreduceTime(1, 1e6, kLink), 0.0);
  EXPECT_EQ(ReduceScatterTime(1, 1e6, kLink), 0.0);
  EXPECT_EQ(AllgatherTime(1, 1e6, kLink), 0.0);
  EXPECT_EQ(BroadcastTime(1, 1e6, kLink), 0.0);
  EXPECT_EQ(AlltoallTime(1, 1e6, kLink), 0.0);
  EXPECT_EQ(GatherTime(1, 1e6, kLink), 0.0);
  EXPECT_EQ(ReduceTime(1, 1e6, kLink), 0.0);
}

TEST(CollectiveCost, AllreduceIsRsPlusAg) {
  const size_t p = 8;
  const double bytes = 1e8;
  EXPECT_NEAR(AllreduceTime(p, bytes, kLink),
              ReduceScatterTime(p, bytes, kLink) + AllgatherTime(p, bytes / p, kLink), 1e-9);
}

TEST(CollectiveCost, BandwidthTermMatchesRing) {
  // For large tensors the latency term vanishes: allreduce ~ 2(p-1)/p * bytes / B.
  const size_t p = 4;
  const double bytes = 1e9;
  const double t = AllreduceTime(p, bytes, kLink);
  EXPECT_NEAR(t, 2.0 * 3.0 / 4.0 * bytes / 1e9, 1e-3);
}

TEST(CollectiveCost, LatencyTermMatchesRounds) {
  // For tiny tensors the bandwidth term vanishes: allreduce ~ 2(p-1) alpha.
  const size_t p = 8;
  const double t = AllreduceTime(p, 4.0, kLink);
  EXPECT_NEAR(t, 14.0 * 10e-6, 1e-7);
}

TEST(CollectiveCost, MonotoneInBytes) {
  for (double b = 1e3; b < 1e9; b *= 10) {
    EXPECT_LT(AllreduceTime(8, b, kLink), AllreduceTime(8, b * 10, kLink));
    EXPECT_LT(AllgatherTime(8, b, kLink), AllgatherTime(8, b * 10, kLink));
    EXPECT_LT(AlltoallTime(8, b, kLink), AlltoallTime(8, b * 10, kLink));
    EXPECT_LT(BroadcastTime(8, b, kLink), BroadcastTime(8, b * 10, kLink));
  }
}

TEST(CollectiveCost, MonotoneInLatency) {
  const LinkSpec slow{"slow", 100e-6, 1e9};
  EXPECT_GT(AllreduceTime(8, 1e6, slow), AllreduceTime(8, 1e6, kLink));
}

TEST(CollectiveCost, AllgatherScalesWithContribution) {
  // Per-rank contribution doubles -> bandwidth term doubles.
  const double t1 = AllgatherTime(8, 1e8, kLink);
  const double t2 = AllgatherTime(8, 2e8, kLink);
  EXPECT_NEAR(t2 - t1, 7.0 * 1e8 / 1e9, 1e-6);
}

TEST(CollectiveCost, DivisibleFirstStepCheaperThanIndivisibleAtScale) {
  // Alltoall of per-pair chunks (tensor/p each) moves less than allgathering the full
  // compressed tensor from every rank — the Reason-#2 trade-off.
  const size_t p = 16;
  const double compressed = 1e7;
  EXPECT_LT(AlltoallTime(p, compressed / p, kLink), AllgatherTime(p, compressed, kLink));
}

TEST(CollectiveCost, TransferTime) {
  EXPECT_NEAR(kLink.TransferTime(1e9), 1.0 + 10e-6, 1e-9);
}

}  // namespace
}  // namespace espresso

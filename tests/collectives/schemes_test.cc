#include "src/collectives/schemes.h"

#include <gtest/gtest.h>

#include "src/collectives/primitives.h"
#include "src/compress/fp16.h"
#include "src/compress/randomk.h"
#include "src/compress/topk.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

RankBuffers RandomBuffers(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

// FP16 is (nearly) lossless for moderate values, so compressed schemes must reproduce
// the exact aggregation semantics through it.
TEST(Schemes, IndivisibleMatchesAllreduceUnderFp16) {
  Fp16Compressor c;
  RankBuffers buffers = RandomBuffers(4, 128, 1);
  const std::vector<float> expected = NaiveSum(buffers);
  SchemeContext ctx;
  CompressedIndivisibleAllgather(c, ctx, buffers);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t i = 0; i < 128; ++i) {
      EXPECT_NEAR(buffers[r][i], expected[i], 0.02f);
    }
  }
}

TEST(Schemes, DivisibleAlltoallMatchesAllreduceUnderFp16) {
  Fp16Compressor c;
  RankBuffers buffers = RandomBuffers(4, 130, 2);  // non-divisible size on purpose
  const std::vector<float> expected = NaiveSum(buffers);
  SchemeContext ctx;
  CompressedDivisibleAlltoall(c, ctx, buffers);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t i = 0; i < 130; ++i) {
      EXPECT_NEAR(buffers[r][i], expected[i], 0.02f);
    }
  }
}

TEST(Schemes, DivisibleGatherMatchesAllreduceUnderFp16) {
  Fp16Compressor c;
  RankBuffers buffers = RandomBuffers(3, 64, 3);
  const std::vector<float> expected = NaiveSum(buffers);
  SchemeContext ctx;
  CompressedDivisibleGather(c, ctx, buffers);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t i = 0; i < 64; ++i) {
      EXPECT_NEAR(buffers[r][i], expected[i], 0.02f);
    }
  }
}

TEST(Schemes, AllRanksEndIdentical) {
  TopKCompressor c(0.1);
  RankBuffers buffers = RandomBuffers(5, 200, 4);
  SchemeContext ctx;
  CompressedDivisibleAlltoall(c, ctx, buffers);
  for (size_t r = 1; r < 5; ++r) {
    EXPECT_EQ(buffers[r], buffers[0]) << "rank " << r;
  }
}

TEST(Schemes, IndivisibleAllRanksEndIdentical) {
  TopKCompressor c(0.1);
  RankBuffers buffers = RandomBuffers(5, 200, 5);
  SchemeContext ctx;
  CompressedIndivisibleAllgather(c, ctx, buffers);
  for (size_t r = 1; r < 5; ++r) {
    EXPECT_EQ(buffers[r], buffers[0]);
  }
}

TEST(Schemes, SharedSeedRandomkUsesCompressedAggregation) {
  // With shared-seed Random-k the divisible scheme skips decompress-aggregate-compress:
  // the aggregated result must still equal the per-payload decompressed sum.
  RandomKCompressor c(0.2);
  RankBuffers buffers = RandomBuffers(4, 100, 6);
  RankBuffers reference = buffers;
  SchemeContext ctx;
  ctx.seed = 77;
  const SchemeResult result = CompressedDivisibleAlltoall(c, ctx, buffers);
  // Compressed aggregation: only the initial per-part compressions happen.
  EXPECT_EQ(result.compress_calls, 4u * 4u);

  // Reference: decompress every rank's payloads and sum.
  std::vector<float> expected(100, 0.0f);
  for (size_t r = 0; r < 4; ++r) {
    const Partition part(100, 4);
    for (size_t j = 0; j < 4; ++j) {
      CompressedTensor payload;
      const std::span<const float> full(reference[r]);
      c.Compress(full.subspan(part.Offset(j), part.Length(j)), ctx.seed, &payload);
      auto range = std::span<float>(expected).subspan(part.Offset(j), part.Length(j));
      c.DecompressAdd(payload, range);
    }
  }
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(buffers[0][i], expected[i], 1e-4f);
  }
}

TEST(Schemes, TrafficDivisibleBelowIndivisibleForManyRanks) {
  // The divisible scheme's whole point: per-rank traffic stays ~constant while the
  // indivisible scheme's allgather grows with the rank count (Reason #2, Figure 5).
  TopKCompressor c(0.01);
  const size_t n = 10000;
  SchemeContext ctx;
  RankBuffers a = RandomBuffers(8, n, 7);
  const SchemeResult indivisible = CompressedIndivisibleAllgather(c, ctx, a);
  RankBuffers b = RandomBuffers(8, n, 7);
  const SchemeResult divisible = CompressedDivisibleAlltoall(c, ctx, b);
  EXPECT_LT(divisible.traffic.bytes_sent_per_rank, indivisible.traffic.bytes_sent_per_rank);
}

TEST(Schemes, ErrorFeedbackReducesLongRunError) {
  // Synchronizing the same gradient repeatedly with EF must converge to transmitting
  // it fully; without EF the bias persists.
  TopKCompressor c(0.05);
  const size_t n = 100;
  const size_t ranks = 2;
  std::vector<float> grad(n);
  Rng rng(8);
  rng.FillNormal(grad, 0.0, 1.0);

  auto run = [&](bool use_ef) {
    std::vector<ErrorFeedback> feedback(ranks);
    std::vector<double> accumulated(n, 0.0);
    const int steps = 50;
    for (int s = 0; s < steps; ++s) {
      RankBuffers buffers(ranks, grad);
      SchemeContext ctx;
      ctx.feedback = use_ef ? &feedback : nullptr;
      ctx.tensor_id = 0;
      ctx.seed = static_cast<uint64_t>(s);
      CompressedIndivisibleAllgather(c, ctx, buffers);
      for (size_t i = 0; i < n; ++i) {
        accumulated[i] += buffers[0][i] / ranks;
      }
    }
    double err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double target = static_cast<double>(grad[i]) * steps;
      err += (accumulated[i] - target) * (accumulated[i] - target);
    }
    return err;
  };
  EXPECT_LT(run(true), run(false) * 0.25);
}

}  // namespace
}  // namespace espresso

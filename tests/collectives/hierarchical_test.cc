#include "src/collectives/hierarchical.h"

#include <gtest/gtest.h>

#include "src/collectives/primitives.h"
#include "src/compress/fp16.h"
#include "src/compress/topk.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

RankBuffers RandomBuffers(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

class HierarchicalParam
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {
 protected:
  size_t machines() const { return std::get<0>(GetParam()); }
  size_t gpus() const { return std::get<1>(GetParam()); }
  size_t n() const { return std::get<2>(GetParam()); }
};

TEST_P(HierarchicalParam, UncompressedEqualsGlobalAllreduce) {
  RankBuffers buffers = RandomBuffers(machines() * gpus(), n(), 1);
  const std::vector<float> expected = NaiveSum(buffers);
  HierarchicalOptions options;
  options.machines = machines();
  options.gpus_per_machine = gpus();
  HierarchicalSync(options, buffers);
  for (size_t r = 0; r < buffers.size(); ++r) {
    for (size_t i = 0; i < n(); ++i) {
      EXPECT_NEAR(buffers[r][i], expected[i], 1e-3f) << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, HierarchicalParam,
                         ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{4}),
                                            ::testing::Values(size_t{1}, size_t{2}, size_t{4}),
                                            ::testing::Values(size_t{16}, size_t{129})),
                         [](const auto& info) {
                           return "m" + std::to_string(std::get<0>(info.param)) + "_g" +
                                  std::to_string(std::get<1>(info.param)) + "_n" +
                                  std::to_string(std::get<2>(info.param));
                         });

TEST(Hierarchical, CompressedInterNearlyLosslessUnderFp16) {
  const size_t machines = 2, gpus = 4, n = 64;
  RankBuffers buffers = RandomBuffers(machines * gpus, n, 2);
  const std::vector<float> expected = NaiveSum(buffers);
  Fp16Compressor c;
  HierarchicalOptions options;
  options.machines = machines;
  options.gpus_per_machine = gpus;
  options.inter = InterScheme::kCompressedIndivisible;
  options.compressor = &c;
  HierarchicalSync(options, buffers);
  for (size_t r = 0; r < buffers.size(); ++r) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(buffers[r][i], expected[i], 0.05f);
    }
  }
}

TEST(Hierarchical, CompressedDivisibleInterAllRanksIdentical) {
  const size_t machines = 4, gpus = 2, n = 100;
  RankBuffers buffers = RandomBuffers(machines * gpus, n, 3);
  TopKCompressor c(0.2);
  HierarchicalOptions options;
  options.machines = machines;
  options.gpus_per_machine = gpus;
  options.inter = InterScheme::kCompressedDivisible;
  options.compressor = &c;
  HierarchicalSync(options, buffers);
  for (size_t r = 1; r < buffers.size(); ++r) {
    EXPECT_EQ(buffers[r], buffers[0]);
  }
}

TEST(Hierarchical, InterTrafficShrinksWithCompression) {
  const size_t machines = 4, gpus = 4, n = 10000;
  TopKCompressor c(0.01);
  HierarchicalOptions plain;
  plain.machines = machines;
  plain.gpus_per_machine = gpus;
  RankBuffers a = RandomBuffers(machines * gpus, n, 4);
  const HierarchicalResult uncompressed = HierarchicalSync(plain, a);

  HierarchicalOptions compressed = plain;
  compressed.inter = InterScheme::kCompressedDivisible;
  compressed.compressor = &c;
  RankBuffers b = RandomBuffers(machines * gpus, n, 4);
  const HierarchicalResult with_gc = HierarchicalSync(compressed, b);

  EXPECT_LT(with_gc.inter_traffic.bytes_sent_per_rank,
            uncompressed.inter_traffic.bytes_sent_per_rank / 10);
  // Intra traffic is untouched by inter-only compression.
  EXPECT_EQ(with_gc.intra_traffic.bytes_sent_per_rank,
            uncompressed.intra_traffic.bytes_sent_per_rank);
}

TEST(Hierarchical, CompressIntraShrinksIntraTraffic) {
  // Dimension 4's "both intra and inter" choice: compressing the intra steps cuts the
  // fabric traffic while the aggregation result stays exact in the accounting path.
  const size_t machines = 2, gpus = 4, n = 100000;
  TopKCompressor c(0.01);
  HierarchicalOptions plain;
  plain.machines = machines;
  plain.gpus_per_machine = gpus;
  RankBuffers a = RandomBuffers(machines * gpus, n, 11);
  const HierarchicalResult uncompressed = HierarchicalSync(plain, a);

  HierarchicalOptions both = plain;
  both.inter = InterScheme::kCompressedDivisible;
  both.compress_intra = true;
  both.compressor = &c;
  RankBuffers b = RandomBuffers(machines * gpus, n, 11);
  const HierarchicalResult compressed = HierarchicalSync(both, b);

  EXPECT_LT(compressed.intra_traffic.bytes_sent_per_rank,
            uncompressed.intra_traffic.bytes_sent_per_rank / 10);
  EXPECT_LT(compressed.inter_traffic.bytes_sent_per_rank,
            uncompressed.inter_traffic.bytes_sent_per_rank / 10);
}

TEST(HierarchicalDeathTest, CompressedStageRequiresCompressor) {
  RankBuffers buffers = RandomBuffers(4, 16, 5);
  HierarchicalOptions options;
  options.machines = 2;
  options.gpus_per_machine = 2;
  options.inter = InterScheme::kCompressedIndivisible;
  EXPECT_DEATH(HierarchicalSync(options, buffers), "");
}

}  // namespace
}  // namespace espresso

#include "src/collectives/primitives.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace espresso {
namespace {

RankBuffers RandomBuffers(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

class PrimitivesParam : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {
 protected:
  size_t ranks() const { return std::get<0>(GetParam()); }
  size_t n() const { return std::get<1>(GetParam()); }
};

TEST_P(PrimitivesParam, AllReduceMatchesNaiveSum) {
  RankBuffers buffers = RandomBuffers(ranks(), n(), 1);
  const std::vector<float> expected = NaiveSum(buffers);
  AllReduce(buffers);
  for (size_t r = 0; r < ranks(); ++r) {
    for (size_t i = 0; i < n(); ++i) {
      EXPECT_NEAR(buffers[r][i], expected[i], 1e-4f) << "rank " << r << " idx " << i;
    }
  }
}

TEST_P(PrimitivesParam, ReduceScatterThenAllGatherEqualsAllReduce) {
  RankBuffers buffers = RandomBuffers(ranks(), n(), 2);
  const std::vector<float> expected = NaiveSum(buffers);
  std::vector<std::vector<float>> shards;
  ReduceScatter(buffers, &shards);
  RankBuffers gathered;
  AllGather(shards, &gathered);
  for (size_t r = 0; r < ranks(); ++r) {
    for (size_t i = 0; i < n(); ++i) {
      EXPECT_NEAR(gathered[r][i], expected[i], 1e-4f);
    }
  }
}

TEST_P(PrimitivesParam, ReduceThenBroadcastEqualsAllReduce) {
  RankBuffers buffers = RandomBuffers(ranks(), n(), 3);
  const std::vector<float> expected = NaiveSum(buffers);
  std::vector<float> reduced;
  Reduce(buffers, 0, &reduced);
  RankBuffers out(ranks());
  Broadcast(reduced, &out);
  for (size_t r = 0; r < ranks(); ++r) {
    for (size_t i = 0; i < n(); ++i) {
      EXPECT_NEAR(out[r][i], expected[i], 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RanksAndSizes, PrimitivesParam,
                         ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{3},
                                                              size_t{4}, size_t{8}, size_t{16}),
                                            ::testing::Values(size_t{1}, size_t{5}, size_t{64},
                                                              size_t{257})),
                         [](const auto& info) {
                           return "r" + std::to_string(std::get<0>(info.param)) + "_n" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(Partition, CoversRangeExactly) {
  for (size_t n : {0u, 1u, 7u, 64u, 65u}) {
    for (size_t p : {1u, 2u, 3u, 8u}) {
      Partition part(n, p);
      size_t total = 0;
      size_t expected_offset = 0;
      for (size_t i = 0; i < p; ++i) {
        EXPECT_EQ(part.Offset(i), expected_offset);
        total += part.Length(i);
        expected_offset += part.Length(i);
      }
      EXPECT_EQ(total, n);
    }
  }
}

TEST(Partition, NearEqualLengths) {
  Partition part(10, 3);
  EXPECT_EQ(part.Length(0), 4u);
  EXPECT_EQ(part.Length(1), 3u);
  EXPECT_EQ(part.Length(2), 3u);
}

TEST(AllReduceTraffic, RingVolume) {
  RankBuffers buffers = RandomBuffers(4, 100, 4);
  const CollectiveTraffic t = AllReduce(buffers);
  // 2(p-1)/p of the tensor, with ceil-per-chunk slack.
  EXPECT_GE(t.bytes_sent_per_rank, 2 * 3 * 25 * sizeof(float));
  EXPECT_EQ(t.communication_steps, 6u);
}

TEST(CheckUniformSizeDeathTest, MismatchedSizesDie) {
  RankBuffers buffers = {{1.0f, 2.0f}, {3.0f}};
  EXPECT_DEATH(CheckUniformSize(buffers), "");
}

}  // namespace
}  // namespace espresso

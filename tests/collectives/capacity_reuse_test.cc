// Capacity-reuse regressions for the uncompressed primitives: repeated calls on stable
// shapes must leave every destination buffer's storage in place (data() pointers
// unchanged), because the pooled dataplane relies on resize/assign never reallocating
// once warm.
#include <gtest/gtest.h>

#include <vector>

#include "src/collectives/primitives.h"
#include "src/mem/workspace.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

RankBuffers RandomBuffers(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

std::vector<const float*> DataPointers(const RankBuffers& buffers) {
  std::vector<const float*> ptrs;
  for (const auto& b : buffers) {
    ptrs.push_back(b.data());
  }
  return ptrs;
}

TEST(CapacityReuse, AllGatherKeepsDestinationStorage) {
  const RankBuffers source = RandomBuffers(4, 101, 1);
  std::vector<std::vector<float>> shards;
  ReduceScatter(source, &shards);

  RankBuffers gathered;
  AllGather(shards, &gathered);  // first call sizes the destinations
  const std::vector<const float*> ptrs = DataPointers(gathered);
  const RankBuffers expected = gathered;

  AllGather(shards, &gathered);
  EXPECT_EQ(DataPointers(gathered), ptrs);
  EXPECT_EQ(gathered, expected);
}

TEST(CapacityReuse, AllGatherShrinkingShapeKeepsStorage) {
  // A larger first call leaves enough capacity that a smaller second shape must not
  // reallocate either.
  std::vector<std::vector<float>> big_shards;
  ReduceScatter(RandomBuffers(4, 200, 2), &big_shards);
  RankBuffers gathered;
  AllGather(big_shards, &gathered);
  const std::vector<const float*> ptrs = DataPointers(gathered);

  std::vector<std::vector<float>> small_shards;
  ReduceScatter(RandomBuffers(4, 80, 3), &small_shards);
  AllGather(small_shards, &gathered);
  EXPECT_EQ(DataPointers(gathered), ptrs);
  for (const auto& b : gathered) {
    EXPECT_EQ(b.size(), 80u);
  }
}

TEST(CapacityReuse, ReduceScatterKeepsShardStorage) {
  const RankBuffers source = RandomBuffers(4, 101, 4);
  std::vector<std::vector<float>> shards;
  ReduceScatter(source, &shards);
  std::vector<const float*> ptrs;
  for (const auto& s : shards) {
    ptrs.push_back(s.data());
  }
  ReduceScatter(source, &shards);
  for (size_t r = 0; r < shards.size(); ++r) {
    EXPECT_EQ(shards[r].data(), ptrs[r]) << "shard " << r;
  }
}

TEST(CapacityReuse, AllReduceKeepsCallerBuffersAndResult) {
  mem::CollectiveWorkspace workspace;
  const RankBuffers initial = RandomBuffers(4, 97, 5);

  RankBuffers once = initial;
  AllReduce(once, &workspace);

  RankBuffers again = initial;
  const std::vector<const float*> ptrs = DataPointers(again);
  AllReduce(again, &workspace);  // warm workspace, second run
  EXPECT_EQ(DataPointers(again), ptrs);
  // Bit-identical across cold and warm workspace runs.
  EXPECT_EQ(once, again);
}

TEST(CapacityReuse, ReduceAndBroadcastKeepDestinations) {
  const RankBuffers source = RandomBuffers(4, 64, 6);
  std::vector<float> reduced;
  Reduce(source, 0, &reduced);
  const float* reduced_ptr = reduced.data();
  Reduce(source, 0, &reduced);
  EXPECT_EQ(reduced.data(), reduced_ptr);

  RankBuffers targets(4, std::vector<float>(64));
  const std::vector<const float*> ptrs = DataPointers(targets);
  Broadcast(reduced, &targets);
  EXPECT_EQ(DataPointers(targets), ptrs);
}

}  // namespace
}  // namespace espresso

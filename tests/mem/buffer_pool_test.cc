#include "src/mem/buffer_pool.h"

#include <gtest/gtest.h>

#include "src/obs/metrics.h"

namespace espresso::mem {
namespace {

TEST(BufferPool, AcquireSizesAndZeroes) {
  BufferPool pool;
  PooledFloats f = pool.AcquireFloats(17);
  EXPECT_EQ(f->size(), 17u);
  PooledFloats z = pool.AcquireZeroedFloats(33);
  ASSERT_EQ(z->size(), 33u);
  for (float v : *z) {
    ASSERT_EQ(v, 0.0f);
  }
  PooledBytes b = pool.AcquireBytes(9);
  EXPECT_EQ(b->size(), 9u);
}

TEST(BufferPool, ReleaseThenAcquireIsAHit) {
  BufferPool pool;
  const float* data;
  {
    PooledFloats f = pool.AcquireFloats(100);
    data = f->data();
  }  // handle returns the buffer
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().buffers_resident, 1u);

  PooledFloats again = pool.AcquireFloats(100);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(again->data(), data);  // same storage, recycled
}

TEST(BufferPool, SmallerRequestReusesLargerBucketMate) {
  BufferPool pool;
  { PooledFloats f = pool.AcquireFloats(100); }  // bucket for 128
  // 65..128 share the bucket; the parked capacity serves the request without
  // reallocating.
  PooledFloats f = pool.AcquireFloats(70);
  EXPECT_EQ(f->size(), 70u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPool, MissRoundsCapacityToBucketCeiling) {
  BufferPool pool;
  const float* data;
  {
    PooledFloats f = pool.AcquireFloats(100);
    EXPECT_GE(f->capacity(), 128u);
    data = f->data();
  }
  // A full-bucket-sized request is served by the same rounded-up buffer.
  PooledFloats f = pool.AcquireFloats(128);
  EXPECT_EQ(f->data(), data);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPool, DistinctBucketsDoNotInterfere) {
  BufferPool pool;
  { PooledFloats f = pool.AcquireFloats(10); }  // bucket 16
  PooledFloats big = pool.AcquireFloats(1000);  // bucket 1024: miss
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPool, FloatAndByteShelvesAreSeparate) {
  BufferPool pool;
  { PooledFloats f = pool.AcquireFloats(64); }
  PooledBytes b = pool.AcquireBytes(64);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPool, StatsTrackResidencyAndHighWater) {
  BufferPool pool;
  {
    PooledFloats a = pool.AcquireFloats(64);   // 64 floats = 256 bytes capacity
    PooledFloats b = pool.AcquireFloats(64);
    EXPECT_EQ(pool.stats().bytes_outstanding, 2 * 64 * sizeof(float));
  }
  EXPECT_EQ(pool.stats().bytes_outstanding, 0u);
  EXPECT_EQ(pool.stats().bytes_resident, 2 * 64 * sizeof(float));
  EXPECT_EQ(pool.stats().bytes_high_water, 2 * 64 * sizeof(float));
}

TEST(BufferPool, TrimDropsParkedBuffersOnly) {
  BufferPool pool;
  { PooledFloats f = pool.AcquireFloats(64); }
  PooledFloats live = pool.AcquireFloats(64);
  { PooledFloats g = pool.AcquireFloats(64); }
  EXPECT_EQ(pool.stats().buffers_resident, 1u);
  pool.Trim();
  EXPECT_EQ(pool.stats().buffers_resident, 0u);
  EXPECT_EQ(pool.stats().bytes_resident, 0u);
  // The live handle is unaffected and returns normally.
  EXPECT_EQ(live->size(), 64u);
}

TEST(BufferPool, DefaultConstructedHandleIsInert) {
  PooledFloats f;
  EXPECT_TRUE(f->empty());
  // Destruction of an unbound handle must not touch any pool.
}

TEST(BufferPool, MovedFromHandleDoesNotDoubleRelease) {
  BufferPool pool;
  {
    PooledFloats a = pool.AcquireFloats(32);
    PooledFloats b = std::move(a);
    EXPECT_EQ(b->size(), 32u);
  }
  EXPECT_EQ(pool.stats().releases, 1u);
}

TEST(BufferPool, CallerGrowthIsKeptOnRelease) {
  BufferPool pool;
  {
    PooledFloats f = pool.AcquireFloats(8);
    f->resize(500);  // caller grows the lease; capacity becomes >= 500
  }
  // The grown buffer files under the largest bucket its capacity fully covers
  // (>= 256 elements), so a request in that bucket is served without allocating.
  PooledFloats f = pool.AcquireFloats(200);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPool, NamedPoolPublishesMetrics) {
  BufferPool pool("buffer_pool_test");
  { PooledFloats f = pool.AcquireFloats(64); }
  { PooledFloats f = pool.AcquireFloats(64); }
  const obs::MetricsSnapshot snap = obs::GlobalMetrics().Scrape();
  const obs::MetricValue* hits =
      snap.Find("espresso_mempool_buffer_pool_test_hits_total");
  const obs::MetricValue* misses =
      snap.Find("espresso_mempool_buffer_pool_test_misses_total");
  const obs::MetricValue* resident =
      snap.Find("espresso_mempool_buffer_pool_test_bytes_resident");
  const obs::MetricValue* high_water =
      snap.Find("espresso_mempool_buffer_pool_test_bytes_high_water");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  ASSERT_NE(resident, nullptr);
  ASSERT_NE(high_water, nullptr);
  EXPECT_GE(hits->count, 1u);
  EXPECT_GE(misses->count, 1u);
  EXPECT_GT(resident->value, 0.0);
  EXPECT_GT(high_water->value, 0.0);
}

}  // namespace
}  // namespace espresso::mem

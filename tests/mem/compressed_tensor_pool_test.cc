#include "src/mem/compressed_tensor_pool.h"

#include <gtest/gtest.h>

#include "src/compress/compressed_tensor.h"
#include "src/obs/metrics.h"

namespace espresso::mem {
namespace {

TEST(CompressedTensorPool, AcquireHandsOutClearedTensor) {
  CompressedTensorPool pool;
  PooledTensor t = pool.Acquire();
  EXPECT_EQ(t->original_elements, 0u);
  EXPECT_TRUE(t->indices.empty());
  EXPECT_TRUE(t->values.empty());
  EXPECT_TRUE(t->bytes.empty());
  EXPECT_TRUE(t->scales.empty());
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(CompressedTensorPool, RecycledTensorKeepsCapacity) {
  CompressedTensorPool pool;
  const uint32_t* indices_data;
  const float* values_data;
  {
    PooledTensor t = pool.Acquire();
    t->indices.assign(200, 5u);
    t->values.assign(200, 1.5f);
    t->original_elements = 1000;
    indices_data = t->indices.data();
    values_data = t->values.data();
  }
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().tensors_resident, 1u);

  PooledTensor t = pool.Acquire();
  EXPECT_EQ(pool.stats().hits, 1u);
  // Clear()ed but warm: empty vectors whose buffers survive, so refilling to the
  // previous shape reallocates nothing.
  EXPECT_TRUE(t->indices.empty());
  EXPECT_EQ(t->original_elements, 0u);
  t->indices.resize(200);
  t->values.resize(150);
  EXPECT_EQ(t->indices.data(), indices_data);
  EXPECT_EQ(t->values.data(), values_data);
}

TEST(CompressedTensorPool, StatsTrackCapacityBytes) {
  CompressedTensorPool pool;
  {
    PooledTensor t = pool.Acquire();
    t->indices.reserve(100);  // 400 bytes
    t->bytes.reserve(64);     // 64 bytes
  }
  EXPECT_GE(pool.stats().bytes_resident, 100 * sizeof(uint32_t) + 64);
  EXPECT_GE(pool.stats().bytes_high_water, pool.stats().bytes_resident);
}

TEST(CompressedTensorPool, TrimFreesParkedTensors) {
  CompressedTensorPool pool;
  { PooledTensor t = pool.Acquire(); }
  EXPECT_EQ(pool.stats().tensors_resident, 1u);
  pool.Trim();
  EXPECT_EQ(pool.stats().tensors_resident, 0u);
  EXPECT_EQ(pool.stats().bytes_resident, 0u);
  // Next acquire is a fresh miss.
  PooledTensor t = pool.Acquire();
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(CompressedTensorPool, MovedFromHandleDoesNotDoubleRelease) {
  CompressedTensorPool pool;
  {
    PooledTensor a = pool.Acquire();
    PooledTensor b = std::move(a);
    EXPECT_NE(b.get(), nullptr);
  }
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().tensors_resident, 1u);
}

TEST(CompressedTensorPool, NamedPoolPublishesMetrics) {
  CompressedTensorPool pool("tensor_pool_test");
  { PooledTensor t = pool.Acquire(); }
  { PooledTensor t = pool.Acquire(); }
  const obs::MetricsSnapshot snap = obs::GlobalMetrics().Scrape();
  const obs::MetricValue* hits =
      snap.Find("espresso_tensorpool_tensor_pool_test_hits_total");
  const obs::MetricValue* misses =
      snap.Find("espresso_tensorpool_tensor_pool_test_misses_total");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_GE(hits->count, 1u);
  EXPECT_GE(misses->count, 1u);
}

}  // namespace
}  // namespace espresso::mem

#include "src/mem/arena.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace espresso::mem {
namespace {

TEST(Arena, AllocReturnsWritableSpan) {
  Arena arena;
  std::span<float> s = arena.Alloc<float>(16);
  ASSERT_EQ(s.size(), 16u);
  for (size_t i = 0; i < s.size(); ++i) {
    s[i] = static_cast<float>(i);
  }
  EXPECT_EQ(s[15], 15.0f);
}

TEST(Arena, AllocZeroedIsZero) {
  Arena arena;
  // Dirty the arena, rewind, and re-allocate: the zeroed variant must still be zero.
  auto dirty = arena.Alloc<uint8_t>(64);
  std::fill(dirty.begin(), dirty.end(), 0xFF);
  arena.Reset();
  std::span<uint8_t> s = arena.AllocZeroed<uint8_t>(64);
  for (uint8_t b : s) {
    ASSERT_EQ(b, 0);
  }
}

TEST(Arena, DistinctAllocationsDoNotOverlap) {
  Arena arena;
  std::span<float> a = arena.Alloc<float>(8);
  std::span<float> b = arena.Alloc<float>(8);
  EXPECT_GE(b.data(), a.data() + a.size());
}

TEST(Arena, RewindReusesStorageWithoutGrowth) {
  Arena arena(256);
  float* first = nullptr;
  for (int round = 0; round < 10; ++round) {
    Arena::Mark mark = arena.CurrentMark();
    std::span<float> s = arena.Alloc<float>(32);
    if (round == 0) {
      first = s.data();
    } else {
      // Same position every round: a rewound arena bumps from the same spot.
      EXPECT_EQ(s.data(), first);
    }
    arena.ResetTo(mark);
  }
  const size_t capacity_after_warmup = arena.bytes_capacity();
  for (int round = 0; round < 10; ++round) {
    ArenaScope scope(arena);
    arena.Alloc<float>(32);
  }
  EXPECT_EQ(arena.bytes_capacity(), capacity_after_warmup);
}

TEST(Arena, GrowsBeyondInitialBlock) {
  Arena arena(64);
  std::span<double> big = arena.Alloc<double>(1024);
  ASSERT_EQ(big.size(), 1024u);
  big[0] = 1.0;
  big[1023] = 2.0;
  EXPECT_EQ(big[0], 1.0);
  EXPECT_EQ(big[1023], 2.0);
  EXPECT_GE(arena.bytes_capacity(), 1024 * sizeof(double));
}

TEST(Arena, NestedScopesRewindInOrder) {
  Arena arena(128);
  std::span<int> outer;
  {
    ArenaScope s1(arena);
    outer = arena.Alloc<int>(4);
    outer[0] = 42;
    {
      ArenaScope s2(arena);
      std::span<int> inner = arena.Alloc<int>(4);
      inner[0] = 7;
    }
    // Inner scope rewound; outer span still valid.
    EXPECT_EQ(outer[0], 42);
    // The next allocation lands where the inner one did.
    std::span<int> again = arena.Alloc<int>(4);
    EXPECT_EQ(again.data(), outer.data() + outer.size());
  }
}

TEST(Arena, HighWaterTracksPeakUse) {
  Arena arena(64);
  EXPECT_EQ(arena.bytes_high_water(), 0u);
  {
    ArenaScope scope(arena);
    arena.Alloc<uint8_t>(100);
  }
  const size_t peak = arena.bytes_high_water();
  EXPECT_GE(peak, 100u);
  {
    ArenaScope scope(arena);
    arena.Alloc<uint8_t>(10);
  }
  EXPECT_EQ(arena.bytes_high_water(), peak);
}

TEST(Arena, AlignmentIsRespected) {
  Arena arena;
  arena.Alloc<uint8_t>(3);  // misalign the bump pointer
  std::span<double> d = arena.Alloc<double>(1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d.data()) % alignof(double), 0u);
}

TEST(Arena, AllocAlignedHonorsOveralignedRequests) {
  // The SoA staging columns (mem::BatchedCompressPlan) require cache-line alignment,
  // beyond alignof(float). The alignment must hold for the ABSOLUTE address, not the
  // block offset, and must survive a deliberately misaligned bump pointer.
  Arena arena;
  for (int round = 0; round < 8; ++round) {
    arena.Alloc<uint8_t>(static_cast<size_t>(1 + round * 3));  // misalign
    std::span<float> s = arena.AllocAligned<float>(16, 64);
    ASSERT_EQ(s.size(), 16u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.data()) % 64, 0u) << "round " << round;
    s[0] = 1.0f;
    s[15] = 2.0f;  // writable end to end
  }
  // Also across a block boundary: force a fresh block with a large request.
  arena.Alloc<uint8_t>(1);
  std::span<float> big = arena.AllocAligned<float>(8192, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big.data()) % 64, 0u);
}

}  // namespace
}  // namespace espresso::mem

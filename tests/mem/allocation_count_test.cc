// Steady-state allocation counting for the execution dataplane. This binary overrides
// the global allocating operators with counting forwarders; each test warms the path
// under test (workspaces, pools, error-feedback residuals, thread-local scratch), then
// replays it with the counter snapshotted before and after. The zero-allocation claim
// of docs/MEMORY.md is asserted literally: the delta must be 0.
//
// These tests live in their own binary (mem_allocation_tests) because the operator
// new/delete replacement is process-global. No gtest assertion runs inside a counting
// window — gtest allocates on failure paths and some success paths.
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

// ---------------------------------------------------------------------------
// Global allocation hooks. Count every allocating form; frees are not counted.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

#include <gtest/gtest.h>

#include <vector>

#include "src/collectives/hierarchical.h"
#include "src/collectives/primitives.h"
#include "src/collectives/schemes.h"
#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/ddl/strategy_executor.h"
#include "src/mem/buffer_pool.h"
#include "src/mem/compressed_tensor_pool.h"
#include "src/mem/workspace.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

RankBuffers MakeGradients(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

// Refills `buffers` from `initial` without changing any capacity.
void Refill(RankBuffers& buffers, const RankBuffers& initial) {
  for (size_t r = 0; r < buffers.size(); ++r) {
    buffers[r].assign(initial[r].begin(), initial[r].end());
  }
}

TEST(AllocationCount, PoolHitPathIsAllocationFree) {
  mem::BufferPool pool;
  { mem::PooledFloats warm = pool.AcquireFloats(256); }
  { mem::PooledBytes warm = pool.AcquireBytes(64); }
  const std::uint64_t before = AllocationCount();
  for (int i = 0; i < 100; ++i) {
    mem::PooledFloats f = pool.AcquireFloats(200);
    mem::PooledBytes b = pool.AcquireBytes(50);
    (*f)[0] = 1.0f;
    (*b)[0] = 1;
  }
  const std::uint64_t delta = AllocationCount() - before;
  EXPECT_EQ(delta, 0u);
}

TEST(AllocationCount, TensorPoolHitPathIsAllocationFree) {
  mem::CompressedTensorPool pool;
  {
    mem::PooledTensor warm = pool.Acquire();
    warm->indices.assign(64, 1u);
    warm->values.assign(64, 1.0f);
  }
  const std::uint64_t before = AllocationCount();
  for (int i = 0; i < 100; ++i) {
    mem::PooledTensor t = pool.Acquire();
    t->indices.resize(64);
    t->values.resize(64);
  }
  const std::uint64_t delta = AllocationCount() - before;
  EXPECT_EQ(delta, 0u);
}

// Satellite regression for the ErrorFeedback per-call decompress buffer: repeated
// CompressWithFeedback on a warm residual must not touch the heap.
TEST(AllocationCount, ErrorFeedbackSteadyStateIsAllocationFree) {
  const auto topk = CreateCompressor(CompressorConfig{.algorithm = "topk", .ratio = 0.25});
  ErrorFeedback feedback;
  std::vector<float> grad(512);
  Rng rng(3);
  rng.FillNormal(grad, 0.0, 1.0);
  CompressedTensor out;
  for (int i = 0; i < 3; ++i) {
    feedback.CompressWithFeedback(*topk, /*tensor_id=*/0, grad,
                                  static_cast<uint64_t>(i), &out);
    out.Clear();
  }
  const std::uint64_t before = AllocationCount();
  for (int i = 3; i < 23; ++i) {
    feedback.CompressWithFeedback(*topk, /*tensor_id=*/0, grad,
                                  static_cast<uint64_t>(i), &out);
    out.Clear();
  }
  const std::uint64_t delta = AllocationCount() - before;
  EXPECT_EQ(delta, 0u);
}

TEST(AllocationCount, PrimitivesSteadyStateIsAllocationFree) {
  const size_t ranks = 4, n = 97;
  const RankBuffers initial = MakeGradients(ranks, n, 5);
  RankBuffers buffers = initial;
  mem::CollectiveWorkspace workspace;
  std::vector<std::vector<float>> shards;
  RankBuffers gathered;
  std::vector<float> reduced;

  for (int i = 0; i < 2; ++i) {  // warm-up
    Refill(buffers, initial);
    AllReduce(buffers, &workspace);
    ReduceScatter(initial, &shards);
    AllGather(shards, &gathered);
    Reduce(initial, 0, &reduced);
    Broadcast(reduced, &gathered);
  }
  const std::uint64_t before = AllocationCount();
  for (int i = 0; i < 10; ++i) {
    Refill(buffers, initial);
    AllReduce(buffers, &workspace);
    ReduceScatter(initial, &shards);
    AllGather(shards, &gathered);
    Reduce(initial, 0, &reduced);
    Broadcast(reduced, &gathered);
  }
  const std::uint64_t delta = AllocationCount() - before;
  EXPECT_EQ(delta, 0u);
}

TEST(AllocationCount, SchemesSteadyStateIsAllocationFree) {
  const size_t ranks = 4, n = 128;
  const auto randomk =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.25});
  const RankBuffers initial = MakeGradients(ranks, n, 7);
  RankBuffers buffers = initial;
  mem::CollectiveWorkspace workspace;
  std::vector<ErrorFeedback> feedback(ranks);
  SchemeContext ctx;
  ctx.feedback = &feedback;
  ctx.workspace = &workspace;

  for (int i = 0; i < 3; ++i) {  // warm-up
    ctx.seed = static_cast<uint64_t>(i);
    Refill(buffers, initial);
    CompressedIndivisibleAllgather(*randomk, ctx, buffers);
    Refill(buffers, initial);
    CompressedDivisibleAlltoall(*randomk, ctx, buffers);
    Refill(buffers, initial);
    CompressedDivisibleGather(*randomk, ctx, buffers);
  }
  const std::uint64_t before = AllocationCount();
  for (int i = 3; i < 13; ++i) {
    ctx.seed = static_cast<uint64_t>(i);
    Refill(buffers, initial);
    CompressedIndivisibleAllgather(*randomk, ctx, buffers);
    Refill(buffers, initial);
    CompressedDivisibleAlltoall(*randomk, ctx, buffers);
    Refill(buffers, initial);
    CompressedDivisibleGather(*randomk, ctx, buffers);
  }
  const std::uint64_t delta = AllocationCount() - before;
  EXPECT_EQ(delta, 0u);
}

TEST(AllocationCount, HierarchicalSyncSteadyStateIsAllocationFree) {
  const size_t machines = 2, gpus = 2, n = 96;
  const auto fp16 = CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  const RankBuffers initial = MakeGradients(machines * gpus, n, 9);
  RankBuffers buffers = initial;
  mem::CollectiveWorkspace workspace;
  std::vector<ErrorFeedback> feedback(machines * gpus);

  HierarchicalOptions options;
  options.machines = machines;
  options.gpus_per_machine = gpus;
  options.compressor = fp16.get();
  options.feedback = &feedback;
  options.workspace = &workspace;

  for (InterScheme inter :
       {InterScheme::kUncompressedAllreduce, InterScheme::kCompressedIndivisible,
        InterScheme::kCompressedDivisible}) {
    options.inter = inter;
    for (int i = 0; i < 3; ++i) {  // warm-up per scheme
      options.seed = static_cast<uint64_t>(i);
      Refill(buffers, initial);
      HierarchicalSync(options, buffers);
    }
    const std::uint64_t before = AllocationCount();
    for (int i = 3; i < 8; ++i) {
      options.seed = static_cast<uint64_t>(i);
      Refill(buffers, initial);
      HierarchicalSync(options, buffers);
    }
    const std::uint64_t delta = AllocationCount() - before;
    EXPECT_EQ(delta, 0u) << "inter scheme " << static_cast<int>(inter);
  }
}

// The headline guarantee: a warmed ExecutorWorkspace executes EVERY candidate and
// baseline option with zero heap allocations per step.
TEST(AllocationCount, ExecutorSteadyStateIsAllocationFree) {
  const auto fp16 = CreateCompressor(CompressorConfig{.algorithm = "fp16"});
  const TreeConfig tree{2, 2, false};
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  std::vector<CompressionOption> options = CandidateOptions(tree);
  options.push_back(InterOnlyIndivisibleOption(cluster, Device::kGpu));
  options.push_back(InterOnlyDivisibleOption(cluster, Device::kGpu));
  options.push_back(AlltoallAlltoallOption(cluster, Device::kGpu));

  const size_t ranks = 4, n = 128;
  const RankBuffers initial = MakeGradients(ranks, n, 11);
  RankBuffers buffers = initial;
  std::vector<ErrorFeedback> feedback(ranks);
  ExecutorWorkspace workspace;
  ExecutorConfig config{.machines = 2, .gpus_per_machine = 2, .compressor = fp16.get(),
                        .feedback = &feedback};

  for (int step = 0; step < 3; ++step) {  // warm-up: every option, every path
    config.seed = static_cast<uint64_t>(step);
    for (const CompressionOption& option : options) {
      Refill(buffers, initial);
      ExecuteOption(option, config, /*tensor_id=*/0, buffers, &workspace);
    }
  }
  const std::uint64_t before = AllocationCount();
  for (int step = 3; step < 8; ++step) {
    config.seed = static_cast<uint64_t>(step);
    for (const CompressionOption& option : options) {
      Refill(buffers, initial);
      ExecuteOption(option, config, /*tensor_id=*/0, buffers, &workspace);
    }
  }
  const std::uint64_t delta = AllocationCount() - before;
  EXPECT_EQ(delta, 0u);
}

// Same guarantee through the sparse compressed-domain aggregation paths (shared-seed
// Random-k over the full enumerated tree with aggregation enabled).
TEST(AllocationCount, SparseAggregationExecutorSteadyStateIsAllocationFree) {
  const auto randomk =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.2});
  const TreeConfig with_agg{2, 2, true};
  const std::vector<CompressionOption> options = EnumerateOptions(with_agg).options;

  const size_t ranks = 4, n = 100;
  const RankBuffers initial = MakeGradients(ranks, n, 13);
  RankBuffers buffers = initial;
  std::vector<ErrorFeedback> feedback(ranks);
  ExecutorWorkspace workspace;
  ExecutorConfig config{.machines = 2, .gpus_per_machine = 2,
                        .compressor = randomk.get(), .feedback = &feedback};

  for (int step = 0; step < 3; ++step) {  // warm-up
    config.seed = static_cast<uint64_t>(step);
    for (const CompressionOption& option : options) {
      Refill(buffers, initial);
      ExecuteOption(option, config, 0, buffers, &workspace);
    }
  }
  const std::uint64_t before = AllocationCount();
  for (int step = 3; step < 6; ++step) {
    config.seed = static_cast<uint64_t>(step);
    for (const CompressionOption& option : options) {
      Refill(buffers, initial);
      ExecuteOption(option, config, 0, buffers, &workspace);
    }
  }
  const std::uint64_t delta = AllocationCount() - before;
  EXPECT_EQ(delta, 0u);
}

}  // namespace
}  // namespace espresso

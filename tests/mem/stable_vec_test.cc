#include "src/mem/stable_vec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace espresso::mem {
namespace {

TEST(StableVec, StartsEmpty) {
  StableVec<int> v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.retained(), 0u);
}

TEST(StableVec, PushGrowsAndIndexes) {
  StableVec<int> v;
  v.push() = 1;
  v.push() = 2;
  v.push() = 3;
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
}

TEST(StableVec, ClearIsLogicalAndRecyclesElements) {
  StableVec<std::vector<float>> v;
  v.push().assign(100, 1.0f);
  v.push().assign(50, 2.0f);
  const float* data0 = v[0].data();
  const float* data1 = v[1].data();

  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.retained(), 2u);

  // push() hands back the previously-constructed elements, buffers intact.
  std::vector<float>& a = v.push();
  EXPECT_EQ(a.data(), data0);
  a.assign(80, 3.0f);  // within old capacity: no reallocation
  EXPECT_EQ(a.data(), data0);
  std::vector<float>& b = v.push();
  EXPECT_EQ(b.data(), data1);
}

TEST(StableVec, TruncateRetainsDroppedElements) {
  StableVec<int> v;
  for (int i = 0; i < 5; ++i) {
    v.push() = i;
  }
  v.truncate(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.retained(), 5u);
  // Truncate never grows.
  v.truncate(4);
  EXPECT_EQ(v.size(), 2u);
  // Recycled slot carries the stale value until overwritten.
  EXPECT_EQ(v.push(), 2);
}

TEST(StableVec, IterationCoversLiveRangeOnly) {
  StableVec<int> v;
  v.push() = 7;
  v.push() = 8;
  v.push() = 9;
  v.truncate(2);
  int sum = 0;
  for (int x : v) {
    sum += x;
  }
  EXPECT_EQ(sum, 15);
}

TEST(StableVec, CopyFromReusesDestinationCapacity) {
  StableVec<std::vector<float>> src;
  src.push().assign(10, 1.0f);
  src.push().assign(20, 2.0f);

  StableVec<std::vector<float>> dst;
  dst.push().assign(64, 0.0f);
  dst.push().assign(64, 0.0f);
  dst.clear();
  const float* dst0 = dst[0].data();

  dst.CopyFrom(src);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst[0].size(), 10u);
  EXPECT_EQ(dst[1].size(), 20u);
  EXPECT_EQ(dst[0][0], 1.0f);
  EXPECT_EQ(dst[1][0], 2.0f);
  // Copy-assign into the retained element reuses its (larger) buffer.
  EXPECT_EQ(dst[0].data(), dst0);
}

TEST(StableVec, AppendFromAppendsLiveElements) {
  StableVec<int> a;
  a.push() = 1;
  a.push() = 2;
  StableVec<int> b;
  b.push() = 3;
  b.push() = 4;
  b.truncate(1);
  a.AppendFrom(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 3);
}

TEST(StableVec, SwapExchangesBackingStores) {
  StableVec<int> a;
  a.push() = 1;
  StableVec<int> b;
  b.push() = 2;
  b.push() = 3;
  a.Swap(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 2);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 1);
}

}  // namespace
}  // namespace espresso::mem

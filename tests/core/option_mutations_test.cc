#include "src/core/option_mutations.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/analysis/strategy_linter.h"
#include "src/core/decision_tree.h"

namespace espresso {
namespace {

TEST(OptionMutations, DeterministicAndExcludesIdentity) {
  const TreeConfig config{8, 8, false};
  const CompressionOption option = DefaultUncompressedOption(config);
  const std::vector<OptionMutation> first = OneEditMutations(option);
  const std::vector<OptionMutation> second = OneEditMutations(option);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].option, second[i].option) << first[i].edit;
    EXPECT_EQ(first[i].edit, second[i].edit);
    EXPECT_FALSE(first[i].edit.empty());
    // operator== compares ops only, so the flat-flag flip must be checked separately.
    EXPECT_TRUE(!(first[i].option == option) || first[i].option.flat != option.flat)
        << "identity emitted as a mutant: " << first[i].edit;
  }
}

TEST(OptionMutations, EveryEnumeratedOptionHasMutants) {
  const OptionSpace space = EnumerateOptions(TreeConfig{4, 4, true});
  ASSERT_FALSE(space.options.empty());
  for (const CompressionOption& option : space.options) {
    EXPECT_FALSE(OneEditMutations(option).empty()) << option.Describe();
  }
}

TEST(OptionMutations, CanonicalProjectsOutDeviceChoices) {
  // §4.2's 2^slots device assignments multiply into the structural space afterwards;
  // membership in the enumerated set must not depend on them.
  const OptionSpace space = EnumerateOptions(TreeConfig{4, 4, true});
  for (const CompressionOption& option : space.options) {
    EXPECT_EQ(CanonicalOption(option), CanonicalOption(option.WithDevice(Device::kCpu)))
        << option.Describe();
  }
}

TEST(OptionMutations, CanonicalIsIdempotent) {
  const OptionSpace space = EnumerateOptions(TreeConfig{8, 8, false});
  for (const CompressionOption& option : space.options) {
    const CompressionOption once = CanonicalOption(option);
    EXPECT_EQ(once, CanonicalOption(once)) << option.Describe();
  }
}

TEST(OptionMutations, CanonicalFormsStayDistinctAcrossTheSpace) {
  // The projection must not merge structurally different enumerated options — that
  // would make the completeness check vacuous for the merged pair.
  const OptionSpace space = EnumerateOptions(TreeConfig{8, 8, true});
  std::vector<CompressionOption> canon;
  canon.reserve(space.options.size());
  for (const CompressionOption& option : space.options) {
    canon.push_back(CanonicalOption(option));
  }
  for (size_t i = 0; i < canon.size(); ++i) {
    for (size_t j = i + 1; j < canon.size(); ++j) {
      EXPECT_FALSE(canon[i] == canon[j])
          << space.options[i].Describe() << " collapses onto "
          << space.options[j].Describe();
    }
  }
}

TEST(OptionMutations, MutantsEitherFailValidationOrReenterTheSpace) {
  // A miniature of the space checker's completeness pass: the tree's frontier is the
  // legality frontier, so no mutant may validate without canonicalizing back in.
  const TreeConfig config{2, 2, false};
  const OptionSpace space = EnumerateOptions(config);
  std::vector<CompressionOption> canon;
  for (const CompressionOption& option : space.options) {
    canon.push_back(CanonicalOption(option));
  }
  auto in_space = [&](const CompressionOption& option) {
    const CompressionOption c = CanonicalOption(option);
    for (const CompressionOption& member : canon) {
      if (member == c) return true;
    }
    return false;
  };
  size_t rejected = 0;
  size_t reentered = 0;
  for (const CompressionOption& option : space.options) {
    for (const OptionMutation& mutation : OneEditMutations(option)) {
      // Legality oracle: the linter, exactly as the space checker's completeness pass
      // uses it (ValidateOption is the enumerated-path sanity check, not the frontier).
      if (LintOption(config, mutation.option, 0).HasErrors()) {
        ++rejected;
      } else if (in_space(mutation.option)) {
        ++reentered;
      } else {
        ADD_FAILURE() << option.Describe() << " + " << mutation.edit
                      << " validates but is outside the enumerated space";
      }
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(reentered, 0u);  // e.g. device flips land on the same structural path
}

}  // namespace
}  // namespace espresso

#include "src/core/timeline.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

// A Figure-2 style toy: three tensors, sized so interactions are easy to reason about.
ModelProfile ToyModel(double t0 = 10e-3, double t1 = 10e-3, double t2 = 10e-3) {
  ModelProfile m;
  m.name = "toy";
  m.forward_time_s = 5e-3;
  m.optimizer_time_s = 1e-3;
  m.batch_size = 1;
  m.throughput_unit = "it/s";
  m.tensors = {
      {"T0", 4 << 20, t0},  // 16 MB each
      {"T1", 4 << 20, t1},
      {"T2", 4 << 20, t2},
  };
  return m;
}

std::unique_ptr<Compressor> Dgc() {
  return CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
}

TEST(Timeline, IterationAtLeastComputePlusConstants) {
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy fp32 = Fp32Strategy(model, cluster);
  const double t = evaluator.IterationTime(fp32);
  EXPECT_GE(t, model.SingleGpuIterationTime());
}

TEST(Timeline, IterationAtLeastCommunicationLowerBound) {
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = PcieCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy fp32 = Fp32Strategy(model, cluster);
  // Sum of every tensor's inter-phase op durations is a serial lower bound for the
  // inter link; the iteration can't beat it plus forward/optimizer.
  double inter = 0.0;
  for (size_t i = 0; i < model.tensors.size(); ++i) {
    for (const Op& op : fp32.options[i].ops) {
      if (op.task == ActionTask::kComm && op.phase == CommPhase::kInter) {
        inter += evaluator.OpDuration(op, model.tensors[i].elements);
      }
    }
  }
  EXPECT_GE(evaluator.IterationTime(fp32),
            model.forward_time_s + inter + model.optimizer_time_s - 1e-12);
}

TEST(Timeline, CompressionReducesIterationWhenCommBound) {
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = PcieCluster();  // strongly communication-bound
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy fp32 = Fp32Strategy(model, cluster);
  const Strategy compressed =
      UniformStrategy(3, InterOnlyIndivisibleOption(cluster, Device::kGpu));
  EXPECT_LT(evaluator.IterationTime(compressed), evaluator.IterationTime(fp32));
}

TEST(Timeline, GpuCompressionContendWithCompute) {
  // Figure 2(c): GPU compression kernels share the GPU stream with backward compute,
  // so the backward phase stretches; CPU compression does not stretch it.
  ModelProfile model = ToyModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);

  auto backward_end = [&](const Strategy& s) {
    const TimelineResult r = evaluator.Evaluate(s, true);
    double end = 0.0;
    for (const auto& e : r.entries) {
      if (e.kind == "compute") {
        end = std::max(end, e.end);
      }
    }
    return end;
  };
  const Strategy fp32 = Fp32Strategy(model, cluster);
  const Strategy gpu = UniformStrategy(3, InterOnlyIndivisibleOption(cluster, Device::kGpu));
  const Strategy cpu = UniformStrategy(3, InterOnlyIndivisibleOption(cluster, Device::kCpu));
  const double plain_end = backward_end(fp32);
  EXPECT_GT(backward_end(gpu), plain_end);              // GPU kernels delay compute
  EXPECT_NEAR(backward_end(cpu), plain_end, 1e-9);      // CPU path leaves compute alone
}

TEST(Timeline, ZeroCompressionCostMakesCompressionFree) {
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator real(model, cluster, *compressor);
  TimelineEvaluator free(model, cluster, *compressor, /*zero_compression_cost=*/true);
  const Strategy s = UniformStrategy(3, InterOnlyIndivisibleOption(cluster, Device::kGpu));
  EXPECT_LT(free.IterationTime(s), real.IterationTime(s));
  for (const Op& op : s.options[0].ops) {
    if (op.task != ActionTask::kComm) {
      EXPECT_EQ(free.OpDuration(op, model.tensors[0].elements), 0.0);
    }
  }
}

TEST(Timeline, EntriesCoverEveryOp) {
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy s = UniformStrategy(3, InterOnlyDivisibleOption(cluster, Device::kGpu));
  const TimelineResult r = evaluator.Evaluate(s, true);
  // 3 compute entries + 8 ops per tensor.
  EXPECT_EQ(r.entries.size(), 3u + 3u * s.options[0].ops.size());
  for (const auto& e : r.entries) {
    EXPECT_LE(e.start, e.end);
    EXPECT_LE(e.end, r.makespan + 1e-12);
  }
}

TEST(Timeline, WfbpOrderOnLinks) {
  // Tensors enter each link in backward-completion order (WFBP FIFO).
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy fp32 = Fp32Strategy(model, cluster);
  const TimelineResult r = evaluator.Evaluate(fp32, true);
  double prev_start = -1.0;
  size_t prev_tensor = 0;
  for (const auto& e : r.entries) {
    if (e.resource != "inter") {
      continue;
    }
    if (prev_start >= 0.0) {
      EXPECT_GE(e.start, prev_start);
      EXPECT_GT(e.tensor, prev_tensor);
    }
    prev_start = e.start;
    prev_tensor = e.tensor;
  }
}

TEST(Timeline, BubbleDetectionFigure9a) {
  // T0 finishes communicating long before T1's backward completes: a bubble follows
  // T0, so T0 is flagged; the tensors at the end are not.
  ModelProfile model = ToyModel(/*t0=*/1e-3, /*t1=*/100e-3, /*t2=*/1e-3);
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy fp32 = Fp32Strategy(model, cluster);
  const std::vector<bool> before = evaluator.BeforeBubble(fp32);
  ASSERT_EQ(before.size(), 3u);
  EXPECT_TRUE(before[0]);
  EXPECT_FALSE(before[2]);
}

TEST(Timeline, NoBubblesWhenCommBacklogged) {
  // On a slow network every comm queues behind the previous one: no compute-gated
  // gaps, nothing is ruled out.
  ModelProfile model = ToyModel(1e-3, 1e-3, 1e-3);
  const ClusterSpec cluster = PcieCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const std::vector<bool> before = evaluator.BeforeBubble(Fp32Strategy(model, cluster));
  for (bool b : before) {
    EXPECT_FALSE(b);
  }
}

TEST(Timeline, HostCopiesContendOnPcieOnly) {
  const ModelProfile model = ToyModel();
  const auto compressor = Dgc();
  const Strategy cpu_strategy = UniformStrategy(
      3, InterOnlyIndivisibleOption(PcieCluster(), Device::kCpu));

  TimelineEvaluator pcie(model, PcieCluster(), *compressor);
  const TimelineResult r = pcie.Evaluate(cpu_strategy, true);
  size_t host_copies = 0;
  for (const auto& e : r.entries) {
    if (e.kind == "hostcopy") {
      EXPECT_EQ(e.resource, "intra");
      ++host_copies;
    }
  }
  EXPECT_EQ(host_copies, 3u * 2u);  // one h2d per compress, one d2h per decompress

  TimelineEvaluator nvlink(model, NvlinkCluster(), *compressor);
  const Strategy nv_strategy = UniformStrategy(
      3, InterOnlyIndivisibleOption(NvlinkCluster(), Device::kCpu));
  const TimelineResult rn = nvlink.Evaluate(nv_strategy, true);
  for (const auto& e : rn.entries) {
    EXPECT_NE(e.kind, "hostcopy");
  }
}

TEST(Timeline, FlatOptionUsesSingleLinkResource) {
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  CompressionOption flat_ar;
  flat_ar.flat = true;
  Op op;
  op.task = ActionTask::kComm;
  op.phase = CommPhase::kFlat;
  op.routine = Routine::kAllreduce;
  flat_ar.ops = {op};
  const TimelineResult r = evaluator.Evaluate(UniformStrategy(3, flat_ar), true);
  for (const auto& e : r.entries) {
    if (e.kind != "compute") {
      EXPECT_EQ(e.resource, "inter");  // flat collectives bottleneck on the NIC
    }
  }
}

TEST(Timeline, DeterministicEvaluation) {
  const ModelProfile model = BertBase();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy s = HiPressStrategy(model, cluster, *compressor);
  EXPECT_EQ(evaluator.IterationTime(s), evaluator.IterationTime(s));
}

TEST(Timeline, EvalContextReuseIsByteIdentical) {
  // The selector's hot loop reuses one EvalContext across thousands of simulations;
  // results must match the context-free path exactly, for every strategy shape.
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = PcieCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  TimelineEvaluator::EvalContext ctx;
  const std::vector<CompressionOption> candidates =
      CandidateOptions(TreeConfig{cluster.machines, cluster.gpus_per_machine,
                                  compressor->SupportsCompressedAggregation()});
  for (const CompressionOption& option : candidates) {
    const Strategy s = UniformStrategy(model.tensors.size(), option);
    EXPECT_EQ(evaluator.IterationTime(s, &ctx), evaluator.IterationTime(s))
        << option.label;
    // Re-running on the warm context (engine Reset() path) stays identical.
    EXPECT_EQ(evaluator.IterationTime(s, &ctx), evaluator.IterationTime(s, &ctx))
        << option.label;
  }
}

TEST(Timeline, ScoreWithOptionMatchesSubstitutionWithoutMutation) {
  // ScoreWithOption(base, i, c) must equal F(base with options[i] = c) and must leave
  // the caller's strategy untouched — the selector relies on this to score candidates
  // concurrently against one shared base strategy.
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const std::vector<CompressionOption> candidates =
      CandidateOptions(TreeConfig{cluster.machines, cluster.gpus_per_machine,
                                  compressor->SupportsCompressedAggregation()});
  ASSERT_GE(candidates.size(), 2u);
  const Strategy base = Fp32Strategy(model, cluster);
  const Strategy before = base;
  TimelineEvaluator::EvalContext ctx;
  for (size_t i = 0; i < base.size(); ++i) {
    for (const CompressionOption& candidate : candidates) {
      Strategy substituted = base;
      substituted.options[i] = candidate;
      EXPECT_EQ(evaluator.ScoreWithOption(base, i, candidate, &ctx),
                evaluator.IterationTime(substituted))
          << "tensor " << i << " candidate " << candidate.label;
    }
  }
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.options[i], before.options[i]) << "base mutated at " << i;
  }
}

TEST(Timeline, ScoreWithOverridesMatchesMaterializedStrategy) {
  const ModelProfile model = ToyModel();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Dgc();
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const std::vector<CompressionOption> candidates =
      CandidateOptions(TreeConfig{cluster.machines, cluster.gpus_per_machine,
                                  compressor->SupportsCompressedAggregation()});
  ASSERT_GE(candidates.size(), 2u);
  const Strategy base = UniformStrategy(model.tensors.size(), candidates[0]);
  const CompressionOption moved = candidates[1].WithDevice(Device::kCpu);
  // Override tensors 0 and 2, leave 1 on the base option (null slot).
  std::vector<const CompressionOption*> overrides(base.size(), nullptr);
  overrides[0] = &moved;
  overrides[2] = &moved;
  Strategy materialized = base;
  materialized.options[0] = moved;
  materialized.options[2] = moved;
  EXPECT_EQ(evaluator.ScoreWithOverrides(base, overrides.data()),
            evaluator.IterationTime(materialized));
}

}  // namespace
}  // namespace espresso

#include "src/core/baselines.h"

#include <gtest/gtest.h>

#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/core/timeline.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

std::unique_ptr<Compressor> Make(const std::string& algo) {
  return CreateCompressor(CompressorConfig{.algorithm = algo, .ratio = 0.01});
}

TEST(Baselines, Fp32CompressesNothing) {
  const ModelProfile model = Gpt2();
  const Strategy s = Fp32Strategy(model, NvlinkCluster());
  EXPECT_EQ(s.CompressedTensorCount(), 0u);
  EXPECT_EQ(s.size(), model.tensors.size());
}

TEST(Baselines, HiTopKCommCompressesEverythingOnGpu) {
  const ModelProfile model = ResNet101();
  const auto compressor = Make("dgc");
  const Strategy s = HiTopKCommStrategy(model, NvlinkCluster(), *compressor);
  EXPECT_EQ(s.CompressedTensorCount(), model.tensors.size());
  EXPECT_EQ(s.TensorsOnDevice(Device::kCpu), 0u);
}

TEST(Baselines, BytePSCompressUsesCpuOnly) {
  const ModelProfile model = Gpt2();
  const auto compressor = Make("efsignsgd");
  const Strategy s = BytePSCompressStrategy(model, NvlinkCluster(), *compressor);
  EXPECT_EQ(s.CompressedTensorCount(), model.tensors.size());
  EXPECT_EQ(s.TensorsOnDevice(Device::kGpu), 0u);
  for (const Op& op : s.options[0].ops) {
    if (op.task != ActionTask::kComm) {
      EXPECT_TRUE(op.machine_level);  // PS-style full-tensor host compression
    }
  }
}

TEST(Baselines, HiPressIsSelective) {
  // HiPress compresses large tensors (wall-clock win) but skips tiny ones (kernel
  // launch overhead dominates).
  const ModelProfile model = BertBase();
  const auto compressor = Make("randomk");
  const Strategy s = HiPressStrategy(model, NvlinkCluster(), *compressor);
  EXPECT_GT(s.CompressedTensorCount(), 0u);
  EXPECT_LT(s.CompressedTensorCount(), model.tensors.size());
  for (size_t i = 0; i < model.tensors.size(); ++i) {
    if (model.tensors[i].elements < 1024) {
      EXPECT_FALSE(s.options[i].Compressed()) << model.tensors[i].name;
    }
  }
}

TEST(Baselines, BaselineStrategiesValidate) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("dgc");
  const TreeConfig config{cluster.machines, cluster.gpus_per_machine, false};
  for (const Strategy& s :
       {Fp32Strategy(model, cluster), HiPressStrategy(model, cluster, *compressor),
        HiTopKCommStrategy(model, cluster, *compressor),
        BytePSCompressStrategy(model, cluster, *compressor)}) {
    for (const auto& option : s.options) {
      EXPECT_TRUE(ValidateOption(config, option)) << option.Describe();
    }
  }
}

TEST(Baselines, CrippledMechanismsRun) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("efsignsgd");
  TimelineEvaluator evaluator(model, cluster, *compressor);
  for (CrippledDimension dim :
       {CrippledDimension::kAllCompression, CrippledDimension::kMyopicCompression,
        CrippledDimension::kGpuCompression, CrippledDimension::kCpuCompression,
        CrippledDimension::kInterAllgather, CrippledDimension::kInterAlltoall,
        CrippledDimension::kAlltoallAlltoall}) {
    const Strategy s = CrippledStrategy(model, cluster, *compressor, dim);
    EXPECT_EQ(s.size(), model.tensors.size());
    EXPECT_GT(evaluator.IterationTime(s), 0.0);
  }
}

TEST(Baselines, FullEspressoBeatsEveryCrippledDimension) {
  // Figure 15's claim: considering all four dimensions is always at least as good.
  const ModelProfile model = Vgg16();
  for (bool pcie : {false, true}) {
    const ClusterSpec cluster = pcie ? PcieCluster() : NvlinkCluster();
    const auto compressor = Make("efsignsgd");
    TimelineEvaluator evaluator(model, cluster, *compressor);
    EspressoSelector selector(model, cluster, *compressor);
    const double full = selector.Select().iteration_time;
    for (CrippledDimension dim :
         {CrippledDimension::kAllCompression, CrippledDimension::kMyopicCompression,
          CrippledDimension::kGpuCompression, CrippledDimension::kCpuCompression,
          CrippledDimension::kInterAllgather, CrippledDimension::kInterAlltoall,
          CrippledDimension::kAlltoallAlltoall}) {
      const Strategy s = CrippledStrategy(model, cluster, *compressor, dim);
      EXPECT_LE(full, evaluator.IterationTime(s) + 1e-9)
          << static_cast<int>(dim) << (pcie ? " pcie" : " nvlink");
    }
  }
}

TEST(Baselines, InterOnlyOptionsLeaveIntraUncompressed) {
  const ClusterSpec cluster = NvlinkCluster();
  for (const CompressionOption& option :
       {InterOnlyIndivisibleOption(cluster, Device::kGpu),
        InterOnlyDivisibleOption(cluster, Device::kGpu)}) {
    for (const Op& op : option.ops) {
      if (op.task == ActionTask::kComm && op.phase != CommPhase::kInter) {
        EXPECT_FALSE(op.compressed) << option.Describe();
      }
    }
  }
}

TEST(Baselines, AlltoallAlltoallCompressesIntraFirst) {
  const CompressionOption option = AlltoallAlltoallOption(NvlinkCluster(), Device::kGpu);
  bool intra_compressed_comm = false;
  for (const Op& op : option.ops) {
    if (op.task == ActionTask::kComm && op.phase == CommPhase::kIntraFirst && op.compressed) {
      intra_compressed_comm = true;
    }
  }
  EXPECT_TRUE(intra_compressed_comm);
}

}  // namespace
}  // namespace espresso

#include "src/core/option.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/costmodel/calibration.h"

namespace espresso {
namespace {

TEST(Option, UncompressedHasNoCompressOps) {
  CompressionOption option;
  Op comm;
  comm.task = ActionTask::kComm;
  comm.routine = Routine::kAllreduce;
  option.ops = {comm};
  EXPECT_FALSE(option.Compressed());
  EXPECT_EQ(option.CompressOpCount(), 0u);
  EXPECT_EQ(option.DeviceSlots(), 0u);
}

TEST(Option, CountsCompressAndDecompress) {
  const CompressionOption option = InterOnlyDivisibleOption(NvlinkCluster(), Device::kGpu);
  EXPECT_TRUE(option.Compressed());
  EXPECT_EQ(option.CompressOpCount(), 2u);
  EXPECT_EQ(option.DecompressOpCount(), 2u);
  EXPECT_EQ(option.DeviceSlots(), 4u);
}

TEST(Option, WithDeviceSwitchesOnlyComputeOps) {
  const CompressionOption gpu = InterOnlyIndivisibleOption(NvlinkCluster(), Device::kGpu);
  const CompressionOption cpu = gpu.WithDevice(Device::kCpu);
  EXPECT_TRUE(gpu.UsesDevice(Device::kGpu));
  EXPECT_FALSE(gpu.UsesDevice(Device::kCpu));
  EXPECT_TRUE(cpu.UsesDevice(Device::kCpu));
  EXPECT_FALSE(cpu.UsesDevice(Device::kGpu));
  // Comm ops are untouched.
  ASSERT_EQ(gpu.ops.size(), cpu.ops.size());
  for (size_t i = 0; i < gpu.ops.size(); ++i) {
    if (gpu.ops[i].task == ActionTask::kComm) {
      EXPECT_EQ(gpu.ops[i], cpu.ops[i]);
    }
  }
}

TEST(Option, EqualityIgnoresLabel) {
  CompressionOption a = InterOnlyIndivisibleOption(NvlinkCluster(), Device::kGpu);
  CompressionOption b = a;
  b.label = "renamed";
  EXPECT_TRUE(a == b);
  b.ops[0].domain_fraction = 0.5;
  EXPECT_FALSE(a == b);
}

TEST(Option, DescribeMentionsEveryOp) {
  const CompressionOption option = InterOnlyIndivisibleOption(NvlinkCluster(), Device::kGpu);
  const std::string text = option.Describe();
  EXPECT_NE(text.find("comp(GPU)"), std::string::npos);
  EXPECT_NE(text.find("allgather@inter[c]"), std::string::npos);
  EXPECT_NE(text.find("reduce-scatter@intra1"), std::string::npos);
  EXPECT_NE(text.find("decomp(GPU,x8)"), std::string::npos);
}

TEST(Option, RoutineAndPhaseNames) {
  EXPECT_STREQ(RoutineName(Routine::kAlltoall), "alltoall");
  EXPECT_STREQ(RoutineName(Routine::kReduceScatter), "reduce-scatter");
  EXPECT_STREQ(CommPhaseName(CommPhase::kIntraSecond), "intra2");
  EXPECT_STREQ(CommPhaseName(CommPhase::kFlat), "flat");
}

}  // namespace
}  // namespace espresso

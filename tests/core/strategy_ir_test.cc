// The versioned strategy IR: canonical byte-stable writing, lossless round-trips,
// strict fail-closed parsing (unknown versions, unknown/duplicate keys, out-of-range
// values, tampered digests — all refused with line-level diagnostics), and atomic file
// publication.
#include "src/core/strategy_ir.h"

#include <gtest/gtest.h>

#include <string>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/core/eval_cache.h"
#include "src/models/model_zoo.h"
#include "src/util/atomic_file.h"

namespace espresso {
namespace {

struct IrFixture {
  ModelProfile model = Lstm();
  ClusterSpec cluster = NvlinkCluster(2, 2);
  CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  std::unique_ptr<Compressor> compressor = CreateCompressor(gc);

  StrategyIR Compile() const {
    EspressoSelector selector(model, cluster, *compressor);
    const SelectionResult result = selector.Select();
    StrategyProvenance provenance;
    provenance.origin = "test";
    provenance.selector = "espresso";
    provenance.iteration = 42;
    provenance.drift = 0.125;
    return CompileStrategyIR(result.strategy, result.iteration_time, model, cluster, gc,
                             provenance);
  }
};

void ExpectIrEqual(const StrategyIR& a, const StrategyIR& b) {
  EXPECT_EQ(a.schema_version, b.schema_version);
  EXPECT_EQ(a.model_digest, b.model_digest);
  EXPECT_EQ(a.cluster_digest, b.cluster_digest);
  EXPECT_EQ(a.compression_digest, b.compression_digest);
  EXPECT_DOUBLE_EQ(a.fs_score, b.fs_score);
  EXPECT_TRUE(a.provenance == b.provenance);
  ASSERT_EQ(a.strategy.options.size(), b.strategy.options.size());
  for (size_t t = 0; t < a.strategy.options.size(); ++t) {
    EXPECT_TRUE(a.strategy.options[t] == b.strategy.options[t]) << "tensor " << t;
    EXPECT_EQ(a.strategy.options[t].flat, b.strategy.options[t].flat);
    EXPECT_EQ(a.strategy.options[t].label, b.strategy.options[t].label);
  }
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());
}

TEST(StrategyIr, WriterIsByteStable) {
  const IrFixture fixture;
  const StrategyIR ir = fixture.Compile();
  const std::string first = StrategyIRToString(ir);
  const std::string second = StrategyIRToString(ir);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first.back(), '\n');
  // Round-tripping through the parser and re-serializing reproduces the exact bytes —
  // the canonical form is a fixed point.
  const StrategyIRParseResult parsed = ParseStrategyIR(first);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(StrategyIRToString(parsed.ir), first);
}

TEST(StrategyIr, RoundTripsLosslessly) {
  const IrFixture fixture;
  const StrategyIR ir = fixture.Compile();
  const StrategyIRParseResult parsed = ParseStrategyIR(StrategyIRToString(ir));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ExpectIrEqual(ir, parsed.ir);
  EXPECT_EQ(StrategyFingerprint(ir.strategy), StrategyFingerprint(parsed.ir.strategy));
}

TEST(StrategyIr, DigestsTrackTheConfiguration) {
  const IrFixture fixture;
  // Same config -> same digest; any semantic change -> different digest.
  EXPECT_EQ(ModelDigest(fixture.model), ModelDigest(fixture.model));
  ModelProfile renamed = fixture.model;
  renamed.tensors[0].elements += 1;
  EXPECT_NE(ModelDigest(fixture.model), ModelDigest(renamed));

  EXPECT_EQ(ClusterDigest(fixture.cluster), ClusterDigest(fixture.cluster));
  ClusterSpec slower = fixture.cluster;
  slower.inter.bytes_per_second *= 0.5;
  EXPECT_NE(ClusterDigest(fixture.cluster), ClusterDigest(slower));

  EXPECT_EQ(CompressionDigest(fixture.gc), CompressionDigest(fixture.gc));
  CompressorConfig denser = fixture.gc;
  denser.ratio = 0.05;
  EXPECT_NE(CompressionDigest(fixture.gc), CompressionDigest(denser));
}

TEST(StrategyIr, ContentDigestCoversLabelsAndProvenance) {
  const IrFixture fixture;
  const StrategyIR ir = fixture.Compile();
  StrategyIR relabeled = ir;
  relabeled.strategy.options[0].label += "-renamed";
  // The eval-cache fingerprint ignores labels; the IR payload digest must not.
  EXPECT_EQ(StrategyFingerprint(ir.strategy), StrategyFingerprint(relabeled.strategy));
  EXPECT_NE(ir.ContentDigest(), relabeled.ContentDigest());

  StrategyIR reattributed = ir;
  reattributed.provenance.iteration += 1;
  EXPECT_NE(ir.ContentDigest(), reattributed.ContentDigest());
}

TEST(StrategyIr, RejectsUnknownSchemaVersion) {
  const IrFixture fixture;
  std::string text = StrategyIRToString(fixture.Compile());
  const std::string needle = "\"espresso_strategy_ir\": 1";
  const size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "\"espresso_strategy_ir\": 2");
  const StrategyIRParseResult parsed = ParseStrategyIR(text);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("schema version"), std::string::npos) << parsed.error;
}

TEST(StrategyIr, RejectsTamperedOps) {
  const IrFixture fixture;
  std::string text = StrategyIRToString(fixture.Compile());
  // Change one op's fan-in: the embedded strategy fingerprint no longer matches.
  const size_t at = text.find("\"fan_in\": 1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 11, "\"fan_in\": 3");
  const StrategyIRParseResult parsed = ParseStrategyIR(text);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("fingerprint mismatch"), std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find("line"), std::string::npos) << parsed.error;

  // --force-digest posture: digest verification off, structural checks still on.
  StrategyIRParseOptions forced;
  forced.verify_payload_digest = false;
  EXPECT_TRUE(ParseStrategyIR(text, forced).ok);
}

TEST(StrategyIr, RejectsTamperedLabels) {
  const IrFixture fixture;
  std::string text = StrategyIRToString(fixture.Compile());
  // A label edit is invisible to the fingerprint (labels are cosmetic to the eval
  // cache) but MUST trip the payload digest: the document was altered.
  const size_t at = text.find("\"label\": \"");
  ASSERT_NE(at, std::string::npos);
  text.insert(at + 10, "x");
  const StrategyIRParseResult parsed = ParseStrategyIR(text);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("payload digest mismatch"), std::string::npos)
      << parsed.error;
}

TEST(StrategyIr, RejectsStructuralDamageWithLineDiagnostics) {
  const IrFixture fixture;
  const std::string text = StrategyIRToString(fixture.Compile());
  StrategyIRParseOptions lax;  // structural strictness must not depend on digests
  lax.verify_payload_digest = false;

  struct Mutation {
    const char* needle;
    const char* replacement;
  };
  const Mutation mutations[] = {
      {"\"fs_score\"", "\"fs_scores\""},              // unknown key (missing required)
      {"\"domain\": 1,", "\"domain\": -1,"},          // out-of-range fraction
      {"\"task\": \"comm\"", "\"task\": \"warp\""},   // unknown enum token
      {"\"index\": 0", "\"index\": 7"},               // non-dense tensor index
      {"\"flat\": false", "\"flat\": \"false\""},     // wrong type
      {"\"phase\": \"intra1\"", "\"phase\": \"intra1\", \"phase\": \"intra1\""},  // dup
  };
  for (const Mutation& m : mutations) {
    std::string damaged = text;
    const size_t at = damaged.find(m.needle);
    ASSERT_NE(at, std::string::npos) << m.needle;
    damaged.replace(at, std::string(m.needle).size(), m.replacement);
    const StrategyIRParseResult parsed = ParseStrategyIR(damaged, lax);
    EXPECT_FALSE(parsed.ok) << "accepted mutation of " << m.needle;
    EXPECT_NE(parsed.error.find("line"), std::string::npos)
        << m.needle << " -> " << parsed.error;
  }

  EXPECT_FALSE(ParseStrategyIR("", lax).ok);
  EXPECT_FALSE(ParseStrategyIR("{}", lax).ok);
  EXPECT_FALSE(ParseStrategyIR("[]", lax).ok);
}

TEST(StrategyIr, FileRoundTripIsAtomic) {
  const IrFixture fixture;
  const StrategyIR ir = fixture.Compile();
  const std::string path = ::testing::TempDir() + "/strategy_ir_atomic.json";
  std::string error;
  ASSERT_TRUE(WriteStrategyIRFile(path, ir, &error)) << error;
  const StrategyIRParseResult parsed = ReadStrategyIRFile(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ExpectIrEqual(ir, parsed.ir);

  // A writer dying mid-rewrite leaves the previous complete document on disk.
  StrategyIR changed = ir;
  changed.provenance.origin = "never-published";
  internal::g_atomic_write_fail_after_bytes = 10;
  EXPECT_FALSE(WriteStrategyIRFile(path, changed, &error));
  const StrategyIRParseResult survivor = ReadStrategyIRFile(path);
  ASSERT_TRUE(survivor.ok) << survivor.error;
  EXPECT_EQ(survivor.ir.provenance.origin, "test");
  std::remove(path.c_str());
}

TEST(StrategyIr, MissingFileReportsPath) {
  const StrategyIRParseResult r = ReadStrategyIRFile("/nonexistent/strategy.json");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("/nonexistent"), std::string::npos) << r.error;
}

TEST(StrategyIr, DigestHexFormatsSixteenLowercaseDigits) {
  EXPECT_EQ(DigestHex(0), "0000000000000000");
  EXPECT_EQ(DigestHex(0xdeadbeef01234567ull), "deadbeef01234567");
}

}  // namespace
}  // namespace espresso

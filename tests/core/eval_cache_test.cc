#include "src/core/eval_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/core/decision_tree.h"
#include "src/core/strategy.h"
#include "src/util/lru_cache.h"

namespace espresso {
namespace {

std::vector<CompressionOption> Options() {
  return CandidateOptions(TreeConfig{8, 8, false});
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  EXPECT_FALSE(cache.Put(1, 10));
  EXPECT_FALSE(cache.Put(2, 20));
  ASSERT_NE(cache.Get(1), nullptr);  // 1 becomes most-recent
  EXPECT_TRUE(cache.Put(3, 30));     // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 10);
  ASSERT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(*cache.Get(3), 30);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, PutExistingKeyUpdatesWithoutEviction) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_FALSE(cache.Put(1, 11));  // update, no eviction
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(EvalCache, CountsHitsMissesEvictions) {
  EvaluationCache cache(2);
  double value = 0.0;
  EXPECT_FALSE(cache.Lookup(1, &value));
  cache.Insert(1, 1.5);
  EXPECT_TRUE(cache.Lookup(1, &value));
  EXPECT_EQ(value, 1.5);
  cache.Insert(2, 2.5);
  cache.Insert(3, 3.5);  // evicts one entry
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.capacity(), 2u);
}

TEST(Fingerprint, DistinguishesOptionsAndPositions) {
  const auto options = Options();
  ASSERT_GE(options.size(), 2u);
  // Distinct options at the same index get distinct keys; the same option at
  // different indices gets distinct keys (position matters).
  EXPECT_NE(OptionFingerprint(options[0]), OptionFingerprint(options[1]));
  EXPECT_NE(MixIndexedOption(0, options[0]), MixIndexedOption(1, options[0]));
  // Identical content hashes identically regardless of the label.
  CompressionOption relabeled = options[1];
  relabeled.label = "renamed";
  EXPECT_EQ(OptionFingerprint(relabeled), OptionFingerprint(options[1]));
}

TEST(Fingerprint, StrategyFingerprintIsOrderSensitive) {
  const auto options = Options();
  ASSERT_GE(options.size(), 2u);
  Strategy a = UniformStrategy(2, options[0]);
  a.options[1] = options[1];
  Strategy b = UniformStrategy(2, options[1]);
  b.options[1] = options[0];
  EXPECT_NE(StrategyFingerprint(a), StrategyFingerprint(b));
  EXPECT_EQ(StrategyFingerprint(a), StrategyFingerprint(a));
}

TEST(StrategyHasher, IncrementalMatchesFullRecompute) {
  const auto options = Options();
  ASSERT_GE(options.size(), 3u);
  Strategy strategy = UniformStrategy(5, options[0]);
  StrategyHasher hasher;
  hasher.Reset(strategy);
  EXPECT_EQ(hasher.Key(), StrategyFingerprint(strategy));

  // KeyWith previews a single substitution without committing it.
  Strategy substituted = strategy;
  substituted.options[3] = options[2];
  EXPECT_EQ(hasher.KeyWith(3, options[2]), StrategyFingerprint(substituted));
  EXPECT_EQ(hasher.Key(), StrategyFingerprint(strategy));  // hasher unchanged

  // Set commits; a chain of Sets tracks the full recompute exactly.
  hasher.Set(3, options[2]);
  strategy.options[3] = options[2];
  hasher.Set(0, options[1]);
  strategy.options[0] = options[1];
  EXPECT_EQ(hasher.Key(), StrategyFingerprint(strategy));
}

TEST(EvalCache, ConcurrentLookupInsertIsSafe) {
  // Exercised under TSan in CI: hammer one cache from several threads.
  EvaluationCache cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      double value = 0.0;
      for (uint64_t i = 0; i < 2000; ++i) {
        const uint64_t key = (i + static_cast<uint64_t>(t) * 7) % 128;
        if (!cache.Lookup(key, &value)) {
          cache.Insert(key, static_cast<double>(key) * 0.5);
        } else {
          EXPECT_EQ(value, static_cast<double>(key) * 0.5);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const EvalCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace espresso

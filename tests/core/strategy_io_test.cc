#include "src/core/strategy_io.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

void ExpectStrategiesEqual(const Strategy& a, const Strategy& b) {
  ASSERT_EQ(a.options.size(), b.options.size());
  for (size_t t = 0; t < a.options.size(); ++t) {
    EXPECT_TRUE(a.options[t] == b.options[t]) << "tensor " << t;
    EXPECT_EQ(a.options[t].flat, b.options[t].flat);
    EXPECT_EQ(a.options[t].label, b.options[t].label);
  }
}

TEST(StrategyIo, RoundTripsBaselineStrategies) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = CreateCompressor(CompressorConfig{.algorithm = "dgc"});
  for (const Strategy& strategy :
       {Fp32Strategy(model, cluster), HiPressStrategy(model, cluster, *compressor),
        BytePSCompressStrategy(model, cluster, *compressor)}) {
    const StrategyParseResult parsed = StrategyFromString(StrategyToString(strategy));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ExpectStrategiesEqual(strategy, parsed.strategy);
  }
}

TEST(StrategyIo, RoundTripsSelectedStrategy) {
  // The actual Figure-6 hand-off: select offline, serialize, load, and verify the
  // timeline engine prices both identically.
  const ModelProfile model = Vgg16();
  const ClusterSpec cluster = PcieCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.01});
  EspressoSelector selector(model, cluster, *compressor);
  const Strategy selected = selector.Select().strategy;

  const StrategyParseResult parsed = StrategyFromString(StrategyToString(selected));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ExpectStrategiesEqual(selected, parsed.strategy);
  EXPECT_EQ(selector.evaluator().IterationTime(selected),
            selector.evaluator().IterationTime(parsed.strategy));
}

TEST(StrategyIo, RoundTripsEveryEnumeratedOption) {
  const TreeConfig config{4, 4, true};
  for (const CompressionOption& option : EnumerateOptions(config).options) {
    Strategy strategy;
    strategy.options = {option};
    const StrategyParseResult parsed = StrategyFromString(StrategyToString(strategy));
    ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << option.Describe();
    EXPECT_TRUE(parsed.strategy.options[0] == option) << option.Describe();
  }
}

TEST(StrategyIo, FileRoundTrip) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const Strategy strategy = Fp32Strategy(model, cluster);
  const std::string path = ::testing::TempDir() + "/strategy.esp";
  ASSERT_TRUE(WriteStrategyFile(path, strategy));
  const StrategyParseResult parsed = ReadStrategyFile(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ExpectStrategiesEqual(strategy, parsed.strategy);
}

TEST(StrategyIo, RejectsMalformedInput) {
  EXPECT_FALSE(StrategyFromString("").ok);
  EXPECT_FALSE(StrategyFromString("tensors = 1\n").ok);  // missing section
  EXPECT_FALSE(StrategyFromString("tensors = 1\n[tensor 0]\nflat = false\n").ok);  // no ops
  EXPECT_FALSE(
      StrategyFromString("tensors = 1\n[tensor 0]\nop = comm warp flat domain=1 "
                         "payload=1 fan=1 raw\n")
          .ok);  // bad routine
  EXPECT_FALSE(
      StrategyFromString("tensors = 1\n[tensor 0]\nop = comm allreduce flat domain=x "
                         "payload=1 fan=1 raw\n")
          .ok);  // bad number
  const StrategyParseResult r = StrategyFromString("tensors = 2\n[tensor 0]\n");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(StrategyIo, MissingFileReportsPath) {
  const StrategyParseResult r = ReadStrategyFile("/nonexistent/strategy.esp");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("/nonexistent"), std::string::npos);
}

}  // namespace
}  // namespace espresso

#include "src/core/strategy.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/costmodel/calibration.h"

namespace espresso {
namespace {

TEST(Strategy, UniformStrategy) {
  const CompressionOption option = DefaultUncompressedOption(TreeConfig{8, 8, false});
  const Strategy s = UniformStrategy(5, option);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.CompressedTensorCount(), 0u);
}

TEST(Strategy, CountsCompressedAndDevices) {
  const ClusterSpec cluster = NvlinkCluster();
  Strategy s = UniformStrategy(4, DefaultUncompressedOption(TreeConfig{8, 8, false}));
  s.options[1] = InterOnlyIndivisibleOption(cluster, Device::kGpu);
  s.options[2] = InterOnlyIndivisibleOption(cluster, Device::kCpu);
  EXPECT_EQ(s.CompressedTensorCount(), 2u);
  EXPECT_EQ(s.TensorsOnDevice(Device::kGpu), 1u);
  EXPECT_EQ(s.TensorsOnDevice(Device::kCpu), 1u);
}

TEST(Strategy, SummaryMentionsCounts) {
  const ClusterSpec cluster = NvlinkCluster();
  Strategy s = UniformStrategy(3, InterOnlyIndivisibleOption(cluster, Device::kGpu));
  const std::string summary = s.Summary();
  EXPECT_NE(summary.find("3/3"), std::string::npos);
}

}  // namespace
}  // namespace espresso

#include "src/core/decision_tree.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

namespace espresso {
namespace {

TEST(DecisionTree, EveryEnumeratedPathValidates) {
  for (bool agg : {false, true}) {
    const TreeConfig config{8, 8, agg};
    const OptionSpace space = EnumerateOptions(config);
    EXPECT_GT(space.options.size(), 50u);
    for (const auto& option : space.options) {
      EXPECT_TRUE(ValidateOption(config, option)) << option.Describe();
    }
  }
}

TEST(DecisionTree, PathsAreUnique) {
  const TreeConfig config{8, 8, true};
  const OptionSpace space = EnumerateOptions(config);
  for (size_t i = 0; i < space.options.size(); ++i) {
    for (size_t j = i + 1; j < space.options.size(); ++j) {
      EXPECT_FALSE(space.options[i] == space.options[j])
          << i << " vs " << j << ": " << space.options[i].Describe();
    }
  }
}

TEST(DecisionTree, CompressedAggregationEnlargesTheTree) {
  const TreeConfig without{8, 8, false};
  const TreeConfig with{8, 8, true};
  EXPECT_GT(EnumerateOptions(with).options.size(),
            EnumerateOptions(without).options.size());
}

TEST(DecisionTree, DeviceChoicesGrowTheSpaceToPaperScale) {
  // §4.4.1 quotes |C| = 4341 for the full tree; our structural tree times the 2^slots
  // device assignments lands in the same order of magnitude.
  const TreeConfig config{8, 8, false};
  const OptionSpace space = EnumerateOptions(config);
  const size_t total = space.TotalWithDeviceChoices();
  EXPECT_GT(total, 1000u);
  EXPECT_LT(total, 50000u);
  EXPECT_GT(total, space.options.size());
}

TEST(DecisionTree, TotalWithDeviceChoicesSaturatesInsteadOfWrapping) {
  // An option with >= 64 device slots would shift past the word size; the count must
  // saturate at SIZE_MAX rather than wrap to a small number.
  OptionSpace space;
  CompressionOption huge;
  for (int i = 0; i < 35; ++i) {
    Op compress;
    compress.task = ActionTask::kCompress;
    Op decompress;
    decompress.task = ActionTask::kDecompress;
    huge.ops.push_back(compress);
    huge.ops.push_back(decompress);
  }
  ASSERT_GE(huge.DeviceSlots(), 64u);
  space.options.push_back(huge);
  EXPECT_EQ(space.TotalWithDeviceChoices(), SIZE_MAX);

  // Saturation also survives accumulating further options on top.
  CompressionOption small;
  Op compress;
  compress.task = ActionTask::kCompress;
  small.ops.push_back(compress);
  space.options.push_back(small);
  EXPECT_EQ(space.TotalWithDeviceChoices(), SIZE_MAX);
}

TEST(DecisionTree, SingleMachineTreeIsFlatOnly) {
  const TreeConfig config{1, 8, false};
  EXPECT_FALSE(config.Hierarchical());
  const OptionSpace space = EnumerateOptions(config);
  for (const auto& option : space.options) {
    EXPECT_TRUE(option.flat) << option.Describe();
  }
}

TEST(DecisionTree, HierarchicalTreeContainsBothKinds) {
  const OptionSpace space = EnumerateOptions(TreeConfig{4, 4, false});
  bool has_flat = false, has_hier = false;
  for (const auto& option : space.options) {
    (option.flat ? has_flat : has_hier) = true;
  }
  EXPECT_TRUE(has_flat);
  EXPECT_TRUE(has_hier);
}

TEST(DecisionTree, ContainsUncompressedSchemeChoices) {
  // Dimension 1's "no" branch still offers scheme choices (Dimension 3).
  const OptionSpace space = EnumerateOptions(TreeConfig{8, 8, false});
  size_t uncompressed = 0;
  for (const auto& option : space.options) {
    if (!option.Compressed()) {
      ++uncompressed;
    }
  }
  EXPECT_GE(uncompressed, 5u);
}

TEST(DecisionTree, PairingRuleHolds) {
  // Rule 3: within each (phase, divisible scheme), sharding first steps pair with
  // allgather-type second steps and rooted first steps with broadcast-type.
  const OptionSpace space = EnumerateOptions(TreeConfig{8, 8, true});
  for (const auto& option : space.options) {
    // Track the first comm op per phase that shards (reduce-scatter/alltoall) or
    // roots (reduce/gather), then check the next comm op in the same phase.
    for (size_t i = 0; i < option.ops.size(); ++i) {
      const Op& op = option.ops[i];
      if (op.task != ActionTask::kComm) {
        continue;
      }
      const bool shards =
          op.routine == Routine::kReduceScatter || op.routine == Routine::kAlltoall;
      const bool roots = op.routine == Routine::kReduce || op.routine == Routine::kGather;
      if (!shards && !roots) {
        continue;
      }
      for (size_t j = i + 1; j < option.ops.size(); ++j) {
        const Op& next = option.ops[j];
        if (next.task != ActionTask::kComm || next.phase != op.phase) {
          continue;
        }
        if (shards) {
          EXPECT_EQ(next.routine, Routine::kAllgather) << option.Describe();
        } else {
          EXPECT_EQ(next.routine, Routine::kBroadcast) << option.Describe();
        }
        break;
      }
    }
  }
}

TEST(DecisionTree, DefaultUncompressedOptionShape) {
  const CompressionOption hier = DefaultUncompressedOption(TreeConfig{8, 8, false});
  EXPECT_FALSE(hier.flat);
  EXPECT_FALSE(hier.Compressed());
  ASSERT_EQ(hier.ops.size(), 3u);
  EXPECT_EQ(hier.ops[0].routine, Routine::kReduceScatter);
  EXPECT_EQ(hier.ops[1].routine, Routine::kAllreduce);
  EXPECT_EQ(hier.ops[2].routine, Routine::kAllgather);

  const CompressionOption flat = DefaultUncompressedOption(TreeConfig{1, 8, false});
  EXPECT_TRUE(flat.flat);
  ASSERT_EQ(flat.ops.size(), 1u);
  EXPECT_EQ(flat.ops[0].routine, Routine::kAllreduce);
}

TEST(DecisionTree, CandidatesValidateAndCoverDimensions) {
  for (bool agg : {false, true}) {
    const TreeConfig config{8, 8, agg};
    const auto candidates = CandidateOptions(config);
    EXPECT_GE(candidates.size(), 7u);
    bool has_uncompressed = false, has_flat_compressed = false, has_inter_only = false,
         has_intra_and_inter = false;
    for (const auto& c : candidates) {
      EXPECT_TRUE(ValidateOption(config, c)) << c.Describe();
      if (!c.Compressed()) {
        has_uncompressed = true;
      } else if (c.flat) {
        has_flat_compressed = true;
      } else {
        bool intra_comp = false;
        for (const Op& op : c.ops) {
          if (op.task == ActionTask::kCompress && op.phase == CommPhase::kIntraFirst) {
            intra_comp = true;
          }
        }
        (intra_comp ? has_intra_and_inter : has_inter_only) = true;
      }
    }
    EXPECT_TRUE(has_uncompressed);
    EXPECT_TRUE(has_flat_compressed);
    EXPECT_TRUE(has_inter_only);
    EXPECT_TRUE(has_intra_and_inter);
  }
}

TEST(DecisionTree, MaxCompressOpsConstraintPrunes) {
  // §4.2.2: users can limit compression operations per tensor to bound accuracy loss.
  const TreeConfig unconstrained{8, 8, false, 0};
  const TreeConfig limited{8, 8, false, 1};
  const OptionSpace full = EnumerateOptions(unconstrained);
  const OptionSpace pruned = EnumerateOptions(limited);
  EXPECT_LT(pruned.options.size(), full.options.size());
  for (const auto& option : pruned.options) {
    EXPECT_LE(option.CompressOpCount(), 1u) << option.Describe();
  }
  // Uncompressed paths and single-compression paths survive.
  bool has_uncompressed = false, has_single = false;
  for (const auto& option : pruned.options) {
    if (!option.Compressed()) {
      has_uncompressed = true;
    } else if (option.CompressOpCount() == 1) {
      has_single = true;
    }
  }
  EXPECT_TRUE(has_uncompressed);
  EXPECT_TRUE(has_single);

  for (const auto& option : CandidateOptions(limited)) {
    EXPECT_LE(option.CompressOpCount(), 1u) << option.Describe();
  }
}

TEST(DecisionTree, ValidatorRejectsBrokenPaths) {
  const TreeConfig config{8, 8, false};
  // Double compression.
  CompressionOption bad;
  bad.flat = true;
  Op comp;
  comp.task = ActionTask::kCompress;
  comp.phase = CommPhase::kFlat;
  Op comm;
  comm.task = ActionTask::kComm;
  comm.phase = CommPhase::kFlat;
  comm.routine = Routine::kAllgather;
  comm.compressed = true;
  Op decomp;
  decomp.task = ActionTask::kDecompress;
  decomp.phase = CommPhase::kFlat;
  bad.ops = {comp, comp, comm, decomp};
  EXPECT_FALSE(ValidateOption(config, bad));

  // Compressed payload on an allreduce.
  CompressionOption bad2;
  bad2.flat = true;
  Op ar = comm;
  ar.routine = Routine::kAllreduce;
  bad2.ops = {comp, ar, decomp};
  EXPECT_FALSE(ValidateOption(config, bad2));

  // Ends compressed (no final decompression).
  CompressionOption bad3;
  bad3.flat = true;
  bad3.ops = {comp, comm};
  EXPECT_FALSE(ValidateOption(config, bad3));

  // Empty option / no communication.
  CompressionOption bad4;
  EXPECT_FALSE(ValidateOption(config, bad4));

  // Phase order violated (inter before intra-first).
  CompressionOption bad5;
  Op inter_op;
  inter_op.task = ActionTask::kComm;
  inter_op.phase = CommPhase::kInter;
  inter_op.routine = Routine::kAllreduce;
  Op intra_op;
  intra_op.task = ActionTask::kComm;
  intra_op.phase = CommPhase::kIntraFirst;
  intra_op.routine = Routine::kReduceScatter;
  bad5.ops = {inter_op, intra_op};
  EXPECT_FALSE(ValidateOption(config, bad5));
}

}  // namespace
}  // namespace espresso

// Determinism contract of the accelerated selector: for every combination of cluster,
// compressor, and selector mode, the parallel and/or memoized selector must choose a
// strategy bit-identical to the serial, uncached one (ISSUE 3 acceptance criterion).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/espresso.h"
#include "src/core/eval_cache.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

std::unique_ptr<Compressor> Make(const std::string& algo) {
  return CreateCompressor(CompressorConfig{.algorithm = algo, .ratio = 0.01});
}

struct Mode {
  const char* name;
  bool force_cpu;
  bool force_compress_all;
  bool myopic;
};

constexpr Mode kModes[] = {
    {"default", false, false, false},
    {"force_cpu", true, false, false},
    {"force_compress_all", false, true, false},
    {"myopic", false, false, true},
};

SelectionResult RunOnce(const ModelProfile& model, const ClusterSpec& cluster,
                        const Compressor& compressor, const Mode& mode, size_t threads,
                        size_t cache_capacity) {
  SelectorOptions options;
  options.force_cpu = mode.force_cpu;
  options.force_compress_all = mode.force_compress_all;
  options.myopic = mode.myopic;
  options.threads = threads;
  options.cache_capacity = cache_capacity;
  EspressoSelector selector(model, cluster, compressor, options);
  return selector.Select();
}

// The full matrix from the issue: {Nvlink, Pcie} x {dgc, efsignsgd} x the four selector
// modes, each run serial/uncached, serial/cached, parallel/uncached, parallel/cached.
// Every accelerated configuration must reproduce the serial strategy exactly.
TEST(EspressoParallel, DeterminismMatrix) {
  const ModelProfile model = Vgg16();
  const struct {
    const char* name;
    ClusterSpec cluster;
  } clusters[] = {{"nvlink", NvlinkCluster()}, {"pcie", PcieCluster()}};
  for (const auto& [cluster_name, cluster] : clusters) {
    for (const char* algo : {"dgc", "efsignsgd"}) {
      const auto compressor = Make(algo);
      for (const Mode& mode : kModes) {
        SCOPED_TRACE(std::string(cluster_name) + "/" + algo + "/" + mode.name);
        const SelectionResult serial =
            RunOnce(model, cluster, *compressor, mode, /*threads=*/0,
                    /*cache_capacity=*/0);
        const uint64_t want = StrategyFingerprint(serial.strategy);
        const struct {
          size_t threads;
          size_t cache;
        } accelerated[] = {{0, 1 << 16}, {4, 0}, {4, 1 << 16}};
        for (const auto& [threads, cache] : accelerated) {
          const SelectionResult got =
              RunOnce(model, cluster, *compressor, mode, threads, cache);
          EXPECT_EQ(StrategyFingerprint(got.strategy), want)
              << "threads=" << threads << " cache=" << cache;
          EXPECT_DOUBLE_EQ(got.iteration_time, serial.iteration_time)
              << "threads=" << threads << " cache=" << cache;
          ASSERT_EQ(got.strategy.size(), serial.strategy.size());
          for (size_t i = 0; i < serial.strategy.size(); ++i) {
            EXPECT_EQ(got.strategy.options[i], serial.strategy.options[i])
                << "tensor " << i;
          }
        }
      }
    }
  }
}

// One large-model spot check: GPT-2 with every acceleration knob on matches serial.
TEST(EspressoParallel, Gpt2AcceleratedMatchesSerial) {
  const ModelProfile model = Gpt2();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("dgc");
  const SelectionResult serial = RunOnce(model, cluster, *compressor, kModes[0], 0, 0);
  const SelectionResult accel =
      RunOnce(model, cluster, *compressor, kModes[0], 4, SelectorOptions{}.cache_capacity);
  EXPECT_EQ(StrategyFingerprint(accel.strategy), StrategyFingerprint(serial.strategy));
  EXPECT_DOUBLE_EQ(accel.iteration_time, serial.iteration_time);
  // Logical evaluation counts are identical (the cache changes simulations, never
  // queries); the cached run simulates strictly fewer timelines.
  EXPECT_EQ(accel.telemetry.evaluations, serial.telemetry.evaluations);
  EXPECT_LT(accel.telemetry.simulations, serial.telemetry.simulations);
  EXPECT_GT(accel.telemetry.cache_hits, 0u);
}

// Re-selecting on the same selector reuses the warm cache and still reproduces the
// cold result exactly — this is the steady-state re-decision path bench_selector
// reports as warm_speedup.
TEST(EspressoParallel, WarmReselectionIsStable) {
  const ModelProfile model = Vgg16();
  const ClusterSpec cluster = PcieCluster();
  const auto compressor = Make("efsignsgd");
  EspressoSelector selector(model, cluster, *compressor);
  const SelectionResult cold = selector.Select();
  const SelectionResult warm = selector.Select();
  EXPECT_EQ(StrategyFingerprint(warm.strategy), StrategyFingerprint(cold.strategy));
  EXPECT_DOUBLE_EQ(warm.iteration_time, cold.iteration_time);
  EXPECT_LT(warm.telemetry.simulations, cold.telemetry.simulations);
  ASSERT_NE(selector.cache(), nullptr);
  EXPECT_GT(selector.cache()->stats().hits, 0u);
}

// Telemetry invariants: stage walls partition the total, the atomic evaluation counter
// matches the result's evaluation count, and simulations never exceed evaluations.
TEST(EspressoParallel, TelemetryIsConsistent) {
  const ModelProfile model = Vgg16();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("dgc");
  for (const size_t cache : {size_t{0}, SelectorOptions{}.cache_capacity}) {
    SelectorOptions options;
    options.cache_capacity = cache;
    EspressoSelector selector(model, cluster, *compressor, options);
    const SelectionResult result = selector.Select();
    const SelectorTelemetry& t = result.telemetry;
    EXPECT_GT(t.evaluations, 0u);
    EXPECT_EQ(t.evaluations, result.timeline_evaluations);
    EXPECT_LE(t.simulations, t.evaluations);
    EXPECT_GE(t.total_seconds, 0.0);
    const double stages = t.algorithm1_seconds + t.refine_seconds +
                          t.trajectory_seconds + t.offload_seconds;
    EXPECT_LE(stages, t.total_seconds + 1e-6);
    if (cache == 0) {
      EXPECT_EQ(t.cache_hits, 0u);
      EXPECT_EQ(t.cache_misses, 0u);
      // Uncached, non-myopic: every logical query simulates a timeline.
      EXPECT_EQ(t.simulations, t.evaluations);
    } else {
      // Cache hits are exactly the simulations saved. (Bubble analysis queries bypass
      // the cache — they run a simulation without a cache lookup — so hits + misses
      // can undercount evaluations, but the saved-work identity always holds.)
      EXPECT_EQ(t.evaluations - t.simulations, t.cache_hits);
      EXPECT_LE(t.cache_hits + t.cache_misses, t.evaluations);
      EXPECT_GT(t.cache_hits, 0u);
    }
  }
}

}  // namespace
}  // namespace espresso

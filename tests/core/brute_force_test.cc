#include "src/core/brute_force.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

ModelProfile ToyModel(size_t tensors) {
  ModelProfile m;
  m.name = "toy";
  m.forward_time_s = 5e-3;
  m.optimizer_time_s = 1e-3;
  m.batch_size = 1;
  m.throughput_unit = "it/s";
  for (size_t i = 0; i < tensors; ++i) {
    m.tensors.push_back({"T" + std::to_string(i), (1u + i % 3) << 20, 8e-3});
  }
  return m;
}

TEST(BruteForce, FindsExactMinimumOnToyModel) {
  const ModelProfile model = ToyModel(3);
  const ClusterSpec cluster = PcieCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const TreeConfig config{cluster.machines, cluster.gpus_per_machine, false};
  const auto candidates = CandidateOptions(config);

  const auto result = BruteForceStrategy(evaluator, candidates, 1u << 20);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->evaluations,
            static_cast<size_t>(std::pow(candidates.size(), 3)));
  // No strategy over the same candidates can beat it: spot-check uniform strategies.
  for (const auto& candidate : candidates) {
    EXPECT_GE(evaluator.IterationTime(UniformStrategy(3, candidate)),
              result->iteration_time - 1e-12);
  }
}

TEST(BruteForce, RefusesOversizedSpaces) {
  const ModelProfile model = ToyModel(10);
  const ClusterSpec cluster = PcieCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const auto candidates = CandidateOptions(TreeConfig{8, 8, false});
  EXPECT_FALSE(BruteForceStrategy(evaluator, candidates, 1000).has_value());
}

TEST(BruteForce, OffloadSearchMatchesAlgorithm2OnSmallInstances) {
  // Theorem 1's claim: Algorithm 2's restricted (Lemma 1) search is as good as trying
  // all 2^k offload subsets.
  const ModelProfile model = ToyModel(6);
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  EspressoSelector selector(model, cluster, *compressor);
  const Strategy gpu = UniformStrategy(
      model.tensors.size(), InterOnlyIndivisibleOption(cluster, Device::kGpu));
  const Strategy offloaded = selector.OffloadToCpu(gpu);
  const auto brute = BruteForceOffload(selector.evaluator(), gpu, 1u << 20);
  ASSERT_TRUE(brute.has_value());
  EXPECT_NEAR(selector.evaluator().IterationTime(offloaded), brute->iteration_time, 1e-9);
}

TEST(BruteForce, OffloadRefusesHugeSets) {
  const ModelProfile model = BertBase();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.01});
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy all_gpu = UniformStrategy(
      model.tensors.size(), InterOnlyIndivisibleOption(cluster, Device::kGpu));
  EXPECT_FALSE(BruteForceOffload(evaluator, all_gpu, 1u << 20).has_value());
}

TEST(EstimateBruteForce, CapsAtProvidedCeiling) {
  // ResNet101-scale spaces overflow any cap — Table 5's ">24h" entries.
  const double cap = 24.0 * 3600.0;
  EXPECT_EQ(EstimateBruteForceSeconds(1e-4, 10, 314, cap), cap);
  EXPECT_EQ(EstimateBruteForceSeconds(1e-4, 10, 10, cap), cap);  // 10^10 evals * 1e-4
}

TEST(EstimateBruteForce, SmallSpacesComputeExactly) {
  EXPECT_NEAR(EstimateBruteForceSeconds(1e-3, 4, 3, 1e9), 64 * 1e-3, 1e-9);
}

}  // namespace
}  // namespace espresso

#include "src/core/upper_bound.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/core/timeline.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

std::unique_ptr<Compressor> Make(const char* algo) {
  return CreateCompressor(CompressorConfig{.algorithm = algo, .ratio = 0.01});
}

TEST(UpperBound, DominatesEveryScheme) {
  // The definition (§5.1): compression is free and contention-less, so no real
  // strategy — baseline or Espresso — may beat the bound.
  for (const char* model_name : {"lstm", "gpt2", "vgg16"}) {
    for (bool pcie : {false, true}) {
      const ModelProfile model = GetModel(model_name);
      const ClusterSpec cluster = pcie ? PcieCluster() : NvlinkCluster();
      const auto compressor = Make("dgc");
      const UpperBoundResult bound = ComputeUpperBound(model, cluster, *compressor);
      TimelineEvaluator evaluator(model, cluster, *compressor);

      EspressoSelector selector(model, cluster, *compressor);
      EXPECT_LE(bound.iteration_time, selector.Select().iteration_time + 1e-9)
          << model_name << (pcie ? " pcie" : " nvlink");
      for (const Strategy& s :
           {Fp32Strategy(model, cluster), HiPressStrategy(model, cluster, *compressor),
            HiTopKCommStrategy(model, cluster, *compressor)}) {
        EXPECT_LE(bound.iteration_time, evaluator.IterationTime(s) + 1e-9);
      }
    }
  }
}

TEST(UpperBound, AtLeastComputeBound) {
  // Even free compression cannot beat forward + backward + optimizer.
  const ModelProfile model = Gpt2();
  const auto compressor = Make("efsignsgd");
  const UpperBoundResult bound = ComputeUpperBound(model, NvlinkCluster(), *compressor);
  EXPECT_GE(bound.iteration_time, model.SingleGpuIterationTime() - 1e-9);
}

TEST(UpperBound, StrategyPricesToTheReportedTime) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = PcieCluster();
  const auto compressor = Make("dgc");
  const UpperBoundResult bound = ComputeUpperBound(model, cluster, *compressor);
  TimelineEvaluator zero_cost(model, cluster, *compressor, /*zero_compression_cost=*/true);
  EXPECT_NEAR(zero_cost.IterationTime(bound.strategy), bound.iteration_time, 1e-12);
}

TEST(UpperBound, TighterOnSlowerNetworks) {
  // Free compression buys more on the bandwidth-starved testbed, so the bound sits
  // further below FP32 there.
  const ModelProfile model = Vgg16();
  const auto compressor = Make("randomk");
  auto gain = [&](const ClusterSpec& cluster) {
    TimelineEvaluator evaluator(model, cluster, *compressor);
    const double fp32 = evaluator.IterationTime(Fp32Strategy(model, cluster));
    return fp32 / ComputeUpperBound(model, cluster, *compressor).iteration_time;
  };
  EXPECT_GT(gain(PcieCluster()), gain(NvlinkCluster()));
}

}  // namespace
}  // namespace espresso

#include "src/core/espresso.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/baselines.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

std::unique_ptr<Compressor> Make(const std::string& algo) {
  return CreateCompressor(CompressorConfig{.algorithm = algo, .ratio = 0.01});
}

TEST(Espresso, NeverWorseThanFp32) {
  // GetBestOption always keeps the current (initially uncompressed) assignment as a
  // candidate, so the selected strategy can only improve on FP32.
  for (const char* algo : {"dgc", "randomk", "efsignsgd"}) {
    const ModelProfile model = Gpt2();
    const ClusterSpec cluster = NvlinkCluster();
    const auto compressor = Make(algo);
    EspressoSelector selector(model, cluster, *compressor);
    const SelectionResult result = selector.Select();
    const double fp32 =
        selector.evaluator().IterationTime(Fp32Strategy(model, cluster));
    EXPECT_LE(result.iteration_time, fp32 + 1e-12) << algo;
  }
}

TEST(Espresso, OffloadNeverHurts) {
  const ModelProfile model = BertBase();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("randomk");
  EspressoSelector selector(model, cluster, *compressor);
  const Strategy gpu_only = selector.SelectGpuCompression();
  const Strategy offloaded = selector.OffloadToCpu(gpu_only);
  EXPECT_LE(selector.evaluator().IterationTime(offloaded),
            selector.evaluator().IterationTime(gpu_only) + 1e-12);
}

TEST(Espresso, OffloadOnlyChangesDevices) {
  const ModelProfile model = Gpt2();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("efsignsgd");
  EspressoSelector selector(model, cluster, *compressor);
  const Strategy gpu_only = selector.SelectGpuCompression();
  const Strategy offloaded = selector.OffloadToCpu(gpu_only);
  ASSERT_EQ(offloaded.size(), gpu_only.size());
  for (size_t i = 0; i < gpu_only.size(); ++i) {
    EXPECT_EQ(offloaded.options[i].ops.size(), gpu_only.options[i].ops.size());
    for (size_t k = 0; k < gpu_only.options[i].ops.size(); ++k) {
      const Op& a = gpu_only.options[i].ops[k];
      const Op& b = offloaded.options[i].ops[k];
      EXPECT_EQ(a.task, b.task);
      EXPECT_EQ(a.routine, b.routine);
      EXPECT_EQ(a.phase, b.phase);
      EXPECT_EQ(a.domain_fraction, b.domain_fraction);
    }
  }
}

TEST(Espresso, OffloadRespectsLemma1PrefixOrder) {
  // Within each (size, option) group, the offloaded tensors must be exactly the ones
  // farthest from the output layer (smallest backward index) — a prefix in backward
  // order (Lemma 1).
  const ModelProfile model = BertBase();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("randomk");
  EspressoSelector selector(model, cluster, *compressor);
  const Strategy gpu_only = selector.SelectGpuCompression();
  const Strategy offloaded = selector.OffloadToCpu(gpu_only);

  std::map<std::pair<size_t, std::string>, std::vector<size_t>> groups;
  for (size_t i = 0; i < gpu_only.size(); ++i) {
    if (gpu_only.options[i].Compressed() && gpu_only.options[i].UsesDevice(Device::kGpu)) {
      groups[{model.tensors[i].elements, gpu_only.options[i].label}].push_back(i);
    }
  }
  for (const auto& [key, members] : groups) {
    bool seen_gpu = false;
    for (size_t idx : members) {  // ascending backward index = descending distance
      const bool on_cpu = offloaded.options[idx].UsesDevice(Device::kCpu);
      if (!on_cpu) {
        seen_gpu = true;
      } else {
        EXPECT_FALSE(seen_gpu) << "non-prefix offload at tensor " << idx;
      }
    }
  }
}

TEST(Espresso, SelectionIsDeterministic) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = PcieCluster();
  const auto compressor = Make("efsignsgd");
  EspressoSelector a(model, cluster, *compressor);
  EspressoSelector b(model, cluster, *compressor);
  EXPECT_EQ(a.Select().iteration_time, b.Select().iteration_time);
}

TEST(Espresso, ForceCompressAllCompressesEverything) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("dgc");
  SelectorOptions options;
  options.force_compress_all = true;
  options.enable_cpu_offload = false;
  EspressoSelector selector(model, cluster, *compressor, options);
  const SelectionResult result = selector.Select();
  EXPECT_EQ(result.strategy.CompressedTensorCount(), model.tensors.size());
}

TEST(Espresso, ForceCpuPutsEverythingOnCpu) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("efsignsgd");
  SelectorOptions options;
  options.force_cpu = true;
  EspressoSelector selector(model, cluster, *compressor, options);
  const SelectionResult result = selector.Select();
  EXPECT_EQ(result.strategy.TensorsOnDevice(Device::kGpu), 0u);
}

TEST(Espresso, MyopicNoWorseThanFp32ButNoBetterThanFull) {
  const ModelProfile model = Vgg16();
  const ClusterSpec cluster = PcieCluster();
  const auto compressor = Make("randomk");

  EspressoSelector full(model, cluster, *compressor);
  SelectorOptions myopic_options;
  myopic_options.myopic = true;
  EspressoSelector myopic(model, cluster, *compressor, myopic_options);
  EXPECT_LE(full.Select().iteration_time, myopic.Select().iteration_time + 1e-12);
}

TEST(Espresso, ReportsStageTimings) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("dgc");
  EspressoSelector selector(model, cluster, *compressor);
  const SelectionResult result = selector.Select();
  EXPECT_GT(result.gpu_stage_seconds, 0.0);
  EXPECT_GT(result.timeline_evaluations, 0u);
  EXPECT_GT(result.iteration_time, 0.0);
}

TEST(Espresso, RestrictedCandidatesAreRespected) {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = Make("dgc");
  SelectorOptions options;
  options.candidates = {DefaultUncompressedOption(TreeConfig{8, 8, false}),
                        InterOnlyIndivisibleOption(cluster, Device::kGpu)};
  options.enable_cpu_offload = false;
  EspressoSelector selector(model, cluster, *compressor, options);
  const SelectionResult result = selector.Select();
  for (const auto& option : result.strategy.options) {
    const bool allowed = option == options.candidates[0] || option == options.candidates[1];
    EXPECT_TRUE(allowed) << option.Describe();
  }
}

TEST(EspressoDeathTest, RejectsContentDependentCompressors) {
  // §4.3's applicability requirement: selection needs a deterministic compression
  // ratio. Threshold sparsification is execution-only.
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster();
  const auto threshold = CreateCompressor(
      CompressorConfig{.algorithm = "threshold", .threshold = 0.1});
  EXPECT_DEATH(EspressoSelector(model, cluster, *threshold), "content-dependent");
}

}  // namespace
}  // namespace espresso

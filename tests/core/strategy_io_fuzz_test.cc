// Fuzz-style robustness for the .esp strategy text format: a torn, duplicated, or
// bit-flipped file must come back as {ok=false, error} (or parse cleanly if the damage
// happened to be benign) — never crash, hang, or abort. Runs under the sanitizer CI
// jobs, so any out-of-bounds read or UB in the parser fails loudly.
#include <gtest/gtest.h>

#include <string>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/core/strategy_io.h"
#include "src/models/model_zoo.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

std::string SeedDocument() {
  const ModelProfile model = Lstm();
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  EspressoSelector selector(model, cluster, *compressor);
  return StrategyToString(selector.Select().strategy);
}

// The property under test: parsing anything must terminate and return a result.
void MustNotCrash(const std::string& text) {
  const StrategyParseResult result = StrategyFromString(text);
  if (!result.ok) {
    EXPECT_FALSE(result.error.empty());
  }
}

TEST(StrategyIoFuzz, SurvivesEveryPrefixTruncation) {
  const std::string document = SeedDocument();
  for (size_t cut = 0; cut < document.size(); ++cut) {
    MustNotCrash(document.substr(0, cut));
  }
}

TEST(StrategyIoFuzz, SurvivesEverySuffixTruncation) {
  const std::string document = SeedDocument();
  for (size_t cut = 0; cut < document.size(); cut += 7) {
    MustNotCrash(document.substr(cut));
  }
}

TEST(StrategyIoFuzz, RejectsDuplicatedTensorSections) {
  const std::string document = SeedDocument();
  // Duplicate the first [tensor 0] section verbatim at the end: the tensor count no
  // longer matches the section list, which must be a parse error, not a crash.
  const size_t begin = document.find("[tensor 0]");
  ASSERT_NE(begin, std::string::npos);
  const size_t end = document.find("[tensor 1]", begin);
  ASSERT_NE(end, std::string::npos);
  const std::string duplicated = document + document.substr(begin, end - begin);
  const StrategyParseResult result = StrategyFromString(duplicated);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(StrategyIoFuzz, RejectsTensorCountMismatches) {
  const std::string document = SeedDocument();
  const size_t at = document.find("tensors = ");
  ASSERT_NE(at, std::string::npos);
  const size_t line_end = document.find('\n', at);
  for (const char* count : {"tensors = 0", "tensors = 1", "tensors = 1000000",
                            "tensors = -3", "tensors = x"}) {
    std::string damaged = document;
    damaged.replace(at, line_end - at, count);
    const StrategyParseResult result = StrategyFromString(damaged);
    EXPECT_FALSE(result.ok) << count;
  }
}

TEST(StrategyIoFuzz, SurvivesDeterministicByteMutations) {
  const std::string document = SeedDocument();
  // Deterministic single-byte mutations across the whole document: overwrite with a
  // byte drawn from a seeded RNG (printable and not, NULs included). Most damage must
  // be rejected; occasionally a mutation is benign — both outcomes are fine, crashing
  // is not.
  Rng rng(0xe59'f00d);
  const char alphabet[] = "\0\n\t []=.-0123456789abcxyz|";
  for (size_t i = 0; i < document.size(); ++i) {
    std::string mutated = document;
    mutated[i] = alphabet[rng.UniformInt(0, sizeof(alphabet) - 1)];
    MustNotCrash(mutated);
  }
}

TEST(StrategyIoFuzz, SurvivesLineDeletionsAndSwaps) {
  const std::string document = SeedDocument();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < document.size()) {
    size_t end = document.find('\n', start);
    if (end == std::string::npos) end = document.size();
    lines.push_back(document.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_GT(lines.size(), 4u);
  for (size_t drop = 0; drop < lines.size(); ++drop) {
    std::string damaged;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (i != drop) damaged += lines[i] + "\n";
    }
    MustNotCrash(damaged);
  }
  for (size_t swap = 0; swap + 1 < lines.size(); swap += 3) {
    std::vector<std::string> reordered = lines;
    std::swap(reordered[swap], reordered[swap + 1]);
    std::string damaged;
    for (const std::string& line : reordered) damaged += line + "\n";
    MustNotCrash(damaged);
  }
}

TEST(StrategyIoFuzz, SurvivesPathologicalDocuments) {
  MustNotCrash(std::string(1 << 16, '['));
  MustNotCrash(std::string(1 << 16, '\n'));
  MustNotCrash("tensors = 1\n" + std::string(1 << 12, ' ') + "[tensor 0]\n");
  MustNotCrash(std::string("tensors = 1\n[tensor 0]\nop = \0 comm", 33));
  std::string many_ops = "tensors = 1\n[tensor 0]\nflat = true\n";
  for (int i = 0; i < 2000; ++i) {
    many_ops += "op = comm allreduce flat domain=1 payload=1 fan=1 raw\n";
  }
  MustNotCrash(many_ops);
}

}  // namespace
}  // namespace espresso

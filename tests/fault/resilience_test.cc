// The resilience policy layer end to end: checksum-verified retransmission, dropped
// payloads folded into error feedback, retry + FP32 fallback in the executor, online
// re-selection under link drift, and convergence under sustained payload loss.
#include <gtest/gtest.h>

#include "src/collectives/primitives.h"
#include "src/collectives/schemes.h"
#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/fault/chaos_channel.h"
#include "src/fault/drift_monitor.h"
#include "src/fault/resilient_executor.h"
#include "src/models/model_zoo.h"
#include "src/nn/parallel_trainer.h"

namespace espresso {
namespace {

RankBuffers RandomBuffers(size_t ranks, size_t n, uint64_t seed) {
  RankBuffers buffers(ranks, std::vector<float>(n));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(seed, r));
    rng.FillNormal(buffers[r], 0.0, 1.0);
  }
  return buffers;
}

FaultPlan DataPathPlan(double drop, double corrupt, uint64_t seed = 9) {
  FaultSpec spec;
  spec.seed = seed;
  spec.drop_probability = drop;
  spec.corrupt_probability = corrupt;
  return FaultPlan(spec);
}

TEST(ReliableChannel, RetransmitsThroughDropsAndNeverReportsCorruption) {
  const FaultPlan plan = DataPathPlan(0.3, 0.2);
  const FaultInjector injector(plan);
  RetryPolicy policy;
  policy.max_attempts = 16;  // drops this transient always get through eventually
  ReliableChannel channel(&injector, policy);

  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.1});
  size_t delivered = 0;
  for (uint64_t it = 0; it < 50; ++it) {
    channel.BeginIteration(it);
    for (size_t rank = 0; rank < 4; ++rank) {
      std::vector<float> grad(64, 1.0f);
      CompressedTensor payload;
      compressor->Compress(grad, it, &payload);
      const CompressedTensor before = payload;
      const PayloadFate fate = channel.Transmit(rank, 3, &payload);
      ASSERT_NE(fate, PayloadFate::kCorrupted);
      if (fate == PayloadFate::kDelivered) {
        ++delivered;
        // A delivered payload is intact: corrupted attempts were discarded.
        EXPECT_EQ(payload.indices, before.indices);
        EXPECT_EQ(payload.values, before.values);
      }
    }
  }
  EXPECT_EQ(delivered, channel.stats().delivered);
  EXPECT_GT(delivered, 190u);  // nearly everything gets through with 16 attempts
  EXPECT_GT(channel.stats().retries, 0u);
  EXPECT_GT(channel.stats().corrupted, 0u);  // corruption was seen, caught, retried
  EXPECT_GT(channel.stats().backoff_seconds, 0.0);
}

TEST(ReliableChannel, GivesUpAfterMaxAttempts) {
  FaultSpec spec;
  spec.seed = 1;
  spec.drop_probability = 1.0;  // the wire is down
  const FaultPlan plan{spec};
  const FaultInjector injector(plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  ReliableChannel channel(&injector, policy);

  CompressedTensor payload;
  payload.original_elements = 4;
  payload.indices = {0};
  payload.values = {1.0f};
  EXPECT_EQ(channel.Transmit(0, 0, &payload), PayloadFate::kDropped);
  EXPECT_EQ(channel.stats().attempts, 3u);
  EXPECT_EQ(channel.stats().retries, 2u);
  EXPECT_EQ(channel.stats().dropped, 1u);
}

TEST(ReliableChannel, StatsAreDeterministicGivenSeed) {
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.1});
  auto run = [&]() {
    const FaultPlan plan = DataPathPlan(0.2, 0.1, 33);
    const FaultInjector injector(plan);
    ReliableChannel channel(&injector, RetryPolicy{});
    for (uint64_t it = 0; it < 20; ++it) {
      channel.BeginIteration(it);
      for (size_t rank = 0; rank < 4; ++rank) {
        std::vector<float> grad(32, 0.5f);
        CompressedTensor payload;
        compressor->Compress(grad, it, &payload);
        channel.Transmit(rank, 7, &payload);
      }
    }
    return channel.stats();
  };
  const ChannelStats a = run();
  const ChannelStats b = run();
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);
}

TEST(ChaosChannel, DeliversCorruptionSilently) {
  const FaultPlan plan = DataPathPlan(0.0, 1.0);
  const FaultInjector injector(plan);
  ChaosChannel channel(&injector);
  CompressedTensor payload;
  payload.original_elements = 4;
  payload.indices = {0, 1};
  payload.values = {1.0f, 2.0f};
  const CompressedTensor before = payload;
  EXPECT_EQ(channel.Transmit(0, 0, &payload), PayloadFate::kCorrupted);
  EXPECT_EQ(channel.stats().corrupted, 1u);
  // The raw channel hands the mangled payload to the receiver.
  EXPECT_TRUE(payload.indices != before.indices || payload.values != before.values);
}

TEST(Schemes, DroppedPayloadIsExcludedFromAllReplicasConsistently) {
  const size_t ranks = 4, n = 48;
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.25});
  const FaultPlan plan = DataPathPlan(0.5, 0.0);
  const FaultInjector injector(plan);
  ChaosChannel channel(&injector);
  channel.BeginIteration(0);

  RankBuffers buffers = RandomBuffers(ranks, n, 5);
  std::vector<ErrorFeedback> feedback(ranks);
  SchemeContext ctx{&feedback, &channel, 0, 11};
  const SchemeResult result = CompressedIndivisibleAllgather(*compressor, ctx, buffers);
  EXPECT_GT(result.payloads_dropped, 0u);
  // Synchronous replicas stay bit-identical even when payloads vanish.
  for (size_t r = 1; r < ranks; ++r) {
    EXPECT_EQ(buffers[r], buffers[0]) << "rank " << r;
  }
}

TEST(Schemes, ErrorFeedbackAbsorbsDroppedPayload) {
  // With a 100%-drop channel and EF on, the aggregation excludes everything but the
  // residual must carry the whole corrected gradient forward.
  const size_t ranks = 2, n = 32;
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.5});
  const FaultPlan plan = DataPathPlan(1.0, 0.0);
  const FaultInjector injector(plan);
  ChaosChannel channel(&injector);
  channel.BeginIteration(0);

  RankBuffers buffers = RandomBuffers(ranks, n, 6);
  const RankBuffers original = buffers;
  std::vector<ErrorFeedback> feedback(ranks);
  SchemeContext ctx{&feedback, &channel, 0, 3};
  const SchemeResult result = CompressedIndivisibleAllgather(*compressor, ctx, buffers);
  EXPECT_EQ(result.payloads_dropped, ranks);
  for (size_t r = 0; r < ranks; ++r) {
    const auto residual = feedback[r].residual(0);
    ASSERT_EQ(residual.size(), n);
    // residual = (g + 0) - decompressed + decompressed = g: nothing was lost.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(residual[i], original[r][i], 1e-5) << "rank " << r << " idx " << i;
    }
  }
}

TEST(ResilientExecutor, FallsBackToFp32WhenRetriesExhausted) {
  FaultSpec spec;
  spec.seed = 2;
  spec.collective_failure_probability = 1.0;  // every phase attempt fails
  const FaultInjector injector{FaultPlan{spec}};
  RetryPolicy policy;
  policy.max_attempts = 3;

  const ExecutorConfig config{.machines = 2, .gpus_per_machine = 2};
  const TreeConfig tree{2, 2, false};
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.1});
  ExecutorConfig comp_config = config;
  comp_config.compressor = compressor.get();

  RankBuffers buffers = RandomBuffers(config.ranks(), 40, 8);
  const std::vector<float> expected = NaiveSum(buffers);
  ResilienceReport report;
  ResilientExecuteOption(DefaultUncompressedOption(tree), comp_config, 0, buffers,
                         injector, policy, 0, &report);
  EXPECT_EQ(report.fallbacks, 1u);
  EXPECT_EQ(report.total_retries, policy.max_attempts - 1);
  // The degraded path is exact FP32 aggregation.
  for (size_t r = 0; r < buffers.size(); ++r) {
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_FLOAT_EQ(buffers[r][i], expected[i]) << "rank " << r;
    }
  }
}

TEST(ResilientExecutor, CleanPathMatchesPlainExecutor) {
  const FaultInjector injector{FaultPlan{FaultSpec{}}};  // quiet plan
  const ExecutorConfig config{.machines = 2, .gpus_per_machine = 2};
  const TreeConfig tree{2, 2, false};

  RankBuffers resilient = RandomBuffers(config.ranks(), 33, 4);
  RankBuffers plain = resilient;
  ResilienceReport report;
  ResilientExecuteOption(DefaultUncompressedOption(tree), config, 0, resilient, injector,
                         RetryPolicy{}, 0, &report);
  ExecuteOption(DefaultUncompressedOption(tree), config, 0, plain);
  EXPECT_EQ(report.clean, 1u);
  EXPECT_EQ(report.fallbacks, 0u);
  for (size_t r = 0; r < plain.size(); ++r) {
    EXPECT_EQ(resilient[r], plain[r]);
  }
}

TEST(ResilientExecutor, StrategyReportAccountsEveryTensor) {
  FaultSpec spec;
  spec.seed = 3;
  spec.collective_failure_probability = 0.4;
  const FaultInjector injector{FaultPlan{spec}};
  const ExecutorConfig config{.machines = 2, .gpus_per_machine = 2};
  const TreeConfig tree{2, 2, false};

  const size_t tensors = 12;
  const Strategy strategy = UniformStrategy(tensors, DefaultUncompressedOption(tree));
  std::vector<RankBuffers> gradients;
  for (size_t t = 0; t < tensors; ++t) {
    gradients.push_back(RandomBuffers(config.ranks(), 16, t));
  }
  const ResilienceReport report =
      ResilientExecuteStrategy(strategy, config, gradients, injector, RetryPolicy{}, 1);
  EXPECT_EQ(report.tensors, tensors);
  EXPECT_EQ(report.clean + report.retried + report.fallbacks, tensors);
  EXPECT_EQ(report.events.size(), report.total_retries + report.fallbacks);
}

TEST(DriftMonitor, QuietClusterNeverTriggers) {
  const ClusterSpec profiled = NvlinkCluster(2, 2);
  DriftMonitor monitor(DriftConfig{}, profiled);
  for (uint64_t it = 0; it < 50; ++it) {
    EXPECT_FALSE(monitor.Observe(it, profiled));
  }
  EXPECT_DOUBLE_EQ(monitor.drift(), 0.0);
}

TEST(DriftMonitor, SustainedDegradationCrossesThresholdAfterSmoothing) {
  const ClusterSpec profiled = NvlinkCluster(2, 2);
  const ClusterSpec degraded = [&]() {
    ClusterSpec c = profiled;
    c.inter = c.inter.Degraded(0.25);
    return c;
  }();
  DriftConfig config;
  config.threshold = 0.25;
  config.smoothing = 0.5;
  DriftMonitor monitor(config, profiled);
  // One observation moves the EWMA halfway: |0.5*0.25 + 0.5 - 1| = 0.375 > 0.25.
  EXPECT_TRUE(monitor.Observe(0, degraded));
  EXPECT_GT(monitor.drift(), config.threshold);
  const ClusterSpec smoothed = monitor.SmoothedCluster();
  EXPECT_LT(smoothed.inter.bytes_per_second, profiled.inter.bytes_per_second);
  EXPECT_GT(smoothed.inter.bytes_per_second, degraded.inter.bytes_per_second);
}

TEST(DriftMonitor, CooldownSuppressesBackToBackTriggers) {
  const ClusterSpec profiled = NvlinkCluster(2, 2);
  ClusterSpec degraded = profiled;
  degraded.inter = degraded.inter.Degraded(0.25);
  DriftConfig config;
  config.cooldown_iterations = 10;
  DriftMonitor monitor(config, profiled);
  EXPECT_TRUE(monitor.Observe(0, degraded));
  monitor.AcknowledgeReselection(0);
  for (uint64_t it = 1; it < 10; ++it) {
    EXPECT_FALSE(monitor.Observe(it, degraded)) << it;
  }
  EXPECT_TRUE(monitor.Observe(10, degraded));
}

TEST(OnlineReselector, InterLinkDegradationSwitchesAtLeastOneOption) {
  // The acceptance scenario: the inter-machine link degrades 4x; the re-selected
  // strategy must differ (compression gets more attractive on a slower network).
  const ModelProfile model = Vgg16();
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  const CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  const auto compressor = CreateCompressor(gc);
  DriftConfig drift;
  drift.threshold = 0.25;
  drift.smoothing = 1.0;  // no smoothing lag in the test
  OnlineReselector reselector(model, profiled, *compressor, gc, SelectorOptions{}, drift);
  const Strategy before = reselector.strategy();

  ClusterSpec observed = profiled;
  observed.inter = observed.inter.Degraded(0.25);
  const auto event = reselector.Step(0, observed);
  ASSERT_TRUE(event.has_value());
  EXPECT_GT(event->options_changed, 0u);
  EXPECT_GT(event->drift, drift.threshold);
  // The swapped-in strategy beats the stale one under the drifted cost model.
  EXPECT_LE(event->new_iteration_time, event->stale_iteration_time + 1e-12);
  EXPECT_EQ(reselector.strategy().options.size(), before.options.size());
}

TEST(Convergence, AccuracySurvivesFivePercentPayloadDrops) {
  // ISSUE acceptance: with EF on and a lossy channel dropping ~5% of payloads,
  // final accuracy stays within a whisker of the fault-free run.
  const Dataset all = MakeGaussianBlobs(1536, 12, 4, 2.5, 99);
  const Dataset train = Slice(all, 0, 1024);
  const Dataset test = Slice(all, 1024, 512);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.05});

  TrainConfig config;
  config.workers = 4;
  config.hidden_dim = 24;
  config.batch_per_worker = 16;
  config.learning_rate = 0.05;
  config.epochs = 20;
  config.seed = 1234;
  config.scheme = SyncScheme::kCompressedIndivisible;
  config.compressor = compressor.get();
  const auto fault_free = TrainDataParallel(train, test, config);

  const FaultPlan plan = DataPathPlan(0.05, 0.0, 2024);
  const FaultInjector injector(plan);
  ChaosChannel channel(&injector);
  TrainConfig lossy = config;
  lossy.channel = &channel;
  const auto with_drops = TrainDataParallel(train, test, lossy);

  size_t total_dropped = 0;
  for (const auto& epoch : with_drops) total_dropped += epoch.payloads_dropped;
  EXPECT_GT(total_dropped, 0u);
  EXPECT_NEAR(with_drops.back().test_accuracy, fault_free.back().test_accuracy, 0.01);
}

// Satellite: the executor rejects malformed setups with clear fatal messages.
TEST(ExecutorValidation, RejectsWrongBufferCount) {
  const ExecutorConfig config{.machines = 2, .gpus_per_machine = 2};
  const TreeConfig tree{2, 2, false};
  RankBuffers buffers = RandomBuffers(3, 8, 1);  // 3 != 4 ranks
  EXPECT_DEATH(ExecuteOption(DefaultUncompressedOption(tree), config, 0, buffers),
               "rank");
}

TEST(ExecutorValidation, RejectsZeroTopology) {
  const ExecutorConfig config{.machines = 0, .gpus_per_machine = 2};
  const TreeConfig tree{2, 2, false};
  RankBuffers buffers = RandomBuffers(4, 8, 1);
  EXPECT_DEATH(ExecuteOption(DefaultUncompressedOption(tree), config, 0, buffers), "");
}

TEST(ExecutorValidation, RejectsStrategyGradientMismatch) {
  const ExecutorConfig config{.machines = 2, .gpus_per_machine = 2};
  const TreeConfig tree{2, 2, false};
  const Strategy strategy = UniformStrategy(3, DefaultUncompressedOption(tree));
  std::vector<RankBuffers> gradients(2, RandomBuffers(config.ranks(), 8, 1));
  EXPECT_DEATH(ExecuteStrategy(strategy, config, gradients), "");
}

}  // namespace
}  // namespace espresso

// Regression coverage for the drift monitor's latency blindness: drift() used to
// compare only the smoothed bandwidths against the profile, so a latency-only
// degradation (a jittery NIC inflating alpha while beta stays put) never triggered
// re-selection — and the intra link's latency was never even observed into the
// EWMA set, so SmoothedCluster() handed the re-selector a stale alpha.
#include "src/fault/drift_monitor.h"

#include <gtest/gtest.h>

#include "src/compress/compressor.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

ClusterSpec WithInterLatency(const ClusterSpec& base, double latency_s) {
  ClusterSpec observed = base;
  observed.inter.latency_s = latency_s;
  return observed;
}

TEST(DriftMonitor, LatencyOnlyDegradationTriggersReselection) {
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  DriftConfig config;
  config.threshold = 0.5;
  config.smoothing = 0.5;
  DriftMonitor monitor(config, profiled);

  // 10x inter latency, bandwidths untouched: after a few smoothing steps the
  // latency deviation alone must cross the threshold.
  const ClusterSpec observed = WithInterLatency(profiled, profiled.inter.latency_s * 10.0);
  bool triggered = false;
  for (uint64_t it = 0; it < 8 && !triggered; ++it) {
    triggered = monitor.Observe(it, observed);
  }
  EXPECT_TRUE(triggered);
  EXPECT_GT(monitor.drift(), config.threshold);
}

TEST(DriftMonitor, IntraLatencyIsObservedAndSmoothed) {
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  DriftConfig config;
  config.smoothing = 1.0;  // EWMA == latest observation
  DriftMonitor monitor(config, profiled);

  ClusterSpec observed = profiled;
  observed.intra.latency_s = profiled.intra.latency_s * 3.0;
  monitor.Observe(0, observed);

  const ClusterSpec smoothed = monitor.SmoothedCluster();
  EXPECT_DOUBLE_EQ(smoothed.intra.latency_s, observed.intra.latency_s);
  EXPECT_DOUBLE_EQ(monitor.drift(), 2.0);  // |3x / 1x - 1|
}

TEST(DriftMonitor, LatencyRecoveryBringsDriftBackDown) {
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  DriftConfig config;
  config.smoothing = 1.0;
  DriftMonitor monitor(config, profiled);

  monitor.Observe(0, WithInterLatency(profiled, profiled.inter.latency_s * 5.0));
  EXPECT_GT(monitor.drift(), 1.0);
  monitor.Observe(1, profiled);
  EXPECT_NEAR(monitor.drift(), 0.0, 1e-12);
}

TEST(DriftMonitor, ZeroProfiledLatencyContributesNoDeviation) {
  ClusterSpec profiled = NvlinkCluster(4, 4);
  profiled.inter.latency_s = 0.0;  // ideal alpha-free profile: no relative scale
  DriftConfig config;
  config.smoothing = 1.0;
  DriftMonitor monitor(config, profiled);

  monitor.Observe(0, WithInterLatency(profiled, 1e-3));
  EXPECT_DOUBLE_EQ(monitor.drift(), 0.0);
}

TEST(DriftMonitor, BandwidthDriftStillDetected) {
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  DriftConfig config;
  config.threshold = 0.25;
  config.smoothing = 1.0;
  DriftMonitor monitor(config, profiled);

  ClusterSpec observed = profiled;
  observed.inter = observed.inter.Degraded(0.5);
  EXPECT_TRUE(monitor.Observe(0, observed));
  EXPECT_NEAR(monitor.drift(), 0.5, 1e-9);
}

TEST(OnlineReselector, LatencyOnlyDriftHotSwapsTheStrategy) {
  const ModelProfile model = Lstm();
  const ClusterSpec profiled = NvlinkCluster(2, 2);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  DriftConfig drift;
  drift.threshold = 0.5;
  drift.smoothing = 1.0;
  OnlineReselector reselector(model, profiled, *compressor, SelectorOptions{}, drift);

  // A 50x inter-latency spike must reach the selector: the event fires even if the
  // drifted optimum happens to keep every per-tensor option.
  const ClusterSpec observed =
      WithInterLatency(profiled, profiled.inter.latency_s * 50.0);
  const auto event = reselector.Step(0, observed);
  ASSERT_TRUE(event.has_value());
  EXPECT_GT(event->drift, drift.threshold);
  EXPECT_GT(event->new_iteration_time, 0.0);
}

}  // namespace
}  // namespace espresso

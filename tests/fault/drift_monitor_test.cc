// Regression coverage for the drift monitor's latency blindness: drift() used to
// compare only the smoothed bandwidths against the profile, so a latency-only
// degradation (a jittery NIC inflating alpha while beta stays put) never triggered
// re-selection — and the intra link's latency was never even observed into the
// EWMA set, so SmoothedCluster() handed the re-selector a stale alpha.
#include "src/fault/drift_monitor.h"

#include <gtest/gtest.h>

#include "src/compress/compressor.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

ClusterSpec WithInterLatency(const ClusterSpec& base, double latency_s) {
  ClusterSpec observed = base;
  observed.inter.latency_s = latency_s;
  return observed;
}

TEST(DriftMonitor, LatencyOnlyDegradationTriggersReselection) {
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  DriftConfig config;
  config.threshold = 0.5;
  config.smoothing = 0.5;
  DriftMonitor monitor(config, profiled);

  // 10x inter latency, bandwidths untouched: after a few smoothing steps the
  // latency deviation alone must cross the threshold.
  const ClusterSpec observed = WithInterLatency(profiled, profiled.inter.latency_s * 10.0);
  bool triggered = false;
  for (uint64_t it = 0; it < 8 && !triggered; ++it) {
    triggered = monitor.Observe(it, observed);
  }
  EXPECT_TRUE(triggered);
  EXPECT_GT(monitor.drift(), config.threshold);
}

TEST(DriftMonitor, IntraLatencyIsObservedAndSmoothed) {
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  DriftConfig config;
  config.smoothing = 1.0;  // EWMA == latest observation
  DriftMonitor monitor(config, profiled);

  ClusterSpec observed = profiled;
  observed.intra.latency_s = profiled.intra.latency_s * 3.0;
  monitor.Observe(0, observed);

  const ClusterSpec smoothed = monitor.SmoothedCluster();
  EXPECT_DOUBLE_EQ(smoothed.intra.latency_s, observed.intra.latency_s);
  EXPECT_DOUBLE_EQ(monitor.drift(), 2.0);  // |3x / 1x - 1|
}

TEST(DriftMonitor, LatencyRecoveryBringsDriftBackDown) {
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  DriftConfig config;
  config.smoothing = 1.0;
  DriftMonitor monitor(config, profiled);

  monitor.Observe(0, WithInterLatency(profiled, profiled.inter.latency_s * 5.0));
  EXPECT_GT(monitor.drift(), 1.0);
  monitor.Observe(1, profiled);
  EXPECT_NEAR(monitor.drift(), 0.0, 1e-12);
}

TEST(DriftMonitor, ZeroProfiledLatencyContributesNoDeviation) {
  ClusterSpec profiled = NvlinkCluster(4, 4);
  profiled.inter.latency_s = 0.0;  // ideal alpha-free profile: no relative scale
  DriftConfig config;
  config.smoothing = 1.0;
  DriftMonitor monitor(config, profiled);

  monitor.Observe(0, WithInterLatency(profiled, 1e-3));
  EXPECT_DOUBLE_EQ(monitor.drift(), 0.0);
}

TEST(DriftMonitor, BandwidthDriftStillDetected) {
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  DriftConfig config;
  config.threshold = 0.25;
  config.smoothing = 1.0;
  DriftMonitor monitor(config, profiled);

  ClusterSpec observed = profiled;
  observed.inter = observed.inter.Degraded(0.5);
  EXPECT_TRUE(monitor.Observe(0, observed));
  EXPECT_NEAR(monitor.drift(), 0.5, 1e-9);
}

TEST(OnlineReselector, LatencyOnlyDriftHotSwapsTheStrategy) {
  const ModelProfile model = Lstm();
  const ClusterSpec profiled = NvlinkCluster(2, 2);
  const CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  const auto compressor = CreateCompressor(gc);
  DriftConfig drift;
  drift.threshold = 0.5;
  drift.smoothing = 1.0;
  OnlineReselector reselector(model, profiled, *compressor, gc, SelectorOptions{}, drift);

  // A 50x inter-latency spike must reach the selector: the event fires even if the
  // drifted optimum happens to keep every per-tensor option.
  const ClusterSpec observed =
      WithInterLatency(profiled, profiled.inter.latency_s * 50.0);
  const auto event = reselector.Step(0, observed);
  ASSERT_TRUE(event.has_value());
  EXPECT_GT(event->drift, drift.threshold);
  EXPECT_GT(event->new_iteration_time, 0.0);
}

TEST(OnlineReselector, PublishesThroughTheDeploymentPipeline) {
  const ModelProfile model = Lstm();
  const ClusterSpec profiled = NvlinkCluster(2, 2);
  const CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  const auto compressor = CreateCompressor(gc);
  DriftConfig drift;
  drift.threshold = 0.5;
  drift.smoothing = 1.0;
  OnlineReselector reselector(model, profiled, *compressor, gc, SelectorOptions{}, drift);

  // The construction-time selection arrives as a bootstrap deployment.
  auto& deployment = reselector.deployment();
  EXPECT_EQ(deployment.version(), 1u);
  ASSERT_EQ(deployment.events().size(), 1u);
  EXPECT_EQ(deployment.events()[0].event, "bootstrap");
  EXPECT_EQ(deployment.events()[0].origin, "selector");

  // A drift-triggered re-selection lands as a versioned, audited deploy.
  ClusterSpec observed = profiled;
  observed.inter = observed.inter.Degraded(0.1);
  const auto event = reselector.Step(3, observed);
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->deployed);
  EXPECT_EQ(event->version, 2u);
  EXPECT_EQ(deployment.version(), 2u);
  const auto live = deployment.Acquire();
  EXPECT_EQ(live->origin, "online-reselector");
  EXPECT_TRUE(reselector.strategy().options == live->strategy.options);
  ASSERT_EQ(deployment.events().size(), 2u);
  EXPECT_EQ(deployment.events()[1].event, "deploy");
  EXPECT_EQ(deployment.events()[1].iteration, 3u);
  EXPECT_GT(deployment.events()[1].fs_score, 0.0);
  // The audit trail carries both events.
  EXPECT_EQ(deployment.audit_log().size(), 2u);
}

TEST(OnlineReselector, StrategySnapshotSurvivesTheSwap) {
  const ModelProfile model = Lstm();
  const ClusterSpec profiled = NvlinkCluster(2, 2);
  const CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  const auto compressor = CreateCompressor(gc);
  DriftConfig drift;
  drift.threshold = 0.25;
  drift.smoothing = 1.0;
  OnlineReselector reselector(model, profiled, *compressor, gc, SelectorOptions{}, drift);

  // Hold a reference across a hot swap: the snapshot semantics keep it valid (and
  // bit-identical) until the next strategy() call re-acquires.
  const Strategy& before = reselector.strategy();
  const size_t options_before = before.options.size();
  ClusterSpec observed = profiled;
  observed.inter = observed.inter.Degraded(0.05);
  const auto event = reselector.Step(0, observed);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(before.options.size(), options_before);  // still the old snapshot
  EXPECT_EQ(reselector.strategy().options.size(), model.tensors.size());
}

}  // namespace
}  // namespace espresso

// Determinism and range guarantees of the fault schedule, plus its effect on the
// timeline: the same seed must reproduce the same faults and the same F(S).
#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

#include "src/core/espresso.h"
#include "src/fault/injector.h"
#include "src/models/model_zoo.h"

namespace espresso {
namespace {

FaultSpec BusySpec(uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.straggler_probability = 0.3;
  spec.straggler_slowdown = 2.0;
  spec.inter_bandwidth_factor = 0.5;
  spec.intra_bandwidth_factor = 0.8;
  spec.link_jitter = 0.2;
  spec.inter_extra_latency_s = 1e-5;
  spec.cpu_contention_probability = 0.25;
  spec.cpu_slowdown = 3.0;
  spec.drop_probability = 0.05;
  spec.corrupt_probability = 0.02;
  spec.collective_failure_probability = 0.1;
  return spec;
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const FaultPlan a(BusySpec(7));
  const FaultPlan b(BusySpec(7));
  for (uint64_t it = 0; it < 200; ++it) {
    const IterationFaults fa = a.AtIteration(it);
    const IterationFaults fb = b.AtIteration(it);
    EXPECT_EQ(fa.straggler_active, fb.straggler_active) << it;
    EXPECT_EQ(fa.cpu_contention_active, fb.cpu_contention_active) << it;
    EXPECT_EQ(fa.compute_slowdown, fb.compute_slowdown) << it;
    EXPECT_EQ(fa.cpu_slowdown, fb.cpu_slowdown) << it;
    EXPECT_EQ(fa.inter_bandwidth_factor, fb.inter_bandwidth_factor) << it;
    EXPECT_EQ(fa.intra_bandwidth_factor, fb.intra_bandwidth_factor) << it;
    EXPECT_EQ(fa.inter_extra_latency_s, fb.inter_extra_latency_s) << it;
  }
}

TEST(FaultPlan, IterationDrawsAreOrderIndependent) {
  const FaultPlan plan(BusySpec(11));
  const IterationFaults forward = plan.AtIteration(42);
  plan.AtIteration(0);
  plan.AtIteration(99);
  const IterationFaults again = plan.AtIteration(42);
  EXPECT_EQ(forward.straggler_active, again.straggler_active);
  EXPECT_EQ(forward.inter_bandwidth_factor, again.inter_bandwidth_factor);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  const FaultPlan a(BusySpec(1));
  const FaultPlan b(BusySpec(2));
  size_t differing = 0;
  for (uint64_t it = 0; it < 100; ++it) {
    if (a.AtIteration(it).inter_bandwidth_factor !=
        b.AtIteration(it).inter_bandwidth_factor) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 80u);
}

TEST(FaultPlan, JitterStaysWithinBounds) {
  const FaultSpec spec = BusySpec(3);
  const FaultPlan plan(spec);
  for (uint64_t it = 0; it < 500; ++it) {
    const IterationFaults f = plan.AtIteration(it);
    EXPECT_GE(f.compute_slowdown, 1.0);
    EXPECT_GE(f.cpu_slowdown, 1.0);
    EXPECT_GT(f.inter_bandwidth_factor, 0.0);
    EXPECT_GE(f.inter_bandwidth_factor,
              spec.inter_bandwidth_factor * (1.0 - spec.link_jitter) - 1e-12);
    EXPECT_LE(f.inter_bandwidth_factor,
              spec.inter_bandwidth_factor * (1.0 + spec.link_jitter) + 1e-12);
    EXPECT_GE(f.intra_bandwidth_factor,
              spec.intra_bandwidth_factor * (1.0 - spec.link_jitter) - 1e-12);
    EXPECT_LE(f.intra_bandwidth_factor,
              spec.intra_bandwidth_factor * (1.0 + spec.link_jitter) + 1e-12);
  }
}

TEST(FaultPlan, StragglerFrequencyTracksProbability) {
  const FaultPlan plan(BusySpec(17));
  size_t stragglers = 0;
  const size_t iterations = 2000;
  for (uint64_t it = 0; it < iterations; ++it) {
    if (plan.AtIteration(it).straggler_active) ++stragglers;
  }
  const double rate = static_cast<double>(stragglers) / iterations;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(FaultPlan, PayloadDrawDeterministicAndDecorrelated) {
  const FaultPlan plan(BusySpec(23));
  EXPECT_EQ(plan.PayloadDraw(5, 2, 9, 1), plan.PayloadDraw(5, 2, 9, 1));
  // Neighbouring coordinates must not produce the same draw.
  EXPECT_NE(plan.PayloadDraw(5, 2, 9, 1), plan.PayloadDraw(5, 2, 9, 2));
  EXPECT_NE(plan.PayloadDraw(5, 2, 9, 1), plan.PayloadDraw(5, 3, 9, 1));
  EXPECT_NE(plan.PayloadDraw(5, 2, 9, 1), plan.PayloadDraw(6, 2, 9, 1));
  EXPECT_NE(plan.PayloadDraw(5, 2, 9, 1), plan.PayloadDraw(5, 2, 10, 1));
}

TEST(FaultPlan, QuietPlanIsNeutral) {
  const FaultPlan quiet{FaultSpec{}};
  EXPECT_TRUE(quiet.Quiet());
  const IterationFaults f = quiet.AtIteration(123);
  EXPECT_FALSE(f.straggler_active);
  EXPECT_EQ(f.compute_slowdown, 1.0);
  EXPECT_EQ(f.inter_bandwidth_factor, 1.0);
  EXPECT_FALSE(FaultPlan(BusySpec(1)).Quiet());
}

TEST(FaultPlan, RejectsOutOfRangeSpec) {
  FaultSpec bad;
  bad.drop_probability = 1.5;
  EXPECT_DEATH(FaultPlan{bad}, "");
  FaultSpec slow;
  slow.straggler_slowdown = 0.5;
  EXPECT_DEATH(FaultPlan{slow}, "slowdown");
}

TEST(FaultPlan, FromConfigParsesAndRangeChecks) {
  const ConfigFile config = ConfigFile::ParseString(
      "[faults]\n"
      "seed = 99\n"
      "straggler_probability = 0.2\n"
      "straggler_slowdown = 3\n"
      "drop_probability = 1.7\n");  // out of range -> fallback 0 + warning
  ASSERT_TRUE(config.ok());
  const FaultPlan plan = FaultPlan::FromConfig(config);
  EXPECT_EQ(plan.spec().seed, 99u);
  EXPECT_DOUBLE_EQ(plan.spec().straggler_probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.spec().straggler_slowdown, 3.0);
  EXPECT_DOUBLE_EQ(plan.spec().drop_probability, 0.0);
  ASSERT_EQ(config.warnings().size(), 1u);
  EXPECT_NE(config.warnings()[0].find("drop_probability"), std::string::npos);
}

// The acceptance bar for the chaos harness: a seeded fault schedule must yield a
// bit-identical perturbed iteration time, run to run.
TEST(FaultInjector, SameSeedSamePerturbedIterationTime) {
  const ModelProfile model = Vgg16();
  const ClusterSpec cluster = NvlinkCluster(4, 4);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.01});
  const Strategy strategy = UniformStrategy(
      model.tensors.size(), DefaultUncompressedOption(TreeConfig{4, 4, false}));

  auto run = [&]() {
    const FaultPlan plan(BusySpec(77));
    const FaultInjector injector(plan);
    double total = 0.0;
    for (uint64_t it = 0; it < 5; ++it) {
      TimelineEvaluator evaluator(model, cluster, *compressor);
      evaluator.SetResourceScales(injector.ScalesFor(plan.AtIteration(it)));
      total += evaluator.IterationTime(strategy);
    }
    return total;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjector, StragglerSlowsTheIterationDown) {
  const ModelProfile model = Vgg16();
  const ClusterSpec cluster = NvlinkCluster(4, 4);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.01});
  const Strategy strategy = UniformStrategy(
      model.tensors.size(), DefaultUncompressedOption(TreeConfig{4, 4, false}));

  TimelineEvaluator clean(model, cluster, *compressor);
  const double baseline = clean.IterationTime(strategy);

  IterationFaults faults;
  faults.straggler_active = true;
  faults.compute_slowdown = 2.0;
  FaultSpec spec;
  spec.straggler_probability = 1.0;
  spec.straggler_slowdown = 2.0;
  const FaultInjector injector{FaultPlan{spec}};
  TimelineEvaluator slowed(model, cluster, *compressor);
  slowed.SetResourceScales(injector.ScalesFor(faults));
  EXPECT_GT(slowed.IterationTime(strategy), baseline);
}

TEST(FaultInjector, PerturbClusterDegradesLinks) {
  const ClusterSpec profiled = NvlinkCluster();
  IterationFaults faults;
  faults.inter_bandwidth_factor = 0.25;
  faults.intra_bandwidth_factor = 0.5;
  faults.inter_extra_latency_s = 1e-5;
  const FaultInjector injector{FaultPlan{FaultSpec{}}};
  const ClusterSpec observed = injector.PerturbCluster(profiled, faults);
  EXPECT_DOUBLE_EQ(observed.inter.bytes_per_second,
                   profiled.inter.bytes_per_second * 0.25);
  EXPECT_DOUBLE_EQ(observed.intra.bytes_per_second,
                   profiled.intra.bytes_per_second * 0.5);
  EXPECT_DOUBLE_EQ(observed.inter.latency_s, profiled.inter.latency_s + 1e-5);
  EXPECT_EQ(observed.machines, profiled.machines);
}

TEST(FaultInjector, AttemptFateRatesTrackProbabilities) {
  FaultSpec spec;
  spec.seed = 5;
  spec.drop_probability = 0.10;
  spec.corrupt_probability = 0.05;
  const FaultInjector injector{FaultPlan{spec}};
  size_t dropped = 0, corrupted = 0;
  const size_t trials = 5000;
  for (uint64_t i = 0; i < trials; ++i) {
    switch (injector.AttemptFate(i, i % 8, i % 33, 1)) {
      case PayloadFate::kDropped: ++dropped; break;
      case PayloadFate::kCorrupted: ++corrupted; break;
      case PayloadFate::kDelivered: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / trials, 0.10, 0.02);
  EXPECT_NEAR(static_cast<double>(corrupted) / trials, 0.05, 0.015);
}

}  // namespace
}  // namespace espresso

#include "src/fault/retry_policy.h"

#include <gtest/gtest.h>

#include "src/fault/checksum.h"

namespace espresso {
namespace {

TEST(RetryPolicy, ShouldRetryGivesUpAtMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_TRUE(policy.ShouldRetry(1));
  EXPECT_TRUE(policy.ShouldRetry(2));
  EXPECT_FALSE(policy.ShouldRetry(3));
  EXPECT_FALSE(policy.ShouldRetry(4));
}

TEST(RetryPolicy, DelayDoublesThenCaps) {
  RetryPolicy policy;
  policy.base_delay_s = 1e-3;
  policy.max_delay_s = 4e-3;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.Delay(1, rng), 1e-3);
  EXPECT_DOUBLE_EQ(policy.Delay(2, rng), 2e-3);
  EXPECT_DOUBLE_EQ(policy.Delay(3, rng), 4e-3);
  EXPECT_DOUBLE_EQ(policy.Delay(4, rng), 4e-3);  // capped
  EXPECT_DOUBLE_EQ(policy.Delay(10, rng), 4e-3);
}

TEST(RetryPolicy, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.base_delay_s = 1e-3;
  policy.max_delay_s = 1.0;
  policy.jitter = 0.25;
  Rng rng(7);
  for (uint32_t retry = 1; retry <= 6; ++retry) {
    const double nominal = std::min(policy.max_delay_s,
                                    policy.base_delay_s * (1u << (retry - 1)));
    for (int i = 0; i < 200; ++i) {
      const double d = policy.Delay(retry, rng);
      EXPECT_GE(d, nominal * 0.75 - 1e-15);
      EXPECT_LE(d, nominal * 1.25 + 1e-15);
    }
  }
}

// Regression: the jitter draw used to be applied AFTER the max_delay_s clamp, so a
// deep-retry delay could come out at max_delay_s * (1 + jitter). The cap is a hard
// ceiling; a positive jitter draw must never push a delay past it.
TEST(RetryPolicy, JitteredDelayNeverExceedsCap) {
  RetryPolicy policy;
  policy.base_delay_s = 1e-3;
  policy.max_delay_s = 8e-3;  // attempts >= 5 hit the cap before jitter
  policy.jitter = 0.5;
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t retry = 1 + static_cast<uint32_t>(i % 12);
    const double d = policy.Delay(retry, rng);
    EXPECT_LE(d, policy.max_delay_s) << "retry " << retry << " draw " << i;
    EXPECT_GE(d, 0.0);
  }
}

TEST(RetryPolicy, JitterIsDeterministicGivenSeed) {
  RetryPolicy policy;
  Rng a(99), b(99);
  for (uint32_t retry = 1; retry <= 8; ++retry) {
    EXPECT_EQ(policy.Delay(retry, a), policy.Delay(retry, b));
  }
}

TEST(RetryPolicy, FromConfigFallsBackOnBadValues) {
  const ConfigFile config = ConfigFile::ParseString(
      "[retry]\n"
      "max_attempts = 6\n"
      "base_delay_s = not_a_number\n"
      "jitter = 0.5\n");
  ASSERT_TRUE(config.ok());
  const RetryPolicy policy = RetryPolicy::FromConfig(config);
  EXPECT_EQ(policy.max_attempts, 6u);
  EXPECT_DOUBLE_EQ(policy.base_delay_s, 1e-3);  // fallback
  EXPECT_DOUBLE_EQ(policy.jitter, 0.5);
  ASSERT_EQ(config.warnings().size(), 1u);
  EXPECT_NE(config.warnings()[0].find("base_delay_s"), std::string::npos);
}

TEST(Checksum, Crc32MatchesKnownVector) {
  // CRC-32/IEEE of "123456789" is the classic check value.
  const char* s = "123456789";
  const uint32_t crc =
      Crc32(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Checksum, PayloadChecksumSeesEveryField) {
  CompressedTensor payload;
  payload.kind = PayloadKind::kSparse;
  payload.original_elements = 64;
  payload.indices = {1, 5, 9};
  payload.values = {0.5f, -1.0f, 2.0f};
  const uint32_t base = PayloadChecksum(payload);

  CompressedTensor tweaked = payload;
  tweaked.values[1] = -1.0000001f;
  EXPECT_NE(PayloadChecksum(tweaked), base);

  tweaked = payload;
  tweaked.indices[0] = 2;
  EXPECT_NE(PayloadChecksum(tweaked), base);

  tweaked = payload;
  tweaked.original_elements = 65;
  EXPECT_NE(PayloadChecksum(tweaked), base);

  EXPECT_EQ(PayloadChecksum(payload), base);  // stable across calls
}

}  // namespace
}  // namespace espresso

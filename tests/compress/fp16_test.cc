#include "src/compress/fp16.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace espresso {
namespace {

TEST(Fp16Scalar, ExactForSmallIntegers) {
  for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 1024.0f, -2048.0f, 0.5f, 0.25f}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << v;
  }
}

TEST(Fp16Scalar, SignedZero) {
  EXPECT_EQ(FloatToHalf(0.0f), 0x0000);
  EXPECT_EQ(FloatToHalf(-0.0f), 0x8000);
}

TEST(Fp16Scalar, Infinity) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(HalfToFloat(FloatToHalf(inf)), inf);
  EXPECT_EQ(HalfToFloat(FloatToHalf(-inf)), -inf);
}

TEST(Fp16Scalar, OverflowSaturatesToInf) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e10f))));
}

TEST(Fp16Scalar, NanStaysNan) {
  EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(std::nanf("")))));
}

TEST(Fp16Scalar, SubnormalRoundTrip) {
  // Smallest positive half subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(HalfToFloat(FloatToHalf(tiny)), tiny);
  // Below half precision underflows to zero.
  EXPECT_EQ(HalfToFloat(FloatToHalf(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Fp16Scalar, RelativeErrorBounded) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<float>(rng.Uniform(-1000.0, 1000.0));
    const float r = HalfToFloat(FloatToHalf(v));
    if (v != 0.0f) {
      EXPECT_LE(std::fabs(r - v) / std::fabs(v), 1.0f / 1024.0f) << v;
    }
  }
}

TEST(Fp16Scalar, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between two halves; ties go to even (here: down).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(HalfToFloat(FloatToHalf(halfway)), 1.0f);
  // Slightly above the halfway point rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -16);
  EXPECT_EQ(HalfToFloat(FloatToHalf(above)), 1.0f + std::ldexp(1.0f, -10));
}

TEST(Fp16Compressor, HalvesTraffic) {
  Fp16Compressor c;
  EXPECT_EQ(c.CompressedBytes(1000), 2000u);
}

TEST(Fp16Compressor, RoundTripVector) {
  Fp16Compressor c;
  std::vector<float> input(256);
  Rng rng(2);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  EXPECT_EQ(payload.ByteSize(), c.CompressedBytes(256));
  std::vector<float> out(256, 0.0f);
  c.Decompress(payload, out);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(out[i], input[i], std::fabs(input[i]) / 1024.0f + 1e-6f);
  }
}

}  // namespace
}  // namespace espresso

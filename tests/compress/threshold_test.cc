#include "src/compress/threshold.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace espresso {
namespace {

TEST(Threshold, KeepsExactlyTheLargeCoordinates) {
  ThresholdCompressor c(1.0);
  const std::vector<float> input = {0.5f, -1.5f, 1.0f, 0.99f, -2.0f, 0.0f};
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  EXPECT_EQ(payload.indices, (std::vector<uint32_t>{1, 2, 4}));
  std::vector<float> out(6, 0.0f);
  c.Decompress(payload, out);
  EXPECT_FLOAT_EQ(out[1], -1.5f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
  EXPECT_FLOAT_EQ(out[4], -2.0f);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
}

TEST(Threshold, SizeIsContentDependent) {
  ThresholdCompressor c(1.0);
  CompressedTensor small, large;
  c.Compress(std::vector<float>{0.1f, 0.2f, 0.3f}, 0, &small);
  c.Compress(std::vector<float>{5.0f, 5.0f, 5.0f}, 0, &large);
  EXPECT_LT(small.ByteSize(), large.ByteSize());
  EXPECT_FALSE(c.HasDeterministicSize());
  // The analytic size is a worst-case bound.
  EXPECT_GE(c.CompressedBytes(3), large.ByteSize());
  // With every coordinate surviving, the sparse encoding would inflate past the raw
  // floats; the compressor must fall back to a dense payload instead.
  EXPECT_EQ(large.kind, PayloadKind::kRaw);
  EXPECT_EQ(large.ByteSize(), 3 * sizeof(float));
}

TEST(Threshold, NeverInflatesPastRaw) {
  std::vector<float> input(256);
  Rng rng(7);
  rng.FillNormal(input, 0.0, 1.0);
  // Even a cutoff that keeps everything must not ship more than the raw payload.
  ThresholdCompressor c(1e-6);
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  EXPECT_LE(payload.ByteSize(), input.size() * sizeof(float));
  EXPECT_LE(c.CompressedBytes(input.size()), input.size() * sizeof(float));
  std::vector<float> out(input.size(), 0.0f);
  c.DecompressAdd(payload, out);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], input[i]);
  }
}

TEST(Threshold, HigherThresholdKeepsLess) {
  std::vector<float> input(1000);
  Rng rng(1);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor loose, tight;
  // 1.0 keeps ~32% of N(0,1) — sparse stays cheaper than raw, so no dense fallback.
  ThresholdCompressor(1.0).Compress(input, 0, &loose);
  ThresholdCompressor(2.0).Compress(input, 0, &tight);
  EXPECT_GT(loose.indices.size(), tight.indices.size());
  EXPECT_GT(tight.indices.size(), 0u);  // ~5% of N(0,1) exceeds 2 sigma
}

TEST(Threshold, RegistryAndGuards) {
  CompressorConfig config;
  config.algorithm = "threshold";
  config.threshold = 0.25;
  auto c = CreateCompressor(config);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "threshold");
  EXPECT_FALSE(c->HasDeterministicSize());
  EXPECT_DEATH(ThresholdCompressor(0.0), "");
}

TEST(Threshold, EveryOtherAlgorithmIsDeterministic) {
  for (const char* name : {"randomk", "dgc", "efsignsgd", "qsgd", "terngrad", "fp16"}) {
    CompressorConfig config;
    config.algorithm = name;
    config.bits = 4;
    EXPECT_TRUE(CreateCompressor(config)->HasDeterministicSize()) << name;
  }
}

}  // namespace
}  // namespace espresso

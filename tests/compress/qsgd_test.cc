#include "src/compress/qsgd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace espresso {
namespace {

TEST(Qsgd, RoundTripErrorBounded) {
  QsgdCompressor c(7);
  std::vector<float> input(512);
  Rng rng(1);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c.Compress(input, 4, &payload);
  std::vector<float> out(input.size(), 0.0f);
  c.Decompress(payload, out);
  // Per-element quantization error <= one level unit = ||v|| / levels.
  const float norm = payload.scales[0];
  const float unit = norm / 127.0f;
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_LE(std::fabs(out[i] - input[i]), unit + 1e-5f);
  }
}

TEST(Qsgd, StochasticRoundingIsUnbiased) {
  QsgdCompressor c(2);  // coarse levels to force rounding
  const std::vector<float> input = {0.5f};
  double sum = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    CompressedTensor payload;
    c.Compress(input, static_cast<uint64_t>(t), &payload);
    std::vector<float> out(1, 0.0f);
    c.Decompress(payload, out);
    sum += out[0];
  }
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Qsgd, SignPreserved) {
  QsgdCompressor c(7);
  const std::vector<float> input = {3.0f, -3.0f, 1.5f, -1.5f};
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  std::vector<float> out(4, 0.0f);
  c.Decompress(payload, out);
  for (size_t i = 0; i < input.size(); ++i) {
    if (out[i] != 0.0f) {
      EXPECT_EQ(std::signbit(out[i]), std::signbit(input[i]));
    }
  }
}

TEST(Qsgd, SameSeedReproducible) {
  QsgdCompressor c(4);
  std::vector<float> input(100);
  Rng rng(8);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor a, b;
  c.Compress(input, 11, &a);
  c.Compress(input, 11, &b);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.scales, b.scales);
}

TEST(Qsgd, ZeroVector) {
  QsgdCompressor c(7);
  const std::vector<float> input(32, 0.0f);
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  std::vector<float> out(32, 1.0f);
  c.Decompress(payload, out);
  for (float v : out) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(Qsgd, CompressedBytesOneBytePerElement) {
  QsgdCompressor c(7);
  EXPECT_EQ(c.CompressedBytes(100), 104u);
}

TEST(Qsgd, RejectsInvalidBits) {
  EXPECT_DEATH(QsgdCompressor(0), "");
  EXPECT_DEATH(QsgdCompressor(8), "");
}

}  // namespace
}  // namespace espresso

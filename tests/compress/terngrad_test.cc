#include "src/compress/terngrad.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace espresso {
namespace {

TEST(TernGrad, OutputsAreTernary) {
  TernGradCompressor c;
  std::vector<float> input(256);
  Rng rng(1);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c.Compress(input, 3, &payload);
  std::vector<float> out(input.size(), 0.0f);
  c.Decompress(payload, out);
  const float scale = payload.scales[0];
  for (float v : out) {
    EXPECT_TRUE(v == 0.0f || std::fabs(std::fabs(v) - scale) < 1e-6f);
  }
}

TEST(TernGrad, ScaleIsMaxAbs) {
  TernGradCompressor c;
  const std::vector<float> input = {0.5f, -3.5f, 2.0f};
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  EXPECT_FLOAT_EQ(payload.scales[0], 3.5f);
}

TEST(TernGrad, MaxMagnitudeElementAlwaysKept) {
  TernGradCompressor c;
  const std::vector<float> input = {0.1f, -4.0f, 0.2f};
  for (uint64_t seed = 0; seed < 50; ++seed) {
    CompressedTensor payload;
    c.Compress(input, seed, &payload);
    std::vector<float> out(3, 0.0f);
    c.Decompress(payload, out);
    EXPECT_FLOAT_EQ(out[1], -4.0f);  // keep probability 1.0
  }
}

TEST(TernGrad, StochasticKeepIsUnbiased) {
  TernGradCompressor c;
  // value = scale/2 -> kept with probability 0.5 at magnitude scale.
  const std::vector<float> input = {2.0f, 1.0f};
  double sum = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    CompressedTensor payload;
    c.Compress(input, static_cast<uint64_t>(t), &payload);
    std::vector<float> out(2, 0.0f);
    c.Decompress(payload, out);
    sum += out[1];
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.08);
}

TEST(TernGrad, TwoBitsPerElement) {
  TernGradCompressor c;
  EXPECT_EQ(c.CompressedBytes(4), 1u + 4u);
  EXPECT_EQ(c.CompressedBytes(5), 2u + 4u);
  EXPECT_EQ(c.CompressedBytes(1024), 256u + 4u);
}

TEST(TernGrad, ByteSizeMatchesAnalytic) {
  TernGradCompressor c;
  std::vector<float> input(333);
  Rng rng(4);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  EXPECT_EQ(payload.ByteSize(), c.CompressedBytes(333));
}

}  // namespace
}  // namespace espresso

#include "src/compress/efsignsgd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace espresso {
namespace {

TEST(EfSignSgd, SignsPreserved) {
  EfSignSgdCompressor c;
  const std::vector<float> input = {1.0f, -2.0f, 0.5f, -0.25f};
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  std::vector<float> out(4, 0.0f);
  c.Decompress(payload, out);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(std::signbit(out[i]), std::signbit(input[i]));
  }
}

TEST(EfSignSgd, ScaleIsMeanAbsolute) {
  EfSignSgdCompressor c;
  const std::vector<float> input = {1.0f, -2.0f, 3.0f, -4.0f};
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  ASSERT_EQ(payload.scales.size(), 1u);
  EXPECT_FLOAT_EQ(payload.scales[0], 2.5f);
}

TEST(EfSignSgd, CompressedSizeIsOneBitPerElementPlusScale) {
  EfSignSgdCompressor c;
  EXPECT_EQ(c.CompressedBytes(8), 1u + 4u);
  EXPECT_EQ(c.CompressedBytes(9), 2u + 4u);
  EXPECT_EQ(c.CompressedBytes(1024), 128u + 4u);
  // 32x reduction (minus the scale constant) as the paper's 1-bit quantization claims.
  EXPECT_LT(c.CompressedBytes(1 << 20), (1 << 20) * 4 / 30);
}

TEST(EfSignSgd, ByteSizeMatchesAnalytic) {
  EfSignSgdCompressor c;
  std::vector<float> input(1000);
  Rng rng(3);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  EXPECT_EQ(payload.ByteSize(), c.CompressedBytes(1000));
}

TEST(EfSignSgd, DecompressAddAccumulates) {
  EfSignSgdCompressor c;
  const std::vector<float> input = {1.0f, -1.0f};
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  std::vector<float> out = {10.0f, 10.0f};
  c.DecompressAdd(payload, out);
  EXPECT_FLOAT_EQ(out[0], 11.0f);
  EXPECT_FLOAT_EQ(out[1], 9.0f);
}

TEST(EfSignSgd, ZeroInputGivesZeroScale) {
  EfSignSgdCompressor c;
  const std::vector<float> input(16, 0.0f);
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  std::vector<float> out(16, 0.0f);
  c.Decompress(payload, out);
  for (float v : out) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(EfSignSgd, UnbiasedMagnitudeOnUniformSigns) {
  // For a vector of +-x, decompression reproduces it exactly.
  EfSignSgdCompressor c;
  std::vector<float> input(64);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = (i % 2 == 0) ? 0.75f : -0.75f;
  }
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  std::vector<float> out(64, 0.0f);
  c.Decompress(payload, out);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], input[i]);
  }
}

}  // namespace
}  // namespace espresso

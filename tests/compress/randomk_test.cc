#include "src/compress/randomk.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace espresso {
namespace {

std::vector<float> RandomTensor(size_t n, uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  rng.FillNormal(v, 0.0, 1.0);
  return v;
}

TEST(RandomK, KeepsExactlyK) {
  RandomKCompressor c(0.01);
  EXPECT_EQ(c.KeptElements(1000), 10u);
  EXPECT_EQ(c.KeptElements(100000), 1000u);
  EXPECT_EQ(c.KeptElements(5), 1u);  // floor of one element
  EXPECT_EQ(c.KeptElements(0), 0u);
}

TEST(RandomK, ValuesMatchInputAtIndices) {
  RandomKCompressor c(0.1);
  const auto input = RandomTensor(500, 1);
  CompressedTensor out;
  c.Compress(input, 7, &out);
  ASSERT_EQ(out.indices.size(), 50u);
  for (size_t i = 0; i < out.indices.size(); ++i) {
    EXPECT_EQ(out.values[i], input[out.indices[i]]);
  }
}

TEST(RandomK, SameSeedSameIndicesAcrossRanks) {
  RandomKCompressor c(0.05);
  const auto a = RandomTensor(1024, 1);
  const auto b = RandomTensor(1024, 2);  // different data
  CompressedTensor ca, cb;
  c.Compress(a, 99, &ca);
  c.Compress(b, 99, &cb);
  EXPECT_EQ(ca.indices, cb.indices);  // shared seed -> shared coordinates
}

TEST(RandomK, DifferentSeedsDifferentIndices) {
  RandomKCompressor c(0.05);
  const auto a = RandomTensor(1024, 1);
  CompressedTensor c1, c2;
  c.Compress(a, 1, &c1);
  c.Compress(a, 2, &c2);
  EXPECT_NE(c1.indices, c2.indices);
}

TEST(RandomK, DecompressRoundTrip) {
  RandomKCompressor c(0.1);
  const auto input = RandomTensor(200, 3);
  CompressedTensor payload;
  c.Compress(input, 5, &payload);
  std::vector<float> out(200, 0.0f);
  c.Decompress(payload, out);
  size_t nonzero = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] != 0.0f) {
      ++nonzero;
      EXPECT_EQ(out[i], input[i]);
    }
  }
  EXPECT_EQ(nonzero, payload.indices.size());
}

TEST(RandomK, CompressedAggregationMatchesDecompressedSum) {
  RandomKCompressor c(0.1);
  const auto a = RandomTensor(300, 1);
  const auto b = RandomTensor(300, 2);
  CompressedTensor ca, cb;
  c.Compress(a, 42, &ca);
  c.Compress(b, 42, &cb);
  ASSERT_TRUE(c.SupportsCompressedAggregation());
  CompressedTensor sum = ca;
  c.AggregateCompressed(cb, &sum);

  std::vector<float> via_compressed(300, 0.0f);
  c.Decompress(sum, via_compressed);
  std::vector<float> via_decompressed(300, 0.0f);
  c.DecompressAdd(ca, via_decompressed);
  c.DecompressAdd(cb, via_decompressed);
  for (size_t i = 0; i < 300; ++i) {
    EXPECT_FLOAT_EQ(via_compressed[i], via_decompressed[i]);
  }
}

TEST(RandomK, ByteSizeMatchesAnalytic) {
  RandomKCompressor c(0.01);
  const auto input = RandomTensor(4096, 4);
  CompressedTensor payload;
  c.Compress(input, 1, &payload);
  EXPECT_EQ(payload.ByteSize(), c.CompressedBytes(4096));
}

TEST(RandomK, RejectsInvalidRatio) {
  EXPECT_DEATH(RandomKCompressor(0.0), "");
  EXPECT_DEATH(RandomKCompressor(1.5), "");
}

}  // namespace
}  // namespace espresso

#include "src/compress/error_feedback.h"

#include <gtest/gtest.h>

#include "src/compress/efsignsgd.h"
#include "src/compress/topk.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

TEST(ErrorFeedback, ResidualIsCompressionError) {
  TopKCompressor c(0.2);
  ErrorFeedback ef;
  std::vector<float> grad(50);
  Rng rng(1);
  rng.FillNormal(grad, 0.0, 1.0);

  CompressedTensor payload;
  ef.CompressWithFeedback(c, /*tensor_id=*/0, grad, /*seed=*/0, &payload);

  std::vector<float> decompressed(grad.size(), 0.0f);
  c.DecompressAdd(payload, decompressed);
  const auto residual = ef.residual(0);
  ASSERT_EQ(residual.size(), grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    // First step: corrected == grad, so residual == grad - decompress(compress(grad)).
    EXPECT_NEAR(residual[i], grad[i] - decompressed[i], 1e-6f);
  }
}

TEST(ErrorFeedback, TelescopesAcrossSteps) {
  // Over many steps, sum(decompressed) + residual == sum(grads): nothing is lost.
  TopKCompressor c(0.1);
  ErrorFeedback ef;
  const size_t n = 64;
  std::vector<double> grad_sum(n, 0.0);
  std::vector<double> sent_sum(n, 0.0);
  Rng rng(2);
  for (int step = 0; step < 20; ++step) {
    std::vector<float> grad(n);
    rng.FillNormal(grad, 0.0, 1.0);
    for (size_t i = 0; i < n; ++i) {
      grad_sum[i] += grad[i];
    }
    CompressedTensor payload;
    ef.CompressWithFeedback(c, 7, grad, 0, &payload);
    std::vector<float> decompressed(n, 0.0f);
    c.DecompressAdd(payload, decompressed);
    for (size_t i = 0; i < n; ++i) {
      sent_sum[i] += decompressed[i];
    }
  }
  const auto residual = ef.residual(7);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sent_sum[i] + residual[i], grad_sum[i], 1e-4);
  }
}

TEST(ErrorFeedback, EventuallyTransmitsSuppressedCoordinates) {
  // A small-but-persistent coordinate must eventually be sent thanks to accumulation.
  TopKCompressor c(0.1);  // keeps 1 of 10
  ErrorFeedback ef;
  std::vector<float> grad(10, 0.0f);
  grad[3] = 1.0f;    // dominating coordinate
  grad[6] = 0.201f;  // suppressed at first
  bool coordinate6_sent = false;
  for (int step = 0; step < 10 && !coordinate6_sent; ++step) {
    CompressedTensor payload;
    ef.CompressWithFeedback(c, 0, grad, 0, &payload);
    for (uint32_t idx : payload.indices) {
      if (idx == 6) {
        coordinate6_sent = true;
      }
    }
  }
  EXPECT_TRUE(coordinate6_sent);
}

TEST(ErrorFeedback, SeparateTensorsHaveSeparateResiduals) {
  EfSignSgdCompressor c;
  ErrorFeedback ef;
  std::vector<float> a = {1.0f, 2.0f};
  std::vector<float> b = {-3.0f};
  CompressedTensor pa, pb;
  ef.CompressWithFeedback(c, 1, a, 0, &pa);
  ef.CompressWithFeedback(c, 2, b, 0, &pb);
  EXPECT_EQ(ef.residual(1).size(), 2u);
  EXPECT_EQ(ef.residual(2).size(), 1u);
  EXPECT_TRUE(ef.residual(3).empty());
}

TEST(MomentumCorrection, ReducesToPlainEfAtZero) {
  TopKCompressor c(0.2);
  ErrorFeedback plain;
  ErrorFeedback zero_momentum(0.0);
  std::vector<float> grad(40);
  Rng rng(4);
  rng.FillNormal(grad, 0.0, 1.0);
  CompressedTensor a, b;
  plain.CompressWithFeedback(c, 0, grad, 0, &a);
  zero_momentum.CompressWithFeedback(c, 0, grad, 0, &b);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.values, b.values);
}

TEST(MomentumCorrection, AmplifiesPersistentGradientsLikeLocalMomentum) {
  // DGC's momentum correction makes the transmitted stream behave as if momentum SGD
  // ran before compression: for a constant gradient g the velocity converges to
  // g / (1 - m), so the per-step transmitted mass approaches that amplified value.
  TopKCompressor c(0.5);
  std::vector<float> grad(8, 0.0f);
  grad[0] = 1.0f;
  grad[1] = 0.8f;
  auto transmitted_total = [&](double momentum) {
    ErrorFeedback ef(momentum);
    double total = 0.0;
    for (int step = 0; step < 60; ++step) {
      CompressedTensor payload;
      ef.CompressWithFeedback(c, 0, grad, 0, &payload);
      std::vector<float> out(8, 0.0f);
      c.DecompressAdd(payload, out);
      total += out[0];
    }
    return total;
  };
  const double plain = transmitted_total(0.0);
  const double with_momentum = transmitted_total(0.9);
  // 60 steps of g=1: plain sends ~60; with m=0.9 the discounted sum is ~60/(1-0.9)
  // minus the ramp-up — several times larger.
  EXPECT_NEAR(plain, 60.0, 2.0);
  EXPECT_GT(with_momentum, plain * 5.0);
  EXPECT_LT(with_momentum, plain * 10.0);
}

TEST(MomentumCorrection, StillTelescopesNothingLost) {
  // With momentum m, the transmitted total converges to the discounted gradient sum:
  // sum(decompressed) + residual == sum over t of u_t.
  TopKCompressor c(0.25);
  ErrorFeedback ef(0.5);
  const size_t n = 32;
  Rng rng(5);
  std::vector<double> u_sum(n, 0.0);
  std::vector<double> velocity(n, 0.0);
  std::vector<double> sent(n, 0.0);
  for (int step = 0; step < 30; ++step) {
    std::vector<float> grad(n);
    rng.FillNormal(grad, 0.0, 1.0);
    for (size_t i = 0; i < n; ++i) {
      velocity[i] = 0.5 * velocity[i] + grad[i];
      u_sum[i] += velocity[i];
    }
    CompressedTensor payload;
    ef.CompressWithFeedback(c, 1, grad, 0, &payload);
    std::vector<float> decompressed(n, 0.0f);
    c.DecompressAdd(payload, decompressed);
    for (size_t i = 0; i < n; ++i) {
      sent[i] += decompressed[i];
    }
  }
  const auto residual = ef.residual(1);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sent[i] + residual[i], u_sum[i], 1e-3);
  }
}

TEST(MomentumCorrectionDeathTest, RejectsInvalidMomentum) {
  EXPECT_DEATH(ErrorFeedback(-0.1), "");
  EXPECT_DEATH(ErrorFeedback(1.0), "");
}

TEST(ErrorFeedback, ResetClearsState) {
  EfSignSgdCompressor c;
  ErrorFeedback ef;
  std::vector<float> a = {1.0f, 2.0f};
  CompressedTensor payload;
  ef.CompressWithFeedback(c, 1, a, 0, &payload);
  ef.Reset();
  EXPECT_TRUE(ef.residual(1).empty());
}

}  // namespace
}  // namespace espresso

// Parameterized property sweep across every compression algorithm and a range of
// tensor sizes: the invariants every Compressor must satisfy regardless of algorithm.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/compress/compressor.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

using Param = std::tuple<std::string, size_t>;

class CompressorProperty : public ::testing::TestWithParam<Param> {
 protected:
  std::unique_ptr<Compressor> MakeCompressor() const {
    CompressorConfig config;
    config.algorithm = std::get<0>(GetParam());
    config.ratio = 0.05;
    config.bits = 4;
    return CreateCompressor(config);
  }
  size_t elements() const { return std::get<1>(GetParam()); }
};

TEST_P(CompressorProperty, AnalyticSizeMatchesActual) {
  const auto c = MakeCompressor();
  std::vector<float> input(elements());
  Rng rng(1);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c->Compress(input, 17, &payload);
  EXPECT_EQ(payload.ByteSize(), c->CompressedBytes(elements()));
  EXPECT_EQ(payload.original_elements, elements());
}

TEST_P(CompressorProperty, CompressionNeverInflates) {
  const auto c = MakeCompressor();
  if (elements() < 64) {
    return;  // tiny tensors can inflate (scale constants dominate); irrelevant in DDL
  }
  EXPECT_LE(c->CompressedBytes(elements()), elements() * sizeof(float));
}

TEST_P(CompressorProperty, DecompressAddIsAdditive) {
  const auto c = MakeCompressor();
  std::vector<float> input(elements());
  Rng rng(2);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c->Compress(input, 3, &payload);

  std::vector<float> once(elements(), 0.0f);
  c->DecompressAdd(payload, once);
  std::vector<float> twice(elements(), 0.0f);
  c->DecompressAdd(payload, twice);
  c->DecompressAdd(payload, twice);
  for (size_t i = 0; i < elements(); ++i) {
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-4f);
  }
}

TEST_P(CompressorProperty, DeterministicForFixedSeed) {
  const auto c = MakeCompressor();
  std::vector<float> input(elements());
  Rng rng(3);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor a, b;
  c->Compress(input, 1234, &a);
  c->Compress(input, 1234, &b);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.scales, b.scales);
}

TEST_P(CompressorProperty, DecompressedErrorBelowInputEnergy) {
  // decompress(compress(v)) must be a contraction-like approximation: the residual
  // energy stays strictly below the input energy (the delta-contraction property the
  // error-feedback convergence proofs need). Unbiased stochastic quantizers (QSGD,
  // TernGrad) deliberately trade this for zero bias — high variance, no contraction —
  // so they are exempt; their unbiasedness is asserted in their own test files.
  const std::string algo = std::get<0>(GetParam());
  if (algo == "qsgd" || algo == "terngrad") {
    GTEST_SKIP() << "unbiased stochastic quantizers are not contractions";
  }
  const auto c = MakeCompressor();
  std::vector<float> input(elements());
  Rng rng(4);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c->Compress(input, 5, &payload);
  std::vector<float> out(elements(), 0.0f);
  c->DecompressAdd(payload, out);
  double err = 0.0, energy = 0.0;
  for (size_t i = 0; i < elements(); ++i) {
    err += (out[i] - input[i]) * (out[i] - input[i]);
    energy += static_cast<double>(input[i]) * input[i];
  }
  EXPECT_LT(err, energy * 1.05);  // sign-style quantizers hover near but below energy
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CompressorProperty,
    ::testing::Combine(::testing::Values("randomk", "dgc", "efsignsgd", "qsgd", "terngrad",
                                         "fp16"),
                       ::testing::Values(size_t{1}, size_t{7}, size_t{64}, size_t{1000},
                                         size_t{4096}, size_t{100000})),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_" + std::to_string(std::get<1>(info.param));
    });

TEST(CompressorRegistry, CreatesEveryAlgorithm) {
  for (const char* name : {"randomk", "topk", "dgc", "efsignsgd", "qsgd", "terngrad",
                           "fp16"}) {
    CompressorConfig config;
    config.algorithm = name;
    config.bits = 4;
    auto c = CreateCompressor(config);
    ASSERT_NE(c, nullptr) << name;
  }
}

TEST(CompressorRegistry, TopkAliasesDgc) {
  CompressorConfig config;
  config.algorithm = "topk";
  EXPECT_EQ(CreateCompressor(config)->name(), "dgc");
}

TEST(CompressorRegistry, UnknownAlgorithmDies) {
  CompressorConfig config;
  config.algorithm = "zstd";
  EXPECT_DEATH(CreateCompressor(config), "unknown compression algorithm");
}

TEST(CompressorRegistry, OnlyRandomkSupportsCompressedAggregation) {
  for (const char* name : {"randomk", "dgc", "efsignsgd", "qsgd", "terngrad", "fp16"}) {
    CompressorConfig config;
    config.algorithm = name;
    config.bits = 4;
    const bool expected = std::string_view(name) == "randomk";
    EXPECT_EQ(CreateCompressor(config)->SupportsCompressedAggregation(), expected) << name;
  }
}

}  // namespace
}  // namespace espresso

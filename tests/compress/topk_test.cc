#include "src/compress/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "src/util/rng.h"

namespace espresso {
namespace {

TEST(TopK, SelectsLargestMagnitudes) {
  TopKCompressor c(0.3);
  const std::vector<float> input = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f, 1.0f, 0.0f, -2.0f,
                                    0.3f, 0.4f};
  CompressedTensor out;
  c.Compress(input, 0, &out);
  ASSERT_EQ(out.indices.size(), 3u);
  // Largest magnitudes: -5.0 (idx 1), 3.0 (idx 3), -2.0 (idx 7).
  EXPECT_EQ(out.indices[0], 1u);
  EXPECT_EQ(out.indices[1], 3u);
  EXPECT_EQ(out.indices[2], 7u);
  EXPECT_FLOAT_EQ(out.values[0], -5.0f);
}

TEST(TopK, ThresholdProperty) {
  // Every kept magnitude must be >= every dropped magnitude.
  TopKCompressor c(0.05);
  std::vector<float> input(400);
  Rng rng(9);
  rng.FillNormal(input, 0.0, 2.0);
  CompressedTensor out;
  c.Compress(input, 0, &out);
  float min_kept = std::numeric_limits<float>::max();
  std::vector<bool> kept(input.size(), false);
  for (uint32_t idx : out.indices) {
    kept[idx] = true;
    min_kept = std::min(min_kept, std::fabs(input[idx]));
  }
  for (size_t i = 0; i < input.size(); ++i) {
    if (!kept[i]) {
      EXPECT_LE(std::fabs(input[i]), min_kept);
    }
  }
}

TEST(TopK, DeterministicRegardlessOfSeed) {
  TopKCompressor c(0.1);
  std::vector<float> input(256);
  Rng rng(5);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor a, b;
  c.Compress(input, 1, &a);
  c.Compress(input, 999, &b);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.values, b.values);
}

TEST(TopK, IndicesSortedAscending) {
  TopKCompressor c(0.2);
  std::vector<float> input(128);
  Rng rng(6);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor out;
  c.Compress(input, 0, &out);
  EXPECT_TRUE(std::is_sorted(out.indices.begin(), out.indices.end()));
}

TEST(TopK, CompressionErrorSmallerThanRandomDrop) {
  // Top-k is the magnitude-optimal sparsifier: its l2 error must not exceed the error
  // of keeping the same number of random coordinates.
  std::vector<float> input(1000);
  Rng rng(12);
  rng.FillNormal(input, 0.0, 1.0);

  auto residual_norm = [&](const Compressor& c) {
    CompressedTensor payload;
    c.Compress(input, 77, &payload);
    std::vector<float> decompressed(input.size(), 0.0f);
    c.DecompressAdd(payload, decompressed);
    double err = 0.0;
    for (size_t i = 0; i < input.size(); ++i) {
      err += (input[i] - decompressed[i]) * (input[i] - decompressed[i]);
    }
    return err;
  };
  TopKCompressor topk(0.05);
  // Random selection with the same budget, via the randomk compressor.
  const double topk_err = residual_norm(topk);
  // Compare against total energy: top-k must strictly reduce it.
  double total = 0.0;
  for (float v : input) {
    total += v * v;
  }
  EXPECT_LT(topk_err, total);
}

TEST(TopK, MatchesNthElementReferencePipeline) {
  // Regression pin for the quickselect rewrite: the payload must stay byte-identical
  // to the old double-materialization pipeline — iota an index permutation,
  // nth_element by (magnitude desc, index asc), truncate to k, sort ascending.
  // Duplicated magnitudes, ±0, and denormals stress the tie-break path where the two
  // implementations could legally diverge if the fill rule were wrong.
  for (double ratio : {0.05, 0.25, 1.0}) {
    TopKCompressor c(ratio);
    for (size_t n : {1u, 33u, 1000u, 4097u}) {
      std::vector<float> input(n);
      Rng rng(DeriveSeed(31, n));
      rng.FillNormal(input, 0.0, 1.0);
      for (size_t i = 0; i + 4 < n; i += 11) {
        input[i + 4] = input[i];  // exact duplicate magnitudes
      }
      if (n > 5) {
        input[2] = 0.0f;
        input[5] = -0.0f;
        input[3] = 1e-42f;  // denormal
      }
      CompressedTensor out;
      c.Compress(input, 0, &out);
      const size_t k = c.CompressedBytes(n) / (sizeof(uint32_t) + sizeof(float));
      ASSERT_EQ(out.indices.size(), k);

      std::vector<uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::nth_element(order.begin(), order.begin() + static_cast<ptrdiff_t>(k - 1),
                       order.end(), [&](uint32_t a, uint32_t b) {
                         const float ma = std::fabs(input[a]);
                         const float mb = std::fabs(input[b]);
                         if (ma != mb) {
                           return ma > mb;
                         }
                         return a < b;
                       });
      order.resize(k);
      std::sort(order.begin(), order.end());
      for (size_t i = 0; i < k; ++i) {
        ASSERT_EQ(out.indices[i], order[i]) << "ratio " << ratio << " n " << n;
        ASSERT_EQ(std::bit_cast<uint32_t>(out.values[i]),
                  std::bit_cast<uint32_t>(input[order[i]]))
            << "ratio " << ratio << " n " << n << " slot " << i;
      }
    }
  }
}

TEST(TopK, ByteSizeMatchesAnalytic) {
  TopKCompressor c(0.01);
  std::vector<float> input(10000);
  Rng rng(2);
  rng.FillNormal(input, 0.0, 1.0);
  CompressedTensor payload;
  c.Compress(input, 0, &payload);
  EXPECT_EQ(payload.ByteSize(), c.CompressedBytes(input.size()));
}

}  // namespace
}  // namespace espresso

// Bit-identity of the vectorized kernel layer: every table in SupportedOps() must
// produce byte-for-byte the same results as the scalar reference — reductions to the
// last double ULP, quantized codes, packed bits, fp16 words, and whole compressor
// payloads. The sweep covers the vector-width boundary lengths (0, 1, 7, 8, 31, 32,
// 33, 4095, 4097), denormals, NaNs, ±0, ±inf, and unaligned head offsets, so a tail
// loop, masked lane, or alignment assumption that diverges from scalar fails here
// before it can corrupt a payload.
#include "src/compress/kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/compress/compressor.h"
#include "src/mem/arena.h"
#include "src/mem/batch_plan.h"
#include "src/util/rng.h"

namespace espresso::kernels {
namespace {

constexpr size_t kLengths[] = {0, 1, 7, 8, 31, 32, 33, 4095, 4097};
constexpr size_t kOffsets[] = {0, 1, 3};  // floats past a vector-aligned base
constexpr size_t kMaxOffset = 3;

// Normal draws with IEEE edge cases riveted in at fixed stride positions.
std::vector<float> MakeInput(size_t n, uint64_t seed, bool with_non_finite) {
  std::vector<float> v(n);
  Rng rng(seed);
  rng.FillNormal(v, 0.0, 1.0);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 19) {
      case 3: v[i] = 0.0f; break;
      case 5: v[i] = -0.0f; break;
      case 7: v[i] = std::numeric_limits<float>::denorm_min(); break;
      case 9: v[i] = -1e-42f; break;  // mid-range denormal
      case 11:
        if (with_non_finite) v[i] = std::numeric_limits<float>::infinity();
        break;
      case 13:
        if (with_non_finite) v[i] = -std::numeric_limits<float>::infinity();
        break;
      case 15:
        if (with_non_finite) v[i] = std::numeric_limits<float>::quiet_NaN();
        break;
      default: break;
    }
  }
  return v;
}

uint64_t Bits64(double d) { return std::bit_cast<uint64_t>(d); }
uint32_t Bits32(float f) { return std::bit_cast<uint32_t>(f); }

TEST(KernelEquivalence, ReductionsBitIdenticalAcrossIsasLengthsAndOffsets) {
  const KernelOps& ref = Scalar();
  for (const KernelOps* ops : SupportedOps()) {
    for (size_t n : kLengths) {
      const std::vector<float> buf = MakeInput(n + kMaxOffset, DeriveSeed(1, n), true);
      for (size_t off : kOffsets) {
        const float* x = buf.data() + off;
        EXPECT_EQ(Bits64(ops->sum_squares(x, n)), Bits64(ref.sum_squares(x, n)))
            << ops->isa << " sum_squares n=" << n << " off=" << off;
        EXPECT_EQ(Bits64(ops->sum_abs(x, n)), Bits64(ref.sum_abs(x, n)))
            << ops->isa << " sum_abs n=" << n << " off=" << off;
        EXPECT_EQ(Bits32(ops->max_abs(x, n)), Bits32(ref.max_abs(x, n)))
            << ops->isa << " max_abs n=" << n << " off=" << off;
      }
    }
  }
}

TEST(KernelEquivalence, MagnitudeScanMatchesScalar) {
  const KernelOps& ref = Scalar();
  for (const KernelOps* ops : SupportedOps()) {
    for (size_t n : kLengths) {
      const std::vector<float> buf = MakeInput(n + kMaxOffset, DeriveSeed(2, n), true);
      std::vector<uint32_t> got(n + 1, 0xA5A5A5A5u);
      std::vector<uint32_t> want(n + 1, 0xA5A5A5A5u);
      for (size_t off : kOffsets) {
        const float* x = buf.data() + off;
        ref.abs_bits(x, n, want.data());
        ops->abs_bits(x, n, got.data());
        ASSERT_EQ(std::memcmp(got.data(), want.data(), (n + 1) * sizeof(uint32_t)), 0)
            << ops->isa << " abs_bits n=" << n << " off=" << off;
        // Thresholds: below everything, a mid value, the max, and above everything.
        std::vector<uint32_t> thresholds = {0u, 0xFFFFFFFFu};
        if (n > 0) {
          thresholds.push_back(want[n / 2]);
          thresholds.push_back(*std::max_element(want.begin(), want.begin() + n));
        }
        for (uint32_t t : thresholds) {
          EXPECT_EQ(ops->count_gt_bits(want.data(), n, t),
                    ref.count_gt_bits(want.data(), n, t))
              << ops->isa << " count_gt_bits n=" << n << " t=" << t;
        }
      }
    }
  }
}

TEST(KernelEquivalence, SelectTopkMatchesScalar) {
  const KernelOps& ref = Scalar();
  for (const KernelOps* ops : SupportedOps()) {
    for (size_t n : kLengths) {
      if (n == 0) {
        continue;
      }
      const std::vector<float> buf = MakeInput(n + kMaxOffset, DeriveSeed(3, n), true);
      std::vector<uint32_t> bits(n);
      for (size_t off : kOffsets) {
        const float* x = buf.data() + off;
        ref.abs_bits(x, n, bits.data());
        for (uint32_t t : {bits[n / 2], uint32_t{0}}) {
          const size_t n_gt = ref.count_gt_bits(bits.data(), n, t);
          size_t n_eq = 0;
          for (uint32_t b : bits) {
            n_eq += b == t ? 1 : 0;
          }
          for (size_t n_fill : {size_t{0}, std::min<size_t>(2, n_eq), n_eq}) {
            std::vector<uint32_t> want_idx(n_gt + n_fill, 0xFFFFFFFFu);
            std::vector<float> want_val(n_gt + n_fill, -1.0f);
            std::vector<uint32_t> got_idx = want_idx;
            std::vector<float> got_val = want_val;
            const size_t want_count =
                ref.select_topk(x, n, t, n_fill, want_idx.data(), want_val.data());
            const size_t got_count =
                ops->select_topk(x, n, t, n_fill, got_idx.data(), got_val.data());
            ASSERT_EQ(got_count, want_count)
                << ops->isa << " select_topk n=" << n << " t=" << t;
            ASSERT_EQ(std::memcmp(got_idx.data(), want_idx.data(),
                                  want_idx.size() * sizeof(uint32_t)), 0)
                << ops->isa << " select_topk indices n=" << n;
            ASSERT_EQ(std::memcmp(got_val.data(), want_val.data(),
                                  want_val.size() * sizeof(float)), 0)
                << ops->isa << " select_topk values n=" << n;
          }
        }
      }
    }
  }
}

TEST(KernelEquivalence, QuantizersBitIdenticalAcrossIsas) {
  const KernelOps& ref = Scalar();
  const uint32_t k0 = 0x12345678u;
  const uint32_t k1 = 0x9ABCDEF0u;
  for (const KernelOps* ops : SupportedOps()) {
    for (size_t n : kLengths) {
      const std::vector<float> buf = MakeInput(n + kMaxOffset, DeriveSeed(4, n), true);
      for (size_t off : kOffsets) {
        const float* x = buf.data() + off;
        const float norm = static_cast<float>(std::sqrt(ref.sum_squares(x, n)));
        const float mabs = ref.max_abs(x, n);

        std::vector<uint8_t> want_codes(n + 1, 0xEE);
        std::vector<uint8_t> got_codes(n + 1, 0xEE);
        ref.qsgd_quantize(x, n, norm, 15, k0, k1, want_codes.data());
        ops->qsgd_quantize(x, n, norm, 15, k0, k1, got_codes.data());
        ASSERT_EQ(std::memcmp(got_codes.data(), want_codes.data(), n + 1), 0)
            << ops->isa << " qsgd n=" << n << " off=" << off;

        std::vector<uint8_t> want_tern((n + 3) / 4, 0);
        std::vector<uint8_t> got_tern((n + 3) / 4, 0);
        ref.terngrad_quantize(x, n, mabs, k0, k1, want_tern.data());
        ops->terngrad_quantize(x, n, mabs, k0, k1, got_tern.data());
        ASSERT_EQ(std::memcmp(got_tern.data(), want_tern.data(), want_tern.size()), 0)
            << ops->isa << " terngrad n=" << n << " off=" << off;

        std::vector<uint8_t> want_sign((n + 7) / 8, 0);
        std::vector<uint8_t> got_sign((n + 7) / 8, 0);
        ref.sign_pack(x, n, want_sign.data());
        ops->sign_pack(x, n, got_sign.data());
        ASSERT_EQ(std::memcmp(got_sign.data(), want_sign.data(), want_sign.size()), 0)
            << ops->isa << " sign_pack n=" << n << " off=" << off;
      }
    }
  }
}

TEST(KernelEquivalence, Fp16RoundTripBitIdenticalAcrossIsas) {
  const KernelOps& ref = Scalar();
  for (const KernelOps* ops : SupportedOps()) {
    for (size_t n : kLengths) {
      const std::vector<float> buf = MakeInput(n + kMaxOffset, DeriveSeed(5, n), true);
      for (size_t off : kOffsets) {
        const float* x = buf.data() + off;
        std::vector<uint16_t> want_half(n + 1, 0xDEAD);
        std::vector<uint16_t> got_half(n + 1, 0xDEAD);
        ref.fp16_encode(x, n, want_half.data());
        ops->fp16_encode(x, n, got_half.data());
        ASSERT_EQ(std::memcmp(got_half.data(), want_half.data(),
                              (n + 1) * sizeof(uint16_t)), 0)
            << ops->isa << " fp16_encode n=" << n << " off=" << off;

        // decode_add accumulates: seed both outputs with the same nonzero pattern.
        std::vector<float> want_out(n), got_out(n);
        for (size_t i = 0; i < n; ++i) {
          want_out[i] = got_out[i] = static_cast<float>(i % 5) * 0.25f;
        }
        ref.fp16_decode_add(want_half.data(), n, want_out.data());
        ops->fp16_decode_add(got_half.data(), n, got_out.data());
        ASSERT_EQ(std::memcmp(got_out.data(), want_out.data(), n * sizeof(float)), 0)
            << ops->isa << " fp16_decode_add n=" << n << " off=" << off;
      }
    }
  }
}

TEST(KernelEquivalence, SelectKthMagnitudeIsExactOnEveryTable) {
  std::vector<uint32_t> scratch;
  for (const KernelOps* ops : SupportedOps()) {
    for (size_t n : kLengths) {
      if (n == 0) {
        continue;
      }
      const std::vector<float> buf = MakeInput(n, DeriveSeed(6, n), true);
      std::vector<uint32_t> sorted(n);
      Scalar().abs_bits(buf.data(), n, sorted.data());
      std::sort(sorted.begin(), sorted.end(), std::greater<uint32_t>());
      for (size_t k : {size_t{1}, n / 2 + 1, n}) {
        const uint32_t t = SelectKthMagnitude(*ops, buf.data(), n, k, &scratch);
        EXPECT_EQ(t, sorted[k - 1])
            << ops->isa << " n=" << n << " k=" << k;
        // Contract: #{bits > t} < k <= #{bits >= t}, and scratch keeps abs bits.
        size_t gt = 0, ge = 0;
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(scratch[i], MagnitudeBits(buf[i])) << ops->isa << " scratch " << i;
          gt += scratch[i] > t ? 1 : 0;
          ge += scratch[i] >= t ? 1 : 0;
        }
        EXPECT_LT(gt, k);
        EXPECT_GE(ge, k);
      }
    }
  }
}

// --- Whole-compressor payload identity ------------------------------------------------

struct AlgoCase {
  const char* label;
  CompressorConfig config;
};

std::vector<AlgoCase> AllAlgorithms() {
  return {
      {"randomk", {.algorithm = "randomk", .ratio = 0.25}},
      {"topk", {.algorithm = "topk", .ratio = 0.25}},
      {"efsignsgd", {.algorithm = "efsignsgd"}},
      {"qsgd", {.algorithm = "qsgd", .bits = 4}},
      {"terngrad", {.algorithm = "terngrad"}},
      {"fp16", {.algorithm = "fp16"}},
      {"threshold", {.algorithm = "threshold", .threshold = 0.2}},
  };
}

void ExpectPayloadBitIdentical(const CompressedTensor& got, const CompressedTensor& want,
                               const char* label) {
  EXPECT_EQ(got.kind, want.kind) << label;
  EXPECT_EQ(got.original_elements, want.original_elements) << label;
  ASSERT_EQ(got.indices, want.indices) << label;
  ASSERT_EQ(got.values.size(), want.values.size()) << label;
  EXPECT_EQ(std::memcmp(got.values.data(), want.values.data(),
                        want.values.size() * sizeof(float)), 0)
      << label << " values";
  ASSERT_EQ(got.bytes, want.bytes) << label;
  ASSERT_EQ(got.scales.size(), want.scales.size()) << label;
  EXPECT_EQ(std::memcmp(got.scales.data(), want.scales.data(),
                        want.scales.size() * sizeof(float)), 0)
      << label << " scales";
}

TEST(KernelEquivalence, CompressorPayloadsIdenticalAcrossIsas) {
  for (const AlgoCase& algo : AllAlgorithms()) {
    const auto compressor = CreateCompressor(algo.config);
    for (size_t n : {size_t{1}, size_t{33}, size_t{4097}}) {
      const std::vector<float> input = MakeInput(n, DeriveSeed(7, n), false);
      SetActiveForTesting(&Scalar());
      CompressedTensor want;
      compressor->Compress(input, 42, &want);
      for (const KernelOps* ops : SupportedOps()) {
        SetActiveForTesting(ops);
        CompressedTensor got;
        compressor->Compress(input, 42, &got);
        ExpectPayloadBitIdentical(got, want,
                                  (std::string(algo.label) + "/" + ops->isa).c_str());
      }
      SetActiveForTesting(nullptr);
    }
  }
}

TEST(KernelEquivalence, CompressBatchMatchesPerItemCompress) {
  const size_t sizes[] = {1, 7, 33, 1024, 4096};
  for (const AlgoCase& algo : AllAlgorithms()) {
    const auto compressor = CreateCompressor(algo.config);
    mem::Arena arena;
    mem::BatchedCompressPlan plan;
    size_t padded_total = 0;
    for (size_t n : sizes) {
      padded_total += mem::BatchedCompressPlan::Padded(n);
    }
    mem::ArenaScope scope(arena);
    plan.Begin(arena, padded_total);
    std::vector<CompressedTensor> batched(std::size(sizes));
    std::vector<std::vector<float>> inputs;
    for (size_t t = 0; t < std::size(sizes); ++t) {
      inputs.push_back(MakeInput(sizes[t], DeriveSeed(8, t), false));
      std::span<float> slot = plan.Stage(sizes[t], DeriveSeed(9, t), &batched[t]);
      std::copy(inputs[t].begin(), inputs[t].end(), slot.begin());
    }
    plan.Execute(*compressor);
    for (size_t t = 0; t < std::size(sizes); ++t) {
      CompressedTensor want;
      compressor->Compress(inputs[t], DeriveSeed(9, t), &want);
      ExpectPayloadBitIdentical(batched[t], want, algo.label);
    }
  }
}

TEST(KernelEquivalence, RegistryExposesScalarFirstAndHostFeatures) {
  const std::vector<const KernelOps*>& tables = SupportedOps();
  ASSERT_FALSE(tables.empty());
  EXPECT_STREQ(tables[0]->isa, "scalar");
  EXPECT_EQ(tables[0], &Scalar());
  // Active() must be one of the supported tables, and the test override must win.
  const KernelOps& active = Active();
  EXPECT_NE(std::find(tables.begin(), tables.end(), &active), tables.end());
  SetActiveForTesting(&Scalar());
  EXPECT_EQ(&Active(), &Scalar());
  SetActiveForTesting(nullptr);
  // Feature list is host-truth; scalar builds still report the cpu's features.
  for (const char* f : HostIsaFeatures()) {
    EXPECT_NE(f, nullptr);
  }
}

}  // namespace
}  // namespace espresso::kernels

#include "src/util/json_reader.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace espresso {
namespace {

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null").value.IsNull());
  EXPECT_TRUE(ParseJson("true").value.bool_value);
  EXPECT_FALSE(ParseJson("false").value.bool_value);
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e3").value.number, -2500.0);
  EXPECT_EQ(ParseJson("\"hi\\n\\\"there\\\"\"").value.text, "hi\n\"there\"");
}

TEST(JsonReader, ParsesNestedStructure) {
  const JsonParseResult r = ParseJson(R"({
    "a": [1, 2, {"b": true}],
    "c": {"d": null}
  })");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.IsObject());
  const JsonValue* a = r.value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_TRUE(a->items[2].Find("b")->bool_value);
  EXPECT_TRUE(r.value.Find("c")->Find("d")->IsNull());
  EXPECT_EQ(r.value.Find("missing"), nullptr);
}

TEST(JsonReader, TracksLineNumbers) {
  const JsonParseResult r = ParseJson("{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.line, 1);
  EXPECT_EQ(r.value.Find("a")->line, 2);
  EXPECT_EQ(r.value.Find("b")->line, 3);
  EXPECT_EQ(r.value.Find("b")->items[0].line, 4);
}

TEST(JsonReader, Uint64RoundTripsExactly) {
  // 2^64 - 1 is not representable as a double; the raw-token read must be exact.
  uint64_t value = 0;
  ASSERT_TRUE(ParseJson("18446744073709551615").value.AsUint64(&value));
  EXPECT_EQ(value, 18446744073709551615ull);
  int64_t negative = 0;
  ASSERT_TRUE(ParseJson("-9223372036854775808").value.AsInt64(&negative));
  EXPECT_EQ(negative, INT64_MIN);
}

TEST(JsonReader, IntegerReadsRejectNonIntegers) {
  uint64_t value = 0;
  EXPECT_FALSE(ParseJson("1.5").value.AsUint64(&value));
  EXPECT_FALSE(ParseJson("-1").value.AsUint64(&value));
  EXPECT_FALSE(ParseJson("18446744073709551616").value.AsUint64(&value));  // 2^64
  EXPECT_FALSE(ParseJson("\"7\"").value.AsUint64(&value));
  int64_t signed_value = 0;
  EXPECT_FALSE(ParseJson("9223372036854775808").value.AsInt64(&signed_value));
}

TEST(JsonReader, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",           "[1,]",          "{\"a\":}",
      "{\"a\" 1}",  "[1 2]",       "tru",           "01",
      "+1",         "1.",          "\"unterminated", "{\"a\":1} trailing",
      "[1],",       "nan",         "\"bad\\x\"",    "{'a': 1}",
  };
  for (const char* text : bad) {
    const JsonParseResult r = ParseJson(text);
    EXPECT_FALSE(r.ok) << "accepted: " << text;
    EXPECT_FALSE(r.error.empty()) << text;
  }
}

TEST(JsonReader, ErrorsCiteTheLine) {
  const JsonParseResult r = ParseJson("{\n  \"a\": 1,\n  \"b\": tru\n}");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
}

TEST(JsonReader, BoundsNestingDepth) {
  // 100 nested arrays exceeds the depth cap; the parser must diagnose, not overflow.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  const JsonParseResult r = ParseJson(deep);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("nest"), std::string::npos) << r.error;
}

TEST(JsonReader, KeepsDuplicateKeysInFileOrder) {
  // The DOM layer preserves duplicates (Find returns the first); schema layers that
  // must refuse duplicates (the strategy IR) do so themselves.
  const JsonParseResult r = ParseJson("{\"a\": 1, \"a\": 2}");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.value.members.size(), 2u);
  EXPECT_DOUBLE_EQ(r.value.Find("a")->number, 1.0);
}

}  // namespace
}  // namespace espresso

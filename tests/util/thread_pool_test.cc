#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace espresso {
namespace {

TEST(ThreadPool, InlineModeRunsImmediately) {
  ThreadPool pool(0);
  int value = 0;
  pool.Submit([&] { value = 42; });
  EXPECT_EQ(value, 42);  // no Wait needed: inline execution
  pool.Wait();
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace espresso

#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

namespace espresso {
namespace {

TEST(ThreadPool, InlineModeRunsImmediately) {
  ThreadPool pool(0);
  int value = 0;
  pool.Submit([&] { value = 42; });
  EXPECT_EQ(value, 42);  // no Wait needed: inline execution
  pool.Wait();
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(TaskGroup, InlinePoolRunsImmediately) {
  ThreadPool pool(0);
  TaskGroup group;
  int value = 0;
  pool.Submit(group, [&] { value = 7; });
  EXPECT_EQ(value, 7);
  EXPECT_EQ(group.pending(), 0u);
  group.Wait();  // trivially returns
}

TEST(TaskGroup, WaitCoversOwnTasks) {
  ThreadPool pool(4);
  TaskGroup group;
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit(group, [&] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 64);
  // Reusable after draining.
  pool.Submit(group, [&] { counter.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(counter.load(), 65);
}

// THE regression for the global-wait serialization bug: group A's Wait() must return
// while group B's task is still running. Pre-fix (each request calling the pool-global
// Wait()), A's wait could only return once B's task finished too — but B's task here
// finishes only AFTER A's wait returns, so the old semantics deadlock this test.
TEST(TaskGroup, WaitDoesNotWaitForOtherGroups) {
  ThreadPool pool(2);
  TaskGroup group_a;
  TaskGroup group_b;
  std::promise<void> release_b;
  std::shared_future<void> release_b_future(release_b.get_future());
  std::atomic<bool> b_finished{false};

  pool.Submit(group_b, [&, release_b_future] {
    release_b_future.wait();
    b_finished.store(true);
  });
  std::atomic<int> a_done{0};
  pool.Submit(group_a, [&] { a_done.fetch_add(1); });

  group_a.Wait();  // must not block on group B's still-pending task
  EXPECT_EQ(a_done.load(), 1);
  EXPECT_FALSE(b_finished.load());
  EXPECT_EQ(group_b.pending(), 1u);

  release_b.set_value();  // only now may B finish
  group_b.Wait();
  EXPECT_TRUE(b_finished.load());
  EXPECT_EQ(group_b.pending(), 0u);
}

// TSan-covered: concurrent submitters and waiters over a shared pool, each client
// seeing exactly its own task count. Mirrors the selection service's request fan-out.
TEST(TaskGroup, ConcurrentGroupsCompleteIndependentlyUnderLoad) {
  ThreadPool pool(4);
  constexpr int kClients = 8;
  constexpr int kTasksPerClient = 200;
  std::vector<std::thread> clients;
  std::atomic<int> total{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        TaskGroup group;
        std::atomic<int> own{0};
        for (int i = 0; i < kTasksPerClient; ++i) {
          pool.Submit(group, [&own, &total] {
            own.fetch_add(1);
            total.fetch_add(1);
          });
        }
        group.Wait();
        EXPECT_EQ(own.load(), kTasksPerClient);
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(total.load(), kClients * 3 * kTasksPerClient);
  pool.Wait();
}

// TSan-covered regression: a TaskGroup destroyed the instant Wait() returns
// (the ServeConnection pattern — group on the stack, short-lived tasks). The
// original TaskFinished released mu_ BEFORE notify_all, so a waiter could
// observe pending_ == 0, return, and destroy the group while the worker was
// still about to touch the freed condition variable. Under TSan the old code
// reports a data race on ~TaskGroup within a few thousand rounds.
TEST(TaskGroup, DestroyImmediatelyAfterWaitReturnsIsSafe) {
  ThreadPool pool(4);
  for (int round = 0; round < 20000; ++round) {
    TaskGroup group;
    for (int t = 0; t < 3; ++t) {
      pool.Submit(group, [] {});
    }
    group.Wait();
  }
}

}  // namespace
}  // namespace espresso

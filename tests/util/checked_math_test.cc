#include "src/util/checked_math.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

TEST(CheckedMath, SaturatingAdd) {
  EXPECT_EQ(SaturatingAdd(2, 3), 5u);
  EXPECT_EQ(SaturatingAdd(kSaturated, 0), kSaturated);
  EXPECT_EQ(SaturatingAdd(kSaturated, 1), kSaturated);
  EXPECT_EQ(SaturatingAdd(kSaturated - 1, 1), kSaturated);
  EXPECT_EQ(SaturatingAdd(kSaturated / 2 + 1, kSaturated / 2 + 1), kSaturated);
}

TEST(CheckedMath, SaturatingMul) {
  EXPECT_EQ(SaturatingMul(6, 7), 42u);
  EXPECT_EQ(SaturatingMul(0, kSaturated), 0u);
  EXPECT_EQ(SaturatingMul(kSaturated, 0), 0u);
  EXPECT_EQ(SaturatingMul(kSaturated, 1), kSaturated);
  EXPECT_EQ(SaturatingMul(kSaturated / 2, 3), kSaturated);
}

TEST(CheckedMath, SaturatingPow2) {
  EXPECT_EQ(SaturatingPow2(0), 1u);
  EXPECT_EQ(SaturatingPow2(10), 1024u);
  EXPECT_EQ(SaturatingPow2(63), size_t{1} << 63);
  // At and beyond the word size the shift is undefined behavior; saturate instead.
  EXPECT_EQ(SaturatingPow2(64), kSaturated);
  EXPECT_EQ(SaturatingPow2(1000), kSaturated);
}

}  // namespace
}  // namespace espresso

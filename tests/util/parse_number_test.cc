#include "src/util/parse_number.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace espresso {
namespace {

TEST(ParseNumber, DoubleHappyPath) {
  double d = -1.0;
  EXPECT_EQ(ParseDouble("0.25", &d), NumberParse::kOk);
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_EQ(ParseDouble("-3.5e2", &d), NumberParse::kOk);
  EXPECT_DOUBLE_EQ(d, -350.0);
  EXPECT_EQ(ParseDouble("+1.5", &d), NumberParse::kOk);  // sto* compatibility
  EXPECT_DOUBLE_EQ(d, 1.5);
  EXPECT_EQ(ParseDouble("42", &d), NumberParse::kOk);
  EXPECT_DOUBLE_EQ(d, 42.0);
}

TEST(ParseNumber, DoubleMalformed) {
  double d = 7.0;
  EXPECT_EQ(ParseDouble("", &d), NumberParse::kMalformed);
  EXPECT_EQ(ParseDouble("abc", &d), NumberParse::kMalformed);
  EXPECT_EQ(ParseDouble("1.5x", &d), NumberParse::kMalformed);  // trailing garbage
  EXPECT_EQ(ParseDouble(" 1.5", &d), NumberParse::kMalformed);  // no whitespace skip
  EXPECT_EQ(ParseDouble("++1", &d), NumberParse::kMalformed);
  EXPECT_EQ(ParseDouble("0,25", &d), NumberParse::kMalformed);  // comma is never a
                                                                // decimal separator
  EXPECT_DOUBLE_EQ(d, 7.0);  // *out untouched on failure
}

TEST(ParseNumber, DoubleOutOfRangeDiagnosesInsteadOfThrowing) {
  double d = 7.0;
  EXPECT_EQ(ParseDouble("1e999", &d), NumberParse::kOutOfRange);
  EXPECT_EQ(ParseDouble("-1e999", &d), NumberParse::kOutOfRange);
  EXPECT_DOUBLE_EQ(d, 7.0);
}

TEST(ParseNumber, Int64) {
  int64_t v = 0;
  EXPECT_EQ(ParseInt64("-42", &v), NumberParse::kOk);
  EXPECT_EQ(v, -42);
  EXPECT_EQ(ParseInt64("+7", &v), NumberParse::kOk);
  EXPECT_EQ(v, 7);
  EXPECT_EQ(ParseInt64("9223372036854775807", &v), NumberParse::kOk);
  EXPECT_EQ(v, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseInt64("9223372036854775808", &v), NumberParse::kOutOfRange);
  EXPECT_EQ(ParseInt64("1.5", &v), NumberParse::kMalformed);
  EXPECT_EQ(ParseInt64("", &v), NumberParse::kMalformed);
}

TEST(ParseNumber, Uint64) {
  uint64_t v = 0;
  EXPECT_EQ(ParseUint64("18446744073709551615", &v), NumberParse::kOk);
  EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(ParseUint64("18446744073709551616", &v), NumberParse::kOutOfRange);
  EXPECT_EQ(ParseUint64("99999999999999999999", &v), NumberParse::kOutOfRange);
  EXPECT_EQ(ParseUint64("-1", &v), NumberParse::kMalformed);
}

TEST(ParseNumber, OptionalWrappers) {
  EXPECT_EQ(ParseDoubleOpt("0.5"), 0.5);
  EXPECT_EQ(ParseDoubleOpt("1e999"), std::nullopt);
  EXPECT_EQ(ParseInt64Opt("-3"), -3);
  EXPECT_EQ(ParseUint64Opt("3"), 3u);
  EXPECT_EQ(ParseUint64Opt("x"), std::nullopt);
}

TEST(ParseNumber, Messages) {
  EXPECT_STREQ(NumberParseMessage(NumberParse::kMalformed), "is not a number");
  EXPECT_STREQ(NumberParseMessage(NumberParse::kOutOfRange), "is out of range");
}

}  // namespace
}  // namespace espresso

#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

TEST(Summarize, Basic) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.118, 1e-3);
}

TEST(Summarize, Empty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const Summary s = Summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Percentile, Endpoints) {
  std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 75.0), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 37.0), 42.0);
}

TEST(EmpiricalCdf, SortedAndCumulative) {
  const auto cdf = EmpiricalCdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative, 0.25);
  EXPECT_DOUBLE_EQ(cdf[3].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[3].cumulative, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].cumulative, cdf[i - 1].cumulative);
  }
}

}  // namespace
}  // namespace espresso

#include "src/util/config.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

TEST(ConfigFile, ParsesSectionsKeysAndComments) {
  const ConfigFile c = ConfigFile::ParseString(R"(
# leading comment
[model]
name = gpt2      # trailing comment
batch_size = 80
[cluster]
testbed = nvlink ; another comment style
)");
  ASSERT_TRUE(c.ok()) << c.error();
  EXPECT_EQ(c.Get("model", "name"), "gpt2");
  EXPECT_EQ(c.GetInt("model", "batch_size"), 80);
  EXPECT_EQ(c.Get("cluster", "testbed"), "nvlink");
  EXPECT_TRUE(c.HasSection("model"));
  EXPECT_FALSE(c.HasSection("compression"));
}

TEST(ConfigFile, MissingKeysReturnNullopt) {
  const ConfigFile c = ConfigFile::ParseString("[a]\nx = 1\n");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c.Get("a", "y").has_value());
  EXPECT_FALSE(c.Get("b", "x").has_value());
  EXPECT_EQ(c.GetOr("a", "y", "fallback"), "fallback");
}

TEST(ConfigFile, TypedGettersRejectGarbage) {
  const ConfigFile c = ConfigFile::ParseString("[a]\nx = 12abc\ny = maybe\nz = 2.5\n");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c.GetInt("a", "x").has_value());
  EXPECT_FALSE(c.GetBool("a", "y").has_value());
  EXPECT_EQ(c.GetDouble("a", "z"), 2.5);
}

TEST(ConfigFile, BoolSpellings) {
  const ConfigFile c =
      ConfigFile::ParseString("[a]\nt1 = true\nt2 = 1\nt3 = on\nf1 = false\nf2 = no\n");
  for (const char* key : {"t1", "t2", "t3"}) {
    EXPECT_EQ(c.GetBool("a", key), true) << key;
  }
  for (const char* key : {"f1", "f2"}) {
    EXPECT_EQ(c.GetBool("a", key), false) << key;
  }
}

TEST(ConfigFile, EntriesPreserveOrderAndDuplicates) {
  const ConfigFile c = ConfigFile::ParseString(R"(
[tensors]
c = 3, 1
a = 1, 2
a = 9, 9
b = 2, 3
)");
  const auto entries = c.Entries("tensors");
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].first, "c");
  EXPECT_EQ(entries[1].first, "a");
  EXPECT_EQ(entries[2].second, "9, 9");
  EXPECT_EQ(entries[3].first, "b");
}

TEST(ConfigFile, MalformedInputReportsLine) {
  EXPECT_FALSE(ConfigFile::ParseString("[oops\n").ok());
  EXPECT_FALSE(ConfigFile::ParseString("[a]\nno_equals_here\n").ok());
  EXPECT_FALSE(ConfigFile::ParseString("[a]\n = value\n").ok());
  const ConfigFile bad = ConfigFile::ParseString("[a]\nx = 1\nbroken\n");
  EXPECT_NE(bad.error().find("line 3"), std::string::npos);
}

TEST(ConfigFile, LoadMissingFileFails) {
  const ConfigFile c = ConfigFile::Load("/nonexistent/path.ini");
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.error().find("cannot open"), std::string::npos);
}

TEST(ConfigFile, GetDoubleOrRangeChecksWithDiagnostics) {
  const ConfigFile c = ConfigFile::ParseString(
      "[faults]\n"
      "ok = 0.5\n"
      "too_big = 1.7\n"
      "not_a_number = oops\n");
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c.GetDoubleOr("faults", "ok", 0.1, 0.0, 1.0), 0.5);
  // Missing key: silent fallback, no warning.
  EXPECT_DOUBLE_EQ(c.GetDoubleOr("faults", "absent", 0.1, 0.0, 1.0), 0.1);
  EXPECT_TRUE(c.warnings().empty());
  // Out of range and malformed values fall back AND warn, citing the line.
  EXPECT_DOUBLE_EQ(c.GetDoubleOr("faults", "too_big", 0.2, 0.0, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(c.GetDoubleOr("faults", "not_a_number", 0.3, 0.0, 1.0), 0.3);
  ASSERT_EQ(c.warnings().size(), 2u);
  EXPECT_NE(c.warnings()[0].find("line 3"), std::string::npos);
  EXPECT_NE(c.warnings()[0].find("too_big"), std::string::npos);
  EXPECT_NE(c.warnings()[0].find("out of range"), std::string::npos);
  EXPECT_NE(c.warnings()[1].find("line 4"), std::string::npos);
}

TEST(ConfigFile, GetIntOrRangeChecksWithDiagnostics) {
  const ConfigFile c = ConfigFile::ParseString(
      "[retry]\n"
      "max_attempts = 100\n"
      "base = 3\n");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.GetIntOr("retry", "base", 1, 0, 10), 3);
  EXPECT_EQ(c.GetIntOr("retry", "missing", 7, 0, 10), 7);
  EXPECT_TRUE(c.warnings().empty());
  EXPECT_EQ(c.GetIntOr("retry", "max_attempts", 4, 1, 64), 4);
  ASSERT_EQ(c.warnings().size(), 1u);
  EXPECT_NE(c.warnings()[0].find("max_attempts"), std::string::npos);
  EXPECT_NE(c.warnings()[0].find("[1, 64]"), std::string::npos);
}

TEST(SplitFields, SplitsAndTrims) {
  const auto fields = SplitFields(" a ,  b,c ,, d ", ",");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[3], "d");
}

TEST(TrimView, Trims) {
  EXPECT_EQ(TrimView("  x  "), "x");
  EXPECT_EQ(TrimView("\t\n"), "");
  EXPECT_EQ(TrimView("abc"), "abc");
}

}  // namespace
}  // namespace espresso

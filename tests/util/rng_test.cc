#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace espresso {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformRealBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(3);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint32_t v : sample) {
    EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(16, 16);
  std::sort(sample.begin(), sample.end());
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sample[i], i);
  }
}

TEST(Rng, SampleWithoutReplacementCoversUniformly) {
  // Each index should be picked roughly k/n of the time across many draws.
  std::vector<int> hits(20, 0);
  for (uint64_t s = 0; s < 2000; ++s) {
    Rng rng(s);
    for (uint32_t v : rng.SampleWithoutReplacement(20, 5)) {
      ++hits[v];
    }
  }
  for (int h : hits) {
    EXPECT_GT(h, 350);  // expectation 500
    EXPECT_LT(h, 650);
  }
}

TEST(DeriveSeed, DistinctStreams) {
  std::set<uint64_t> seeds;
  for (uint64_t s = 0; s < 1000; ++s) {
    seeds.insert(DeriveSeed(123, s));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(DeriveSeed(5, 9), DeriveSeed(5, 9));
  EXPECT_NE(DeriveSeed(5, 9), DeriveSeed(5, 10));
  EXPECT_NE(DeriveSeed(5, 9), DeriveSeed(6, 9));
}

TEST(Rng, FillNormalFillsEveryElement) {
  Rng rng(1);
  std::vector<float> v(257, 123.0f);
  rng.FillNormal(v, 0.0, 1.0);
  int unchanged = 0;
  for (float x : v) {
    if (x == 123.0f) {
      ++unchanged;
    }
  }
  EXPECT_EQ(unchanged, 0);
}

}  // namespace
}  // namespace espresso

#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

TEST(Logging, LevelRoundTrip) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(Logging, BelowThresholdDoesNotEvaluate) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // The streaming expression after ESP_LOG must not run when filtered out.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "x";
  };
  ESP_LOG(kDebug) << count();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(saved);
}

TEST(CheckMacros, PassingChecksAreSilent) {
  ESP_CHECK(true);
  ESP_CHECK_EQ(1, 1);
  ESP_CHECK_NE(1, 2);
  ESP_CHECK_LT(1, 2);
  ESP_CHECK_LE(2, 2);
  ESP_CHECK_GT(3, 2);
  ESP_CHECK_GE(3, 3);
}

TEST(CheckMacrosDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(ESP_CHECK(false) << "boom", "Check failed");
  EXPECT_DEATH(ESP_CHECK_EQ(1, 2), "1 vs 2");
}

}  // namespace
}  // namespace espresso

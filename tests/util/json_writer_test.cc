#include "src/util/json_writer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace espresso {
namespace {

TEST(JsonWriter, ObjectWithFields) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Field("name", "espresso");
  w.Field("count", 3);
  w.Field("ok", true);
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"name":"espresso","count":3,"ok":true})");
}

TEST(JsonWriter, NestedArray) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("xs");
  w.BeginArray();
  w.Value(int64_t{1});
  w.Value(int64_t{2});
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"xs":[1,2]})");
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  JsonWriter w(os);
  w.Value(std::string_view("a\"b\\c\nd"));
  EXPECT_EQ(os.str(), R"("a\"b\\c\nd")");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  w.Value(1.5);
  w.Value(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(os.str(), "[1.5,null]");
}

TEST(JsonWriter, ArrayOfObjects) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  for (int i = 0; i < 2; ++i) {
    w.BeginObject();
    w.Field("i", i);
    w.EndObject();
  }
  w.EndArray();
  EXPECT_EQ(os.str(), R"([{"i":0},{"i":1}])");
}

}  // namespace
}  // namespace espresso

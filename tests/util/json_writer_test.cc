#include "src/util/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/util/rng.h"

namespace espresso {
namespace {

TEST(JsonWriter, ObjectWithFields) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Field("name", "espresso");
  w.Field("count", 3);
  w.Field("ok", true);
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"name":"espresso","count":3,"ok":true})");
}

TEST(JsonWriter, NestedArray) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("xs");
  w.BeginArray();
  w.Value(int64_t{1});
  w.Value(int64_t{2});
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"xs":[1,2]})");
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  JsonWriter w(os);
  w.Value(std::string_view("a\"b\\c\nd"));
  EXPECT_EQ(os.str(), R"("a\"b\\c\nd")");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  w.Value(1.5);
  w.Value(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(os.str(), "[1.5,null]");
}

// Regression: Value(double) used to stream through std::setprecision(12), which is
// lossy (doubles need up to 17 significant digits to round-trip). Every double the
// writer emits must strtod back to the exact same bits.
TEST(JsonWriter, DoublesRoundTripExactly) {
  Rng rng(42);
  std::vector<double> values = {0.0,   -0.0,     1.0,    0.1,       1e-300, 1e300,
                                1e-12, 28.1478084835107,  0.30000000000000004,
                                2.2250738585072014e-308,  1.7976931348623157e308};
  for (int i = 0; i < 2000; ++i) {
    // Mix magnitudes: uniform mantissas over a wide exponent range.
    const double mantissa = rng.Uniform(-1.0, 1.0);
    const double exponent = rng.Uniform(-300.0, 300.0);
    values.push_back(mantissa * std::pow(10.0, exponent));
  }
  for (const double v : values) {
    const std::string text = FormatDouble(v);
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    ASSERT_NE(end, text.c_str());
    EXPECT_EQ(*end, '\0') << text;
    EXPECT_EQ(parsed, v) << "lossy round-trip: " << text;
    // And through the writer itself (which must emit the same shortest form).
    std::ostringstream os;
    JsonWriter w(os);
    w.Value(v);
    EXPECT_EQ(os.str(), text);
  }
}

// Regression: setprecision is a sticky manipulator — writing a double used to leave
// the caller's stream with precision 12 for everything written afterwards.
TEST(JsonWriter, DoubleWriteDoesNotMutateStreamState) {
  std::ostringstream os;
  os << std::setprecision(6);
  {
    JsonWriter w(os);
    w.Value(1.0 / 3.0);
  }
  os << " " << 1.0 / 3.0;
  // The trailing plain stream insert still uses the stream's own precision (6).
  EXPECT_NE(os.str().find(" 0.333333"), std::string::npos) << os.str();
  EXPECT_EQ(os.precision(), 6);
}

TEST(JsonWriter, ArrayOfObjects) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray();
  for (int i = 0; i < 2; ++i) {
    w.BeginObject();
    w.Field("i", i);
    w.EndObject();
  }
  w.EndArray();
  EXPECT_EQ(os.str(), R"([{"i":0},{"i":1}])");
}

}  // namespace
}  // namespace espresso

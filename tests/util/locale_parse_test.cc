// Regression tests for locale-dependent numeric parsing (the de_DE bug).
//
// std::stod follows the process's LC_NUMERIC: under a comma-decimal locale,
// strtod("0.25") stops at the '.' and returns 0.0 — so every fraction in every
// config file, .esp strategy, and job description silently became 0 the moment a
// long-lived service process touched setlocale. The parsers now go through
// std::from_chars (src/util/parse_number.h), which is locale-independent by
// specification; these tests pin that by running the INI / .esp / job-config
// round trips WITH a comma-decimal locale installed as the global locale.
//
// The fixture materializes de_DE.UTF-8 on the fly with localedef + LOCPATH, so the
// test runs on minimal containers that ship no locales; when localedef is missing
// or refuses, the locale legs are skipped (the out-of-range legs still run from
// parse_number_test.cc, which needs no locale).
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/strategy_io.h"
#include "src/ddl/job_config.h"
#include "src/util/config.h"

namespace espresso {
namespace {

// Compiles de_DE.UTF-8 into a temp dir once per process; returns "" on failure.
const std::string& GeneratedLocaleDir() {
  static const std::string dir = [] {
    const char* tmp = std::getenv("TMPDIR");
    std::string d = std::string(tmp != nullptr ? tmp : "/tmp") + "/espresso-locale-XXXXXX";
    if (mkdtemp(d.data()) == nullptr) {
      return std::string();
    }
    const std::string cmd =
        "localedef -i de_DE -f UTF-8 '" + d + "/de_DE.UTF-8' 2>/dev/null";
    if (std::system(cmd.c_str()) != 0) {
      return std::string();
    }
    return d;
  }();
  return dir;
}

class CommaDecimalLocaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_locale_ = std::setlocale(LC_ALL, nullptr);
    // Try locales already installed on the host first.
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8"}) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        active_ = name;
        return;
      }
    }
    // Build one: localedef compiles the de_DE source into a directory that glibc
    // will search via LOCPATH.
    const std::string& dir = GeneratedLocaleDir();
    if (dir.empty()) {
      GTEST_SKIP() << "localedef unavailable; comma-decimal locale leg skipped";
    }
    setenv("LOCPATH", dir.c_str(), 1);
    if (std::setlocale(LC_ALL, "de_DE.UTF-8") == nullptr) {
      GTEST_SKIP() << "generated de_DE.UTF-8 did not load";
    }
    active_ = "de_DE.UTF-8 (generated)";
  }

  void TearDown() override {
    if (!saved_locale_.empty()) {
      std::setlocale(LC_ALL, saved_locale_.c_str());
    }
    unsetenv("LOCPATH");
  }

  // Confirms the fixture actually installed a comma-decimal locale — otherwise the
  // tests below would pass vacuously.
  void AssertCommaLocaleActive() {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.1f", 1.5);
    ASSERT_STREQ(buffer, "1,5") << "locale " << active_ << " is not comma-decimal";
  }

  std::string saved_locale_;
  std::string active_;
};

TEST_F(CommaDecimalLocaleTest, IniDoubleParsesDotDecimal) {
  AssertCommaLocaleActive();
  const ConfigFile config = ConfigFile::ParseString(
      "[compression]\n"
      "ratio = 0.25\n"
      "threshold = 1.5e-3\n");
  ASSERT_TRUE(config.ok());
  // Pre-fix: stod stopped at '.' and returned 0.0 under de_DE.
  EXPECT_EQ(config.GetDouble("compression", "ratio"), 0.25);
  EXPECT_EQ(config.GetDouble("compression", "threshold"), 1.5e-3);
  EXPECT_EQ(config.GetDoubleOr("compression", "ratio", 9.0, 0.0, 1.0), 0.25);
  EXPECT_TRUE(config.warnings().empty());
}

TEST_F(CommaDecimalLocaleTest, StrategyRoundTripPreservesFractions) {
  AssertCommaLocaleActive();
  Strategy strategy;
  CompressionOption option;
  option.label = "fractional";
  Op compress;
  compress.task = ActionTask::kCompress;
  compress.device = Device::kGpu;
  compress.phase = CommPhase::kFlat;
  compress.domain_fraction = 0.25;
  compress.payload_fraction = 0.125;
  compress.fan_in = 1;
  compress.compressed = true;
  option.ops.push_back(compress);
  Op comm;
  comm.task = ActionTask::kComm;
  comm.routine = Routine::kAllreduce;
  comm.phase = CommPhase::kFlat;
  comm.domain_fraction = 0.25;
  comm.payload_fraction = 0.125;
  comm.fan_in = 1;
  comm.compressed = true;
  option.ops.push_back(comm);
  strategy.options.push_back(option);

  const std::string text = StrategyToString(strategy);
  const StrategyParseResult parsed = StrategyFromString(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.strategy.options.size(), 1u);
  ASSERT_EQ(parsed.strategy.options[0].ops.size(), 2u);
  // Pre-fix: domain/payload came back 0.0 (then failed the (0,1] range check).
  EXPECT_DOUBLE_EQ(parsed.strategy.options[0].ops[0].domain_fraction, 0.25);
  EXPECT_DOUBLE_EQ(parsed.strategy.options[0].ops[0].payload_fraction, 0.125);
  EXPECT_TRUE(parsed.strategy.options[0] == strategy.options[0]);
}

TEST_F(CommaDecimalLocaleTest, JobConfigRoundTripPreservesFractions) {
  AssertCommaLocaleActive();
  const ConfigFile model = ConfigFile::ParseString(
      "[model]\n"
      "label = tiny\n"
      "forward_ms = 12.5\n"
      "[tensors]\n"
      "fc.weight = 1024, 0.75\n");
  const ConfigFile gc = ConfigFile::ParseString(
      "[compression]\n"
      "algorithm = randomk\n"
      "ratio = 0.05\n");
  const ConfigFile system = ConfigFile::ParseString(
      "[cluster]\n"
      "testbed = nvlink\n"
      "inter_gbps = 25.5\n");
  const JobConfigResult result = LoadJobConfig(model, gc, system);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.job.model.forward_time_s, 12.5e-3);
  ASSERT_EQ(result.job.model.tensors.size(), 1u);
  EXPECT_DOUBLE_EQ(result.job.model.tensors[0].backward_time_s, 0.75e-3);
  EXPECT_DOUBLE_EQ(result.job.compressor.ratio, 0.05);
  EXPECT_DOUBLE_EQ(result.job.cluster.inter.bytes_per_second, 25.5e9 / 8.0);
}

// Out-of-range tokens diagnose (no locale needed, but run under the comma locale to
// cover both defects at once — the pre-fix code threw std::out_of_range here).
TEST_F(CommaDecimalLocaleTest, OutOfRangeTokensDiagnose) {
  AssertCommaLocaleActive();
  const ConfigFile config = ConfigFile::ParseString(
      "[compression]\n"
      "ratio = 1e999\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.GetDouble("compression", "ratio"), std::nullopt);
  EXPECT_EQ(config.GetDoubleOr("compression", "ratio", 0.5, 0.0, 1.0), 0.5);
  ASSERT_EQ(config.warnings().size(), 1u);
  EXPECT_NE(config.warnings()[0].find("out of range"), std::string::npos);
  EXPECT_NE(config.warnings()[0].find("line 2"), std::string::npos);

  const StrategyParseResult parsed = StrategyFromString(
      "tensors = 1\n"
      "[tensor 0]\n"
      "op = comm allreduce flat domain=1e999 payload=1 fan=1 raw\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("out of range"), std::string::npos);

  const ConfigFile model = ConfigFile::ParseString(
      "[model]\n"
      "label = tiny\n"
      "[tensors]\n"
      "fc.weight = 99999999999999999999, 0.75\n");
  const ConfigFile gc = ConfigFile::ParseString("[compression]\nratio = 0.5\n");
  const ConfigFile system = ConfigFile::ParseString("[cluster]\ntestbed = nvlink\n");
  const JobConfigResult result = LoadJobConfig(model, gc, system);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace espresso

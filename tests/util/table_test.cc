#include "src/util/table.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"model", "scaling"});
  t.AddRow({"gpt2", "0.58"});
  t.AddRow({"bert-base", "0.51"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_NE(out.find("bert-base"), std::string::npos);
  EXPECT_NE(out.find("0.58"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "bbbb"});
  t.AddRow({"xxxxxxxx", "y"});
  const std::string out = t.ToString();
  // Every line has the same length when columns are padded.
  size_t first_len = out.find('\n');
  size_t pos = first_len + 1;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

TEST(TextTable, PercentFormatting) {
  EXPECT_EQ(TextTable::Percent(0.154, 1), "15.4%");
  EXPECT_EQ(TextTable::Percent(-0.06, 0), "-6%");
}

}  // namespace
}  // namespace espresso

#include "src/util/atomic_file.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include <dirent.h>

namespace espresso {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool Exists(const std::string& path) { return std::ifstream(path).good(); }

// Counts directory entries containing `needle` — used to assert no temp-file leaks.
int CountEntriesContaining(const std::string& dir, const std::string& needle) {
  int count = 0;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return -1;
  while (dirent* entry = readdir(d)) {
    if (std::string(entry->d_name).find(needle) != std::string::npos) ++count;
  }
  closedir(d);
  return count;
}

TEST(AtomicFile, WritesNewFile) {
  const std::string path = ::testing::TempDir() + "/atomic_new.txt";
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(WriteFileAtomic(path, "hello\n", &error)) << error;
  EXPECT_EQ(ReadAll(path), "hello\n");
  std::remove(path.c_str());
}

TEST(AtomicFile, ReplacesExistingFile) {
  const std::string path = ::testing::TempDir() + "/atomic_replace.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents"));
  ASSERT_TRUE(WriteFileAtomic(path, "new contents"));
  EXPECT_EQ(ReadAll(path), "new contents");
  std::remove(path.c_str());
}

TEST(AtomicFile, FailsOnUnwritableDirectory) {
  std::string error;
  EXPECT_FALSE(WriteFileAtomic("/nonexistent-dir/file.txt", "x", &error));
  EXPECT_NE(error.find("/nonexistent-dir"), std::string::npos) << error;
}

TEST(AtomicFile, CrashMidWriteKeepsOldContentsAndLeaksNothing) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/atomic_crash.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "survivor"));

  // Simulate the writer dying after 4 bytes of the temporary file: the destination
  // must still hold the complete old contents and no temp file may remain.
  internal::g_atomic_write_fail_after_bytes = 4;
  std::string error;
  EXPECT_FALSE(WriteFileAtomic(path, "replacement that never lands", &error));
  EXPECT_EQ(internal::g_atomic_write_fail_after_bytes, -1) << "hook must self-reset";
  EXPECT_EQ(ReadAll(path), "survivor");
  EXPECT_EQ(CountEntriesContaining(dir, "atomic_crash.txt.tmp"), 0);

  // The next (healthy) write goes through.
  ASSERT_TRUE(WriteFileAtomic(path, "second try"));
  EXPECT_EQ(ReadAll(path), "second try");
  std::remove(path.c_str());
}

TEST(AtomicFile, CrashBeforeFirstWriteLeavesNoFile) {
  const std::string path = ::testing::TempDir() + "/atomic_never_born.txt";
  std::remove(path.c_str());
  internal::g_atomic_write_fail_after_bytes = 0;
  EXPECT_FALSE(WriteFileAtomic(path, "contents"));
  EXPECT_FALSE(Exists(path));
}

}  // namespace
}  // namespace espresso

#include "src/models/tensor_fusion.h"

#include <gtest/gtest.h>

#include "src/models/model_zoo.h"

namespace espresso {
namespace {

TEST(TensorFusion, PreservesTotals) {
  for (const ModelProfile& model : AllModels()) {
    const ModelProfile fused = FuseTensors(model, 4 * 1024 * 1024);
    EXPECT_EQ(fused.TotalElements(), model.TotalElements()) << model.name;
    EXPECT_NEAR(fused.BackwardTime(), model.BackwardTime(), 1e-9) << model.name;
    EXPECT_LE(fused.TensorCount(), model.TensorCount());
    EXPECT_EQ(fused.forward_time_s, model.forward_time_s);
    EXPECT_EQ(fused.batch_size, model.batch_size);
  }
}

TEST(TensorFusion, RespectsBucketBound) {
  const size_t bucket = 1 * 1024 * 1024;
  const ModelProfile fused = FuseTensors(ResNet101(), bucket);
  for (const TensorSpec& t : fused.tensors) {
    // A bucket may exceed the bound only if it is a single oversized tensor.
    if (t.bytes() > bucket) {
      EXPECT_EQ(t.name.find("bucket("), 0u);
      EXPECT_EQ(t.name.find('+'), std::string::npos) << t.name;
    }
  }
}

TEST(TensorFusion, ZeroBucketIsIdentity) {
  const ModelProfile model = Lstm();
  const ModelProfile fused = FuseTensors(model, 0);
  EXPECT_EQ(fused.TensorCount(), model.TensorCount());
  EXPECT_EQ(fused.tensors[0].name, model.tensors[0].name);
}

TEST(TensorFusion, HugeBucketFusesEverything) {
  const ModelProfile fused = FuseTensors(ResNet101(), SIZE_MAX / 8);
  EXPECT_EQ(fused.TensorCount(), 1u);
}

TEST(TensorFusion, PreservesBackwardOrderSemantics) {
  // Buckets are consecutive backward-order runs: element counts walk the original
  // prefix sums.
  const ModelProfile model = BertBase();
  const ModelProfile fused = FuseTensors(model, 8 * 1024 * 1024);
  size_t original_index = 0;
  for (const TensorSpec& bucket : fused.tensors) {
    size_t elements = 0;
    while (elements < bucket.elements) {
      ASSERT_LT(original_index, model.tensors.size());
      elements += model.tensors[original_index].elements;
      ++original_index;
    }
    EXPECT_EQ(elements, bucket.elements);
  }
  EXPECT_EQ(original_index, model.tensors.size());
}

TEST(TensorFusion, DramaticallyShrinksResNet) {
  EXPECT_LT(FuseTensors(ResNet101(), 16 * 1024 * 1024).TensorCount(), 20u);
}

}  // namespace
}  // namespace espresso

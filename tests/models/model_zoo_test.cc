#include "src/models/model_zoo.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

struct ZooExpectation {
  const char* name;
  size_t tensor_count;  // Table 5 of the paper
  double size_mb_low;   // Table 4, with synthesis tolerance
  double size_mb_high;
};

class ZooParam : public ::testing::TestWithParam<ZooExpectation> {};

TEST_P(ZooParam, MatchesPaperTables) {
  const ZooExpectation& e = GetParam();
  const ModelProfile model = GetModel(e.name);
  EXPECT_EQ(model.TensorCount(), e.tensor_count);
  const double mb = static_cast<double>(model.TotalBytes()) / (1024.0 * 1024.0);
  EXPECT_GE(mb, e.size_mb_low) << mb;
  EXPECT_LE(mb, e.size_mb_high) << mb;
}

TEST_P(ZooParam, TimesAreSane) {
  const ModelProfile model = GetModel(GetParam().name);
  EXPECT_GT(model.forward_time_s, 0.0);
  EXPECT_GT(model.optimizer_time_s, 0.0);
  EXPECT_GT(model.BackwardTime(), model.forward_time_s);  // backward costs ~2x forward
  for (const auto& t : model.tensors) {
    EXPECT_GT(t.elements, 0u) << t.name;
    EXPECT_GT(t.backward_time_s, 0.0) << t.name;
  }
  // Single-GPU iteration in a V100-plausible band.
  EXPECT_GT(model.SingleGpuIterationTime(), 0.02);
  EXPECT_LT(model.SingleGpuIterationTime(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, ZooParam,
    ::testing::Values(ZooExpectation{"vgg16", 32, 480, 580},
                      ZooExpectation{"resnet101", 314, 150, 190},
                      ZooExpectation{"ugatit", 148, 2300, 2800},
                      ZooExpectation{"bert-base", 207, 390, 450},
                      ZooExpectation{"gpt2", 148, 440, 510},
                      ZooExpectation{"lstm", 10, 290, 370}),
    [](const auto& info) { return std::string(info.param.name).substr(0, 4) +
                                  std::to_string(info.param.tensor_count); });

TEST(ModelZoo, AllModelsReturnsSix) {
  EXPECT_EQ(AllModels().size(), 6u);
}

TEST(ModelZoo, BackwardOrderPutsOutputLayerLast) {
  // Backward propagation reaches the input-side layers last; "distance to the output
  // layer" (paper terminology) is 0 for the final backward tensor.
  const ModelProfile vgg = Vgg16();
  EXPECT_EQ(vgg.tensors.front().name, "fc8.bias");  // loss side computes first
  EXPECT_EQ(vgg.tensors.back().name, "conv0.weight");
  EXPECT_EQ(vgg.DistanceToOutput(vgg.tensors.size() - 1), 0u);
  EXPECT_EQ(vgg.DistanceToOutput(0), vgg.tensors.size() - 1);
}

TEST(ModelZoo, Vgg16DominatedByFc6) {
  const ModelProfile vgg = Vgg16();
  size_t max_elements = 0;
  std::string biggest;
  for (const auto& t : vgg.tensors) {
    if (t.elements > max_elements) {
      max_elements = t.elements;
      biggest = t.name;
    }
  }
  EXPECT_EQ(biggest, "fc6.weight");
  EXPECT_GT(max_elements, vgg.TotalElements() / 2);  // fc6 is >50% of VGG16
}

TEST(ModelZoo, LstmHasFewHugeTensors) {
  const ModelProfile lstm = Lstm();
  size_t huge = 0;
  for (const auto& t : lstm.tensors) {
    if (t.bytes() > 10 * 1024 * 1024) {
      ++huge;
    }
  }
  EXPECT_GE(huge, 6u);  // the paper's bubble-heavy workload: a handful of huge tensors
}

TEST(ModelZoo, GetModelAliases) {
  EXPECT_EQ(GetModel("bert").name, "bert-base");
}

TEST(ModelZooDeathTest, UnknownModelDies) {
  EXPECT_DEATH(GetModel("alexnet"), "unknown model");
}

TEST(ModelZoo, BackwardTimesSumToTotal) {
  for (const auto& model : AllModels()) {
    double sum = 0.0;
    for (const auto& t : model.tensors) {
      sum += t.backward_time_s;
    }
    EXPECT_NEAR(sum, model.BackwardTime(), 1e-9) << model.name;
  }
}

}  // namespace
}  // namespace espresso

#include "src/models/model_stats.h"

#include <gtest/gtest.h>

#include "src/models/model_zoo.h"

namespace espresso {
namespace {

ModelProfile TinyModel() {
  ModelProfile m;
  m.name = "tiny";
  m.tensors = {
      {"t0", 100, 1e-3}, {"t1", 50, 1e-3}, {"t2", 100, 1e-3},
      {"t3", 200, 1e-3}, {"t4", 50, 1e-3},
  };
  return m;
}

TEST(ModelStats, SizeHistogram) {
  const auto hist = SizeHistogram(TinyModel());
  EXPECT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist.at(100), 2u);
  EXPECT_EQ(hist.at(50), 2u);
  EXPECT_EQ(hist.at(200), 1u);
  EXPECT_EQ(DistinctSizes(TinyModel()), 3u);
}

TEST(ModelStats, GroupsDescendingBySize) {
  const auto groups = GroupBySizeDescending(TinyModel());
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{3}));        // 200
  EXPECT_EQ(groups[1], (std::vector<size_t>{2, 0}));     // 100: closer-to-output first
  EXPECT_EQ(groups[2], (std::vector<size_t>{4, 1}));     // 50
}

TEST(ModelStats, GroupMembersOrderedByProximityToOutput) {
  // Within a group, the paper prioritizes tensors closer to the output layer, i.e.
  // larger backward index (Algorithm 1 line 3).
  for (const auto& model : AllModels()) {
    for (const auto& group : GroupBySizeDescending(model)) {
      for (size_t i = 1; i < group.size(); ++i) {
        EXPECT_LT(model.DistanceToOutput(group[i - 1]), model.DistanceToOutput(group[i]));
      }
    }
  }
}

TEST(ModelStats, GroupsPartitionAllTensors) {
  for (const auto& model : AllModels()) {
    const auto groups = GroupBySizeDescending(model);
    std::vector<bool> seen(model.tensors.size(), false);
    for (const auto& group : groups) {
      for (size_t idx : group) {
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
    for (bool s : seen) {
      EXPECT_TRUE(s);
    }
  }
}

TEST(ModelStats, BertHasFewDistinctSizesDespiteManyTensors) {
  // Figure 11's point: BERT's 207 tensors share only a handful of sizes, keeping
  // Algorithm 2's product space small (Theorem 1 / Table 6).
  const ModelProfile bert = BertBase();
  EXPECT_GT(bert.TensorCount(), 200u);
  EXPECT_LT(DistinctSizes(bert), 20u);
}

TEST(ModelStats, ResNetGroupsAreLarge) {
  const ModelProfile resnet = ResNet101();
  const auto hist = SizeHistogram(resnet);
  size_t largest_group = 0;
  for (const auto& [size, count] : hist) {
    largest_group = std::max(largest_group, count);
  }
  EXPECT_GE(largest_group, 20u);  // repeated bottleneck blocks share sizes
}

}  // namespace
}  // namespace espresso

#include "src/sim/engine.h"

#include <gtest/gtest.h>

namespace espresso {
namespace {

TEST(SimEngine, SingleTask) {
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("r");
  const TaskId t = engine.AddTask("t", r, 2.5, {}, 0);
  engine.Run();
  EXPECT_EQ(engine.TaskStart(t), 0.0);
  EXPECT_EQ(engine.TaskEnd(t), 2.5);
  EXPECT_EQ(engine.Makespan(), 2.5);
}

TEST(SimEngine, ChainSerializesOnDependencies) {
  SimEngine engine;
  const ResourceId a = engine.AddSerialResource("a");
  const ResourceId b = engine.AddSerialResource("b");
  const TaskId t0 = engine.AddTask("t0", a, 1.0, {}, 0);
  const TaskId t1 = engine.AddTask("t1", b, 2.0, {t0}, 0);
  const TaskId t2 = engine.AddTask("t2", a, 1.0, {t1}, 0);
  engine.Run();
  EXPECT_EQ(engine.TaskStart(t1), 1.0);
  EXPECT_EQ(engine.TaskStart(t2), 3.0);
  EXPECT_EQ(engine.Makespan(), 4.0);
}

TEST(SimEngine, SerialResourceContention) {
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("r");
  const TaskId t0 = engine.AddTask("t0", r, 1.0, {}, 0);
  const TaskId t1 = engine.AddTask("t1", r, 1.0, {}, 1);
  engine.Run();
  // Both ready at 0; priority 0 runs first.
  EXPECT_EQ(engine.TaskEnd(t0), 1.0);
  EXPECT_EQ(engine.TaskStart(t1), 1.0);
}

TEST(SimEngine, PriorityBreaksTies) {
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("r");
  const TaskId low = engine.AddTask("low", r, 1.0, {}, 5);
  const TaskId high = engine.AddTask("high", r, 1.0, {}, 1);
  engine.Run();
  EXPECT_EQ(engine.TaskStart(high), 0.0);
  EXPECT_EQ(engine.TaskStart(low), 1.0);
}

TEST(SimEngine, PoolRunsLanesInParallel) {
  SimEngine engine;
  const ResourceId pool = engine.AddPoolResource("pool", 2);
  const TaskId t0 = engine.AddTask("t0", pool, 3.0, {}, 0);
  const TaskId t1 = engine.AddTask("t1", pool, 3.0, {}, 1);
  const TaskId t2 = engine.AddTask("t2", pool, 3.0, {}, 2);
  engine.Run();
  EXPECT_EQ(engine.TaskStart(t0), 0.0);
  EXPECT_EQ(engine.TaskStart(t1), 0.0);
  EXPECT_EQ(engine.TaskStart(t2), 3.0);
  EXPECT_EQ(engine.Makespan(), 6.0);
}

TEST(SimEngine, LatecomerWithBetterPriorityWaitsForRunningTask) {
  // Non-preemptive: a higher-priority task arriving mid-execution waits.
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("r");
  const ResourceId other = engine.AddSerialResource("other");
  const TaskId blocker = engine.AddTask("blocker", r, 10.0, {}, 5);
  const TaskId trigger = engine.AddTask("trigger", other, 1.0, {}, 0);
  const TaskId urgent = engine.AddTask("urgent", r, 1.0, {trigger}, 0);
  engine.Run();
  EXPECT_EQ(engine.TaskEnd(blocker), 10.0);
  EXPECT_EQ(engine.TaskStart(urgent), 10.0);
}

TEST(SimEngine, QueuedHigherPriorityOvertakesQueuedLower) {
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("r");
  engine.AddTask("running", r, 5.0, {}, 0);
  const TaskId low = engine.AddTask("low", r, 1.0, {}, 9);
  const TaskId high = engine.AddTask("high", r, 1.0, {}, 1);
  engine.Run();
  // When the running task finishes at 5.0, 'high' goes first despite later id.
  EXPECT_EQ(engine.TaskStart(high), 5.0);
  EXPECT_EQ(engine.TaskStart(low), 6.0);
}

TEST(SimEngine, ZeroDurationTasks) {
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("r");
  const TaskId t0 = engine.AddTask("t0", r, 0.0, {}, 0);
  const TaskId t1 = engine.AddTask("t1", r, 1.0, {t0}, 0);
  engine.Run();
  EXPECT_EQ(engine.TaskEnd(t0), 0.0);
  EXPECT_EQ(engine.TaskEnd(t1), 1.0);
}

TEST(SimEngine, DiamondDependencies) {
  SimEngine engine;
  const ResourceId r = engine.AddPoolResource("pool", 4);
  const TaskId root = engine.AddTask("root", r, 1.0, {}, 0);
  const TaskId left = engine.AddTask("left", r, 2.0, {root}, 0);
  const TaskId right = engine.AddTask("right", r, 3.0, {root}, 0);
  const TaskId join = engine.AddTask("join", r, 1.0, {left, right}, 0);
  engine.Run();
  EXPECT_EQ(engine.TaskStart(join), 4.0);
  EXPECT_EQ(engine.Makespan(), 5.0);
}

TEST(SimEngine, PoolWithMoreLanesThanTasks) {
  SimEngine engine;
  const ResourceId pool = engine.AddPoolResource("pool", 16);
  const TaskId a = engine.AddTask("a", pool, 2.0, {}, 0);
  const TaskId b = engine.AddTask("b", pool, 3.0, {}, 0);
  engine.Run();
  EXPECT_EQ(engine.TaskStart(a), 0.0);
  EXPECT_EQ(engine.TaskStart(b), 0.0);
  EXPECT_EQ(engine.Makespan(), 3.0);
}

TEST(SimEngine, EmptyDagRuns) {
  SimEngine engine;
  engine.AddSerialResource("r");
  engine.Run();
  EXPECT_EQ(engine.Makespan(), 0.0);
  EXPECT_EQ(engine.TaskCount(), 0u);
}

TEST(SimEngine, RecordsMatchSchedule) {
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("gpu");
  engine.AddTask("a", r, 1.5, {}, 0);
  engine.AddTask("b", r, 0.5, {}, 1);
  engine.Run();
  const auto records = engine.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "a");
  EXPECT_EQ(records[0].end, 1.5);
  EXPECT_EQ(records[1].start, 1.5);
  EXPECT_EQ(engine.ResourceName(r), "gpu");
}

TEST(SimEngine, DeterministicAcrossRuns) {
  auto build_and_run = [] {
    SimEngine engine;
    const ResourceId r = engine.AddSerialResource("r");
    const ResourceId pool = engine.AddPoolResource("p", 2);
    TaskId prev = -1;
    for (int i = 0; i < 50; ++i) {
      const std::vector<TaskId> deps =
          prev >= 0 ? std::vector<TaskId>{prev} : std::vector<TaskId>{};
      prev = engine.AddTask("", i % 2 == 0 ? r : pool, 0.1 * (i % 7 + 1), deps, i % 3);
    }
    engine.Run();
    return engine.Makespan();
  };
  EXPECT_EQ(build_and_run(), build_and_run());
}

TEST(SimEngine, ResetReusesEngineExactly) {
  // The evaluation-context reuse path: one engine, many Run() cycles. Reset() must
  // return the engine to a freshly-built state (task-free, lane clocks rewound, speed
  // factors back to 1.0) while keeping the resources, so a reused engine schedules
  // byte-identically to a new one.
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("gpu");
  const ResourceId pool = engine.AddPoolResource("cpu", 2);

  auto build = [&] {
    TaskId prev = SimEngine::kNoDependency;
    for (int i = 0; i < 20; ++i) {
      prev = engine.AddChainTask(i % 3 == 0 ? pool : r, 0.25 * (i % 5 + 1), prev,
                                 i % 4);
    }
  };
  build();
  engine.Run();
  const double first = engine.Makespan();
  ASSERT_GT(first, 0.0);

  engine.Reset();
  EXPECT_EQ(engine.TaskCount(), 0u);
  EXPECT_EQ(engine.ResourceName(r), "gpu");  // resources survive Reset()
  build();
  engine.Run();
  EXPECT_EQ(engine.Makespan(), first);

  // Speed factors are rewound too: a degraded run in between must not leak into the
  // next cycle.
  engine.Reset();
  engine.SetResourceSpeedFactor(r, 0.5);
  build();
  engine.Run();
  EXPECT_GT(engine.Makespan(), first);
  engine.Reset();
  build();
  engine.Run();
  EXPECT_EQ(engine.Makespan(), first);
}

TEST(SimEngine, ChainTasksMatchAddTaskAfter) {
  // AddChainTask is AddTaskAfter minus the name and argument checks; the schedules
  // must be identical.
  auto run = [](bool chain) {
    SimEngine engine;
    const ResourceId r = engine.AddSerialResource("r");
    TaskId prev = SimEngine::kNoDependency;
    for (int i = 0; i < 10; ++i) {
      prev = chain ? engine.AddChainTask(r, 1.0 + i, prev, -i)
                   : engine.AddTaskAfter("", r, 1.0 + i, prev, -i);
    }
    engine.Run();
    return engine.Makespan();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(SimEngineDeathTest, ForwardDependencyRejected) {
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("r");
  EXPECT_DEATH(engine.AddTask("bad", r, 1.0, {5}, 0), "");
}

TEST(SimEngineDeathTest, NegativeDurationRejected) {
  SimEngine engine;
  const ResourceId r = engine.AddSerialResource("r");
  EXPECT_DEATH(engine.AddTask("bad", r, -1.0, {}, 0), "");
}

}  // namespace
}  // namespace espresso

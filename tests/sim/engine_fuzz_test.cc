// Randomized scheduling invariants: for arbitrary layered DAGs over mixed
// serial/pool resources, the engine's schedule must satisfy
//   (1) every task starts at or after all of its dependencies end,
//   (2) a resource never runs more tasks concurrently than it has lanes,
//   (3) work conservation: a task never waits while a lane it could use is idle
//       (checked as: start == max(ready, some-lane-free-time)),
//   (4) determinism across identical builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/sim/engine.h"
#include "src/util/rng.h"

namespace espresso {
namespace {

struct FuzzTask {
  ResourceId resource;
  double duration;
  std::vector<TaskId> deps;
  int priority;
};

struct FuzzCase {
  std::vector<size_t> lanes;  // one entry per resource
  std::vector<FuzzTask> tasks;
};

FuzzCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  FuzzCase c;
  const auto resources = static_cast<size_t>(rng.UniformInt(1, 4));
  for (size_t r = 0; r < resources; ++r) {
    c.lanes.push_back(static_cast<size_t>(rng.UniformInt(1, 3)));
  }
  const auto n = static_cast<size_t>(rng.UniformInt(1, 60));
  for (size_t i = 0; i < n; ++i) {
    FuzzTask t;
    t.resource = static_cast<ResourceId>(rng.UniformInt(0, static_cast<int64_t>(resources) - 1));
    t.duration = rng.Uniform(0.0, 2.0);
    t.priority = static_cast<int>(rng.UniformInt(0, 5));
    if (i > 0) {
      const auto deps = static_cast<size_t>(rng.UniformInt(0, 2));
      for (size_t d = 0; d < deps; ++d) {
        t.deps.push_back(static_cast<TaskId>(rng.UniformInt(0, static_cast<int64_t>(i) - 1)));
      }
      std::sort(t.deps.begin(), t.deps.end());
      t.deps.erase(std::unique(t.deps.begin(), t.deps.end()), t.deps.end());
    }
    c.tasks.push_back(std::move(t));
  }
  return c;
}

double RunCase(const FuzzCase& c, std::vector<TaskRecord>* records) {
  SimEngine engine;
  for (size_t r = 0; r < c.lanes.size(); ++r) {
    engine.AddPoolResource("r" + std::to_string(r), c.lanes[r]);
  }
  for (const FuzzTask& t : c.tasks) {
    engine.AddTask("", t.resource, t.duration, t.deps, t.priority);
  }
  engine.Run();
  *records = engine.Records();
  return engine.Makespan();
}

class EngineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzz, ScheduleInvariantsHold) {
  const FuzzCase c = MakeCase(GetParam());
  std::vector<TaskRecord> records;
  const double makespan = RunCase(c, &records);
  ASSERT_EQ(records.size(), c.tasks.size());

  // (1) dependencies respected.
  for (size_t i = 0; i < c.tasks.size(); ++i) {
    for (TaskId dep : c.tasks[i].deps) {
      EXPECT_GE(records[i].start, records[dep].end - 1e-12) << "task " << i;
    }
    EXPECT_NEAR(records[i].end - records[i].start, c.tasks[i].duration, 1e-12);
    EXPECT_LE(records[i].end, makespan + 1e-12);
  }

  // (2) lane capacity respected: sweep each resource's schedule.
  for (size_t r = 0; r < c.lanes.size(); ++r) {
    std::vector<std::pair<double, int>> events;  // (time, +1/-1)
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].resource == static_cast<ResourceId>(r) &&
          records[i].end > records[i].start) {
        events.push_back({records[i].start, +1});
        events.push_back({records[i].end, -1});
      }
    }
    std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return a.second < b.second;  // process ends before starts at equal times
    });
    int load = 0;
    for (const auto& [time, delta] : events) {
      load += delta;
      EXPECT_LE(load, static_cast<int>(c.lanes[r])) << "resource " << r << " at " << time;
      EXPECT_GE(load, 0);
    }
  }

  // (3) no gratuitous idling: each task starts exactly at its ready time, or at a
  // moment when its resource had just been saturated (some task on that resource ends
  // exactly at its start).
  for (size_t i = 0; i < c.tasks.size(); ++i) {
    double ready = 0.0;
    for (TaskId dep : c.tasks[i].deps) {
      ready = std::max(ready, records[dep].end);
    }
    if (records[i].start > ready + 1e-12) {
      bool lane_freed_then = false;
      for (size_t j = 0; j < records.size(); ++j) {
        if (j != i && records[j].resource == records[i].resource &&
            std::abs(records[j].end - records[i].start) < 1e-12) {
          lane_freed_then = true;
          break;
        }
      }
      EXPECT_TRUE(lane_freed_then)
          << "task " << i << " idled from " << ready << " to " << records[i].start;
    }
  }

  // (4) determinism.
  std::vector<TaskRecord> again;
  EXPECT_EQ(RunCase(c, &again), makespan);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(again[i].start, records[i].start);
    EXPECT_EQ(again[i].end, records[i].end);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace espresso

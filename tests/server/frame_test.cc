// Framing-layer tests over socketpairs: round trips, the empty frame, oversized
// refusal without body consumption, torn frames, and clean close.
#include "src/server/frame.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

namespace espresso::server {
namespace {

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    CloseWrite();
    CloseRead();
  }
  void CloseWrite() {
    if (fds_[0] >= 0) {
      ::close(fds_[0]);
      fds_[0] = -1;
    }
  }
  void CloseRead() {
    if (fds_[1] >= 0) {
      ::close(fds_[1]);
      fds_[1] = -1;
    }
  }
  int writer() const { return fds_[0]; }
  int reader() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsPayloads) {
  ASSERT_TRUE(WriteFrame(writer(), "{\"type\":\"health\"}"));
  ASSERT_TRUE(WriteFrame(writer(), ""));
  std::string big(100000, 'x');
  ASSERT_TRUE(WriteFrame(writer(), big));

  FrameResult first = ReadFrame(reader());
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(first.payload, "{\"type\":\"health\"}");

  FrameResult empty = ReadFrame(reader());
  ASSERT_TRUE(empty.ok()) << empty.error;
  EXPECT_EQ(empty.payload, "");

  FrameResult large = ReadFrame(reader());
  ASSERT_TRUE(large.ok()) << large.error;
  EXPECT_EQ(large.payload, big);
}

TEST_F(FramePair, CleanCloseReadsAsClosed) {
  CloseWrite();
  const FrameResult result = ReadFrame(reader());
  EXPECT_EQ(result.status, FrameStatus::kClosed);
}

TEST_F(FramePair, OversizedFrameIsRefusedBeforeTheBody) {
  // A 1 MiB length prefix against a 1 KiB limit: the reader must refuse from the
  // prefix alone — the body bytes are never required to be in flight.
  const unsigned char prefix[4] = {0x00, 0x10, 0x00, 0x00};
  ASSERT_EQ(::write(writer(), prefix, 4), 4);
  const FrameResult result = ReadFrame(reader(), /*max_bytes=*/1024);
  EXPECT_EQ(result.status, FrameStatus::kTooLarge);
  EXPECT_NE(result.error.find("1048576"), std::string::npos) << result.error;
}

TEST_F(FramePair, EofInsidePrefixIsTruncated) {
  const unsigned char partial[2] = {0x00, 0x00};
  ASSERT_EQ(::write(writer(), partial, 2), 2);
  CloseWrite();
  const FrameResult result = ReadFrame(reader());
  EXPECT_EQ(result.status, FrameStatus::kTruncated);
}

TEST_F(FramePair, EofInsideBodyIsTruncated) {
  // Prefix promises 8 bytes; only 3 arrive before the writer dies.
  const unsigned char prefix[4] = {0x00, 0x00, 0x00, 0x08};
  ASSERT_EQ(::write(writer(), prefix, 4), 4);
  ASSERT_EQ(::write(writer(), "abc", 3), 3);
  CloseWrite();
  const FrameResult result = ReadFrame(reader());
  EXPECT_EQ(result.status, FrameStatus::kTruncated);
  EXPECT_NE(result.error.find("3 of 8"), std::string::npos) << result.error;
}

TEST_F(FramePair, ConcurrentWriterReaderStreamsManyFrames) {
  constexpr int kFrames = 200;
  std::thread producer([fd = writer()] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(WriteFrame(fd, "frame-" + std::to_string(i)));
    }
  });
  for (int i = 0; i < kFrames; ++i) {
    const FrameResult result = ReadFrame(reader());
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.payload, "frame-" + std::to_string(i));
  }
  producer.join();
}

// The deterministic SIGPIPE reproduction: a socket whose write side is already
// shut down (exactly what ServeServer::Stop() does to in-flight connections)
// raises SIGPIPE on the very next send unless the writer passes MSG_NOSIGNAL.
// Before the fix this test killed the whole binary; now WriteFrame just fails.
TEST_F(FramePair, WriteAfterLocalShutdownFailsWithoutRaisingSigpipe) {
  ASSERT_EQ(::shutdown(writer(), SHUT_WR), 0);
  std::string error;
  EXPECT_FALSE(WriteFrame(writer(), "{\"type\":\"health\"}", &error));
  // Reaching this line at all is the point: the dead peer surfaced as an error
  // return instead of a process-fatal signal.
  EXPECT_NE(error.find("frame write failed"), std::string::npos) << error;
}

// A peer that vanished entirely (both ends of its socket closed) must also
// surface as a failed write, never a signal — the multi-tenant server shares
// one process across every connection.
TEST_F(FramePair, WriteToClosedPeerDoesNotRaiseSigpipe) {
  CloseRead();
  std::string error;
  // First write may consume ECONNRESET; keep writing until the EPIPE path is
  // exercised. Without MSG_NOSIGNAL the second failure raises SIGPIPE.
  EXPECT_FALSE(WriteFrame(writer(), "a", &error));
  EXPECT_FALSE(WriteFrame(writer(), "b", &error));
  EXPECT_FALSE(WriteFrame(writer(), "c", &error));
}

TEST(FrameStatusNames, AreStable) {
  EXPECT_STREQ(FrameStatusName(FrameStatus::kOk), "ok");
  EXPECT_STREQ(FrameStatusName(FrameStatus::kClosed), "closed");
  EXPECT_STREQ(FrameStatusName(FrameStatus::kTooLarge), "too-large");
  EXPECT_STREQ(FrameStatusName(FrameStatus::kTruncated), "truncated");
  EXPECT_STREQ(FrameStatusName(FrameStatus::kIoError), "io-error");
}

}  // namespace
}  // namespace espresso::server

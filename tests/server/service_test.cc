// SelectionService unit tests against a tiny in-memory job configuration: typed
// errors for every refusal mode, per-tenant quota accounting, admission control,
// cross-request cache sharing (and its digest-keyed scoping), and the audit trail.
#include "src/server/service.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/audit_log.h"
#include "src/server/client.h"
#include "src/util/json_reader.h"

namespace espresso::server {
namespace {

// Small enough that a selection is milliseconds, structured enough that the
// selector still has real choices to make.
constexpr const char* kModelIni = R"(
[model]
forward_ms = 10
optimizer_ms = 2
batch_size = 32
unit = samples/s
[tensors]
head = 4194304, 1.5
body = 1048576, 1.0
tail = 262144, 0.5
)";
constexpr const char* kGcIni = R"(
[compression]
algorithm = randomk
ratio = 0.01
)";
// A second compressor config = a different compression digest = a different
// evaluator configuration (used to prove cache-pool scoping).
constexpr const char* kGcAltIni = R"(
[compression]
algorithm = fp16
)";
constexpr const char* kSystemIni = R"(
[cluster]
testbed = nvlink
machines = 2
gpus_per_machine = 2
)";

std::string Select(const std::string& id, const std::string& tenant,
                   const RequestBudget& budget = {}, const char* gc = kGcIni) {
  return BuildSelectRequest(id, tenant, kModelIni, gc, kSystemIni, budget);
}

// Parses a response and returns the error code ("" when ok).
std::string ErrorCode(const std::string& response) {
  const JsonParseResult parsed = ParseJson(response);
  EXPECT_TRUE(parsed.ok) << response;
  const JsonValue* ok = parsed.value.Find("ok");
  EXPECT_NE(ok, nullptr) << response;
  if (ok != nullptr && ok->IsBool() && ok->bool_value) {
    return "";
  }
  const JsonValue* error = parsed.value.Find("error");
  EXPECT_NE(error, nullptr) << response;
  const JsonValue* code = error != nullptr ? error->Find("code") : nullptr;
  return code != nullptr ? code->text : "<missing code>";
}

uint64_t TelemetryField(const std::string& response, const std::string& field) {
  const JsonParseResult parsed = ParseJson(response);
  EXPECT_TRUE(parsed.ok) << response;
  const JsonValue* telemetry = parsed.value.Find("telemetry");
  EXPECT_NE(telemetry, nullptr) << response;
  const JsonValue* value = telemetry != nullptr ? telemetry->Find(field) : nullptr;
  EXPECT_NE(value, nullptr) << field << " missing in " << response;
  uint64_t out = 0;
  EXPECT_TRUE(value == nullptr || value->AsUint64(&out)) << response;
  return out;
}

TEST(SelectionService, ServesAValidatedIr) {
  SelectionService service({}, nullptr);
  const std::string response = service.HandleRequest(Select("r1", "alice"));
  ASSERT_EQ(ErrorCode(response), "");
  const JsonParseResult parsed = ParseJson(response);
  const JsonValue* ir = parsed.value.Find("ir");
  ASSERT_NE(ir, nullptr);
  ASSERT_TRUE(ir->IsString());
  EXPECT_NE(ir->text.find("\"espresso_strategy_ir\""), std::string::npos);
  const JsonValue* validated = parsed.value.Find("validated");
  ASSERT_NE(validated, nullptr);
  EXPECT_TRUE(validated->bool_value);
  EXPECT_EQ(service.stats().served, 1u);
  EXPECT_GT(service.TenantUsed("alice"), 0u);
}

TEST(SelectionService, MalformedJsonIsATypedError) {
  SelectionService service({}, nullptr);
  EXPECT_EQ(ErrorCode(service.HandleRequest("this is not json")),
            "malformed-request");
  EXPECT_EQ(ErrorCode(service.HandleRequest("[1,2,3]")), "malformed-request");
  EXPECT_EQ(ErrorCode(service.HandleRequest("{\"type\":\"select\"}")),
            "malformed-request");  // no tenant
  EXPECT_EQ(ErrorCode(service.HandleRequest(
                "{\"type\":\"select\",\"tenant\":\"t\",\"config\":{}}")),
            "malformed-request");  // empty config payloads
  EXPECT_EQ(service.stats().rejected, 4u);
}

TEST(SelectionService, UnsupportedTypeIsATypedError) {
  SelectionService service({}, nullptr);
  EXPECT_EQ(ErrorCode(service.HandleRequest("{\"type\":\"shutdown\"}")),
            "unsupported-type");
  EXPECT_EQ(ErrorCode(service.HandleRequest("{\"id\":\"x\"}")), "unsupported-type");
}

TEST(SelectionService, BadConfigIsATypedError) {
  SelectionService service({}, nullptr);
  const std::string request = BuildSelectRequest(
      "r", "t", kModelIni, "[compression]\nratio = 99\n", kSystemIni);
  EXPECT_EQ(ErrorCode(service.HandleRequest(request)), "bad-config");
}

// Regression: the selector CHECK-aborts on compressors with content-dependent
// compressed sizes (threshold). Served unguarded, one such request killed the
// whole process; it must be a typed refusal instead.
TEST(SelectionService, NonDeterministicCompressorIsRefusedNotFatal) {
  SelectionService service({}, nullptr);
  const std::string request = BuildSelectRequest(
      "r", "t", kModelIni, "[compression]\nalgorithm = threshold\nthreshold = 0.01\n",
      kSystemIni);
  EXPECT_EQ(ErrorCode(service.HandleRequest(request)), "bad-config");
  // The process survived; the next request is served normally.
  EXPECT_EQ(ErrorCode(service.HandleRequest(Select("r2", "t"))), "");
}

TEST(SelectionService, OversizedPayloadIsATypedError) {
  ServiceConfig config;
  config.max_request_bytes = 64;
  SelectionService service(config, nullptr);
  EXPECT_EQ(ErrorCode(service.HandleRequest(Select("r", "t"))),
            "payload-too-large");
}

TEST(SelectionService, ExpiredDeadlineIsATypedError) {
  SelectionService service({}, nullptr);
  RequestBudget budget;
  budget.deadline_ms = 0;  // expires the moment it starts
  EXPECT_EQ(ErrorCode(service.HandleRequest(Select("r", "t", budget))),
            "deadline-expired");
  EXPECT_EQ(service.stats().served, 0u);
}

TEST(SelectionService, OverCapacityIsATypedError) {
  ServiceConfig config;
  config.max_inflight = 0;  // no slots: every select is refused at admission
  SelectionService service(config, nullptr);
  EXPECT_EQ(ErrorCode(service.HandleRequest(Select("r", "t"))), "over-capacity");
}

TEST(SelectionService, QuotaExhaustionIsPerTenant) {
  ServiceConfig config;
  config.tenant_quotas["starved"] = 1;  // one evaluation — spent by any selection
  SelectionService service(config, nullptr);

  // First request is admitted (nothing used yet) and charges the real cost.
  EXPECT_EQ(ErrorCode(service.HandleRequest(Select("r1", "starved"))), "");
  EXPECT_GE(service.TenantUsed("starved"), 1u);
  // Second request finds the quota spent.
  EXPECT_EQ(ErrorCode(service.HandleRequest(Select("r2", "starved"))),
            "quota-exhausted");
  // An unrelated tenant (default quota: unlimited) is unaffected.
  EXPECT_EQ(ErrorCode(service.HandleRequest(Select("r3", "healthy"))), "");
}

TEST(SelectionService, WarmCacheIsSharedAcrossRequestsPerConfigTriple) {
  SelectionService service({}, nullptr);
  const std::string cold = service.HandleRequest(Select("r1", "alice"));
  ASSERT_EQ(ErrorCode(cold), "");
  const uint64_t cold_hits = TelemetryField(cold, "cache_hits");
  const uint64_t cold_sims = TelemetryField(cold, "simulations");

  // Second request, same config triple, DIFFERENT tenant: the digest-keyed cache
  // is shared, so nearly every F(S) query hits.
  const std::string warm = service.HandleRequest(Select("r2", "bob"));
  ASSERT_EQ(ErrorCode(warm), "");
  EXPECT_GT(TelemetryField(warm, "cache_hits"), cold_hits);
  EXPECT_LT(TelemetryField(warm, "simulations"), cold_sims);

  // A different compressor config is a different evaluator configuration: it must
  // get a FRESH cache (a fingerprint means nothing across configurations), so its
  // simulations are cold again.
  const std::string other =
      service.HandleRequest(Select("r3", "alice", {}, kGcAltIni));
  ASSERT_EQ(ErrorCode(other), "");
  EXPECT_GT(TelemetryField(other, "simulations"), 0u);
  EXPECT_EQ(service.stats().cached_configs, 2u);
}

TEST(SelectionService, CachePoolEvictsLeastRecentlyUsedConfig) {
  ServiceConfig config;
  config.max_cached_configs = 1;
  SelectionService service(config, nullptr);
  const std::string cold = service.HandleRequest(Select("r1", "t"));
  ASSERT_EQ(ErrorCode(cold), "");
  ASSERT_EQ(ErrorCode(service.HandleRequest(Select("r2", "t", {}, kGcAltIni))), "");
  EXPECT_EQ(service.stats().cached_configs, 1u);
  // The original triple was evicted; selecting it again re-simulates from cold —
  // selection is deterministic, so a truly fresh cache repeats the cold counts.
  const std::string again = service.HandleRequest(Select("r3", "t"));
  ASSERT_EQ(ErrorCode(again), "");
  EXPECT_EQ(TelemetryField(again, "simulations"), TelemetryField(cold, "simulations"));
}

TEST(SelectionService, AuditsServedAndRejectedRequests) {
  obs::AuditLog audit;
  SelectionService service({}, &audit);
  ASSERT_EQ(ErrorCode(service.HandleRequest(Select("ok-req", "alice"))), "");
  ASSERT_EQ(ErrorCode(service.HandleRequest("garbage")), "malformed-request");
  const auto entries = audit.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NE(entries[0].find("\"event\":\"serve\""), std::string::npos) << entries[0];
  EXPECT_NE(entries[0].find("\"id\":\"ok-req\""), std::string::npos);
  EXPECT_NE(entries[0].find("\"tenant\":\"alice\""), std::string::npos);
  EXPECT_NE(entries[0].find("\"payload_digest\":"), std::string::npos);
  EXPECT_NE(entries[1].find("\"event\":\"reject\""), std::string::npos) << entries[1];
  EXPECT_NE(entries[1].find("\"code\":\"malformed-request\""), std::string::npos);
}

TEST(SelectionService, HealthReportsCountersAndAuditState) {
  obs::AuditLog audit;
  SelectionService service({}, &audit);
  ASSERT_EQ(ErrorCode(service.HandleRequest(Select("r", "t"))), "");
  const std::string response =
      service.HandleRequest(BuildHealthRequest("h1"));
  const JsonParseResult parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok) << response;
  const JsonValue* served = parsed.value.Find("served");
  ASSERT_NE(served, nullptr);
  uint64_t count = 0;
  ASSERT_TRUE(served->AsUint64(&count));
  EXPECT_EQ(count, 1u);
  const JsonValue* audit_failed = parsed.value.Find("audit_write_failed");
  ASSERT_NE(audit_failed, nullptr);
  EXPECT_FALSE(audit_failed->bool_value);
}

TEST(SelectionService, MetricsScrapeRoundTrips) {
  SelectionService service({}, nullptr);
  ASSERT_EQ(ErrorCode(service.HandleRequest(Select("r", "t"))), "");
  const std::string response =
      service.HandleRequest(BuildMetricsRequest("m1", "prometheus"));
  const JsonParseResult parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok) << response;
  const JsonValue* body = parsed.value.Find("body");
  ASSERT_NE(body, nullptr);
  ASSERT_TRUE(body->IsString());
  EXPECT_NE(body->text.find("espresso_serve_served_total"), std::string::npos);
  EXPECT_EQ(ErrorCode(service.HandleRequest(BuildMetricsRequest("m2", "xml"))),
            "malformed-request");
}

}  // namespace
}  // namespace espresso::server

// Full-stack integration tests: a real ServeServer on an ephemeral loopback port,
// driven by ServeClient over TCP.
//
// The acceptance bar from the service's contract (docs/SERVICE.md):
//   * >= 8 concurrent mixed-tenant select requests each return an IR document
//     BYTE-IDENTICAL to `espresso_cli --ir-out` on the same committed configs;
//   * protocol abuse — malformed frames, oversized payloads, expired deadlines,
//     spent quotas — yields typed errors, never a crash or a dropped connection
//     without a reply (except the oversized case, where the stream is
//     desynchronised by construction and must close after the error);
//   * the cross-request warm cache is observable in response telemetry.
#include "src/server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/server/client.h"
#include "src/util/json_reader.h"

namespace espresso::server {
namespace {

#ifndef ESPRESSO_CONFIG_DIR
#error "ESPRESSO_CONFIG_DIR must point at the repository's configs/ directory"
#endif
#ifndef ESPRESSO_CLI_PATH
#error "ESPRESSO_CLI_PATH must point at the espresso_cli executable"
#endif

std::string ConfigPath(const std::string& name) {
  return std::string(ESPRESSO_CONFIG_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The two committed config triples the mixed-tenant test serves side by side.
struct Triple {
  const char* model;
  const char* gc;
  const char* system;
};
constexpr Triple kTripleA = {"model_gpt2.ini", "gc_dgc.ini", "system_nvlink.ini"};
constexpr Triple kTripleB = {"model_gpt2.ini", "gc_efsignsgd_limited.ini",
                             "system_pcie.ini"};

// Runs `espresso_cli --ir-out` on a triple and returns the document bytes. One
// subprocess per triple per test binary run (cached), because the CLI is the
// ground truth the server must match bit for bit.
std::string CliIr(const Triple& triple) {
  const std::string out_path = ::testing::TempDir() + "/cli_" +
                               std::string(triple.gc) + "_" + triple.system + ".ir.json";
  const std::string command = std::string(ESPRESSO_CLI_PATH) + " " +
                              ConfigPath(triple.model) + " " + ConfigPath(triple.gc) +
                              " " + ConfigPath(triple.system) +
                              " --ir-out=" + out_path + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(command.c_str()), 0) << command;
  const std::string ir = ReadFileOrDie(out_path);
  std::remove(out_path.c_str());
  return ir;
}

std::string SelectRequestFor(const Triple& triple, const std::string& id,
                             const std::string& tenant,
                             const RequestBudget& budget = {}) {
  return BuildSelectRequest(id, tenant, ReadFileOrDie(ConfigPath(triple.model)),
                            ReadFileOrDie(ConfigPath(triple.gc)),
                            ReadFileOrDie(ConfigPath(triple.system)), budget);
}

struct ParsedResponse {
  bool ok = false;
  std::string code;     // error code when !ok
  std::string ir;       // served IR document when ok
  uint64_t cache_hits = 0;
};

ParsedResponse Parse(const std::string& response) {
  ParsedResponse out;
  const JsonParseResult parsed = ParseJson(response);
  EXPECT_TRUE(parsed.ok) << response;
  if (!parsed.ok) {
    return out;
  }
  const JsonValue* ok = parsed.value.Find("ok");
  out.ok = ok != nullptr && ok->IsBool() && ok->bool_value;
  if (!out.ok) {
    const JsonValue* error = parsed.value.Find("error");
    const JsonValue* code = error != nullptr ? error->Find("code") : nullptr;
    out.code = code != nullptr ? code->text : "<missing>";
    return out;
  }
  if (const JsonValue* ir = parsed.value.Find("ir"); ir != nullptr && ir->IsString()) {
    out.ir = ir->text;
  }
  if (const JsonValue* telemetry = parsed.value.Find("telemetry");
      telemetry != nullptr) {
    if (const JsonValue* hits = telemetry->Find("cache_hits"); hits != nullptr) {
      hits->AsUint64(&out.cache_hits);
    }
  }
  return out;
}

class ServeServerTest : public ::testing::Test {
 protected:
  void StartServer(ServiceConfig service_config = {}, ServerOptions options = {}) {
    service_ = std::make_unique<SelectionService>(service_config, nullptr);
    options.worker_threads = 4;
    server_ = std::make_unique<ServeServer>(service_.get(), options);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }
  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
  }

  std::unique_ptr<SelectionService> service_;
  std::unique_ptr<ServeServer> server_;
};

// The headline acceptance test: eight concurrent clients, two tenants, two config
// triples, every response byte-identical to the CLI on the same configs.
TEST_F(ServeServerTest, ConcurrentMixedTenantRequestsMatchCliBitForBit) {
  StartServer();
  const std::string expected_a = CliIr(kTripleA);
  const std::string expected_b = CliIr(kTripleB);
  ASSERT_FALSE(expected_a.empty());
  ASSERT_FALSE(expected_b.empty());
  ASSERT_NE(expected_a, expected_b);

  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([this, i, &responses] {
      const bool is_a = i % 2 == 0;
      const std::string tenant = is_a ? "tenant-a" : "tenant-b";
      const std::string request =
          SelectRequestFor(is_a ? kTripleA : kTripleB,
                           "concurrent-" + std::to_string(i), tenant);
      ServeClient client;
      std::string error;
      ASSERT_TRUE(client.Connect(server_->port(), &error)) << error;
      ASSERT_TRUE(client.Call(request, &responses[i], &error)) << error;
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    const ParsedResponse parsed = Parse(responses[i]);
    ASSERT_TRUE(parsed.ok) << "client " << i << ": " << responses[i];
    EXPECT_EQ(parsed.ir, i % 2 == 0 ? expected_a : expected_b)
        << "client " << i << " IR differs from espresso_cli --ir-out";
  }
  EXPECT_EQ(service_->stats().served, static_cast<uint64_t>(kClients));
  EXPECT_GT(service_->TenantUsed("tenant-a"), 0u);
  EXPECT_GT(service_->TenantUsed("tenant-b"), 0u);
}

TEST_F(ServeServerTest, WarmCrossRequestCacheIsObservableOverTheWire) {
  StartServer();
  ServeClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(server_->port(), &error)) << error;

  std::string first_response;
  ASSERT_TRUE(client.Call(SelectRequestFor(kTripleA, "cold", "alice"),
                          &first_response, &error))
      << error;
  const ParsedResponse cold = Parse(first_response);
  ASSERT_TRUE(cold.ok) << first_response;

  // A different connection AND tenant still hits the shared per-triple cache.
  ServeClient second;
  ASSERT_TRUE(second.Connect(server_->port(), &error)) << error;
  std::string second_response;
  ASSERT_TRUE(second.Call(SelectRequestFor(kTripleA, "warm", "bob"),
                          &second_response, &error))
      << error;
  const ParsedResponse warm = Parse(second_response);
  ASSERT_TRUE(warm.ok) << second_response;
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
  EXPECT_EQ(warm.ir, cold.ir);
}

TEST_F(ServeServerTest, MalformedFrameGetsATypedErrorAndTheConnectionSurvives) {
  StartServer();
  ServeClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(server_->port(), &error)) << error;

  std::string response;
  ASSERT_TRUE(client.Call("not json at all {{{", &response, &error)) << error;
  EXPECT_EQ(Parse(response).code, "malformed-request");

  // The framing is intact (the frame itself was well-formed), so the SAME
  // connection keeps serving.
  ASSERT_TRUE(client.Call(BuildHealthRequest("after-garbage"), &response, &error))
      << error;
  EXPECT_TRUE(Parse(response).ok) << response;
}

TEST_F(ServeServerTest, OversizedPayloadIsRefusedWithATypedError) {
  ServerOptions options;
  options.max_frame_bytes = 512;
  StartServer({}, options);
  ServeClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(server_->port(), &error)) << error;

  // Far over the server's 512-byte frame limit. The server refuses from the
  // prefix, replies with a typed error, and closes (the stream is desynchronised).
  const std::string oversized(4096, 'x');
  std::string response;
  ASSERT_TRUE(client.Call(oversized, &response, &error)) << error;
  EXPECT_EQ(Parse(response).code, "payload-too-large");
}

TEST_F(ServeServerTest, ExpiredDeadlineIsATypedErrorOverTheWire) {
  StartServer();
  ServeClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(server_->port(), &error)) << error;
  RequestBudget budget;
  budget.deadline_ms = 0;
  std::string response;
  ASSERT_TRUE(client.Call(SelectRequestFor(kTripleA, "late", "alice", budget),
                          &response, &error))
      << error;
  EXPECT_EQ(Parse(response).code, "deadline-expired");
}

TEST_F(ServeServerTest, QuotaExhaustionOnlyStarvesTheSpentTenant) {
  ServiceConfig config;
  config.tenant_quotas["starved"] = 1;
  StartServer(config);
  ServeClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(server_->port(), &error)) << error;

  std::string response;
  ASSERT_TRUE(client.Call(SelectRequestFor(kTripleA, "q1", "starved"), &response,
                          &error))
      << error;
  EXPECT_TRUE(Parse(response).ok) << response;
  ASSERT_TRUE(client.Call(SelectRequestFor(kTripleA, "q2", "starved"), &response,
                          &error))
      << error;
  EXPECT_EQ(Parse(response).code, "quota-exhausted");
  ASSERT_TRUE(client.Call(SelectRequestFor(kTripleA, "q3", "unmetered"), &response,
                          &error))
      << error;
  EXPECT_TRUE(Parse(response).ok) << response;
}

// Raw loopback connect, bypassing ServeClient so the test can write torn frames.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Clients that send a complete request and then RST the connection before the
// server writes its reply. The server's response write then hits a dead peer;
// without MSG_NOSIGNAL that raised SIGPIPE and killed the whole daemon (this
// test ran in-process, so the crash took the test binary down with it).
TEST_F(ServeServerTest, PeerResetBeforeResponseWriteDoesNotCrashTheServer) {
  StartServer();
  std::string error;

  for (int i = 0; i < 8; ++i) {
    const int fd = RawConnect(server_->port());
    ASSERT_GE(fd, 0);
    const std::string payload = "{\"type\":\"health\",\"id\":\"rst\"}";
    const uint32_t length = static_cast<uint32_t>(payload.size());
    const unsigned char prefix[4] = {
        static_cast<unsigned char>((length >> 24) & 0xff),
        static_cast<unsigned char>((length >> 16) & 0xff),
        static_cast<unsigned char>((length >> 8) & 0xff),
        static_cast<unsigned char>(length & 0xff)};
    ASSERT_EQ(::write(fd, prefix, 4), 4);
    ASSERT_EQ(::write(fd, payload.data(), payload.size()),
              static_cast<ssize_t>(payload.size()));
    // SO_LINGER with zero timeout turns close() into an immediate RST, so the
    // server's pending response write lands on a reset connection.
    const linger hard_reset = {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset, sizeof(hard_reset));
    ::close(fd);
  }

  // Give the server time to process the doomed requests and attempt the writes.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ServeClient client;
  ASSERT_TRUE(client.Connect(server_->port(), &error)) << error;
  std::string response;
  ASSERT_TRUE(client.Call(BuildHealthRequest("post-reset"), &response, &error))
      << error;
  EXPECT_TRUE(Parse(response).ok) << response;
}

TEST_F(ServeServerTest, AbruptDisconnectMidFrameDoesNotCrashTheServer) {
  StartServer();
  std::string error;

  // A client that promises a 1 KiB frame, delivers 10 bytes, and vanishes.
  const int torn = RawConnect(server_->port());
  ASSERT_GE(torn, 0);
  const unsigned char prefix[4] = {0x00, 0x00, 0x04, 0x00};
  ASSERT_EQ(::write(torn, prefix, 4), 4);
  ASSERT_EQ(::write(torn, "0123456789", 10), 10);
  ::close(torn);

  // And one that disconnects before even finishing the prefix.
  const int headless = RawConnect(server_->port());
  ASSERT_GE(headless, 0);
  ASSERT_EQ(::write(headless, prefix, 2), 2);
  ::close(headless);

  // The server is still healthy and serving.
  ServeClient client;
  ASSERT_TRUE(client.Connect(server_->port(), &error)) << error;
  std::string response;
  ASSERT_TRUE(client.Call(BuildHealthRequest("still-alive"), &response, &error))
      << error;
  EXPECT_TRUE(Parse(response).ok) << response;
}

}  // namespace
}  // namespace espresso::server

// Strategy explorer: walks the decision-tree abstraction for a cluster and shows
// (1) the option space (every valid compression option of a tensor, §4.2), and
// (2) the per-tensor options Espresso actually selects for a model, with the paper's
// four dimensions called out.
//
// Usage: strategy_explorer [model] [algorithm] [testbed]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/models/model_zoo.h"

int main(int argc, char** argv) {
  using namespace espresso;
  const std::string model_name = argc > 1 ? argv[1] : "lstm";
  const std::string algorithm = argc > 2 ? argv[2] : "randomk";
  const std::string testbed = argc > 3 ? argv[3] : "pcie";

  const ClusterSpec cluster = testbed == "pcie" ? PcieCluster() : NvlinkCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = algorithm, .ratio = 0.01});
  const TreeConfig config{cluster.machines, cluster.gpus_per_machine,
                          compressor->SupportsCompressedAggregation()};

  // Part 1: the option space.
  const OptionSpace space = EnumerateOptions(config);
  std::cout << "Decision tree for " << cluster.machines << " machines x "
            << cluster.gpus_per_machine << " GPUs (compressed-domain aggregation: "
            << (config.supports_compressed_aggregation ? "yes" : "no") << ")\n";
  std::cout << "  structural paths: " << space.options.size() << "\n";
  std::cout << "  |C| with per-op GPU/CPU choices: " << space.TotalWithDeviceChoices()
            << "  (the paper's tree has |C| = 4341)\n\n";
  std::cout << "A few sample paths:\n";
  size_t shown = 0;
  for (const auto& option : space.options) {
    if (option.Compressed() && shown < 6) {
      std::cout << "  " << option.Describe() << "\n";
      ++shown;
    }
  }

  // Part 2: what Espresso picks for the model.
  const ModelProfile model = GetModel(model_name);
  EspressoSelector selector(model, cluster, *compressor);
  const SelectionResult result = selector.Select();
  std::cout << "\nEspresso's strategy for " << model.name << " + " << algorithm << " on "
            << testbed << " (" << result.strategy.Summary() << ", iteration "
            << result.iteration_time * 1e3 << " ms):\n\n";

  // Group tensors by chosen option for a compact report.
  std::map<std::string, std::pair<size_t, size_t>> usage;  // label -> (count, bytes)
  for (size_t i = 0; i < model.tensors.size(); ++i) {
    auto& [count, bytes] = usage[result.strategy.options[i].label];
    ++count;
    bytes += model.tensors[i].bytes();
  }
  for (const auto& [label, stats] : usage) {
    std::printf("  %-55s %3zu tensors, %7.1f MB\n", label.c_str(), stats.first,
                static_cast<double>(stats.second) / (1024.0 * 1024.0));
  }

  std::cout << "\nPer-tensor detail (largest five):\n";
  std::vector<size_t> order(model.tensors.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return model.tensors[a].elements > model.tensors[b].elements;
  });
  for (size_t k = 0; k < std::min<size_t>(5, order.size()); ++k) {
    const size_t i = order[k];
    std::printf("  %-24s %7.1f MB  -> %s\n", model.tensors[i].name.c_str(),
                static_cast<double>(model.tensors[i].bytes()) / (1024.0 * 1024.0),
                result.strategy.options[i].Describe().c_str());
  }
  return 0;
}

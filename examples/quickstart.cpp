// Quickstart: select a near-optimal compression strategy for a DNN training job and
// compare it against the FP32 baseline and the state-of-the-art compression baselines.
//
// Usage: quickstart [model] [algorithm] [testbed]
//   model:     vgg16 | resnet101 | ugatit | bert-base | gpt2 | lstm   (default gpt2)
//   algorithm: randomk | dgc | efsignsgd | qsgd | terngrad | fp16     (default dgc)
//   testbed:   nvlink | pcie                                          (default nvlink)
#include <cstdio>
#include <iostream>
#include <string>

#include "src/compress/compressor.h"
#include "src/core/espresso.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"

int main(int argc, char** argv) {
  using namespace espresso;
  const std::string model_name = argc > 1 ? argv[1] : "gpt2";
  const std::string algorithm = argc > 2 ? argv[2] : "dgc";
  const std::string testbed = argc > 3 ? argv[3] : "nvlink";

  const ModelProfile model = GetModel(model_name);
  const ClusterSpec cluster = testbed == "pcie" ? PcieCluster() : NvlinkCluster();
  CompressorConfig config;
  config.algorithm = algorithm;
  config.ratio = 0.01;  // 1% compression rate, the paper's sparsification setting
  const auto compressor = CreateCompressor(config);

  std::cout << "Model " << model.name << ": " << model.TensorCount() << " tensors, "
            << model.TotalBytes() / (1024.0 * 1024.0) << " MB, single-GPU iteration "
            << model.SingleGpuIterationTime() * 1e3 << " ms\n";
  std::cout << "Cluster: " << cluster.machines << " machines x " << cluster.gpus_per_machine
            << " GPUs, intra=" << cluster.intra.name << ", inter=" << cluster.inter.name
            << "\n";
  std::cout << "Compression: " << compressor->name() << "\n\n";

  for (Scheme scheme : {Scheme::kFp32, Scheme::kBytePSCompress, Scheme::kHiTopKComm,
                        Scheme::kHiPress, Scheme::kEspresso, Scheme::kUpperBound}) {
    const ThroughputResult r = RunScheme(model, cluster, *compressor, scheme);
    std::printf("%-16s iter %7.2f ms   throughput %10.0f %s   scaling %.2f\n",
                SchemeName(scheme), r.iteration_time_s * 1e3, r.throughput,
                model.throughput_unit.c_str(), r.scaling_factor);
  }

  // Show what Espresso actually decided.
  EspressoSelector selector(model, cluster, *compressor);
  const SelectionResult selection = selector.Select();
  std::cout << "\nEspresso strategy: " << selection.strategy.Summary() << "\n";
  std::cout << "Selection time: " << (selection.gpu_stage_seconds +
                                      selection.offload_stage_seconds) * 1e3
            << " ms (" << selection.timeline_evaluations << " timeline evaluations)\n";
  return 0;
}

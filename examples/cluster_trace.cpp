// Cluster trace exporter: runs one simulated training iteration under a chosen scheme
// and writes the timeline as a chrome://tracing / Perfetto JSON file, with one track per
// resource (gpu / cpu / intra / inter). Open the file at https://ui.perfetto.dev.
//
// Usage: cluster_trace [model] [algorithm] [testbed] [scheme] [output.json]
//   scheme: fp32 | hipress | hitopkcomm | bytepscompress | espresso
#include <fstream>
#include <iostream>
#include <string>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/models/model_zoo.h"
#include "src/trace/chrome_trace.h"

int main(int argc, char** argv) {
  using namespace espresso;
  const std::string model_name = argc > 1 ? argv[1] : "gpt2";
  const std::string algorithm = argc > 2 ? argv[2] : "dgc";
  const std::string testbed = argc > 3 ? argv[3] : "nvlink";
  const std::string scheme = argc > 4 ? argv[4] : "espresso";
  const std::string output = argc > 5 ? argv[5] : model_name + "_" + scheme + "_trace.json";

  const ModelProfile model = GetModel(model_name);
  const ClusterSpec cluster = testbed == "pcie" ? PcieCluster() : NvlinkCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = algorithm, .ratio = 0.01});

  Strategy strategy;
  if (scheme == "fp32") {
    strategy = Fp32Strategy(model, cluster);
  } else if (scheme == "hipress") {
    strategy = HiPressStrategy(model, cluster, *compressor);
  } else if (scheme == "hitopkcomm") {
    strategy = HiTopKCommStrategy(model, cluster, *compressor);
  } else if (scheme == "bytepscompress") {
    strategy = BytePSCompressStrategy(model, cluster, *compressor);
  } else if (scheme == "espresso") {
    EspressoSelector selector(model, cluster, *compressor);
    strategy = selector.Select().strategy;
  } else {
    std::cerr << "unknown scheme: " << scheme << "\n";
    return 1;
  }

  TimelineEvaluator evaluator(model, cluster, *compressor);
  const TimelineResult result = evaluator.Evaluate(strategy, /*record_entries=*/true);

  std::ofstream file(output);
  if (!file) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  WriteChromeTrace(file, model, result.entries);
  std::cout << "Simulated one iteration of " << model.name << " + " << algorithm << " ("
            << scheme << ") on " << testbed << ": iteration "
            << result.iteration_time * 1e3 << " ms, " << result.entries.size()
            << " timeline events.\n";
  std::cout << "Trace written to " << output << " — open it at https://ui.perfetto.dev\n";
  return 0;
}

// Timeline gallery: regenerates the motivating scenarios of Figures 2, 5, and 9 on a
// three-tensor toy model and prints each timeline, demonstrating why compression
// decisions depend on the interactions among tensors:
//   * Figure 2: different strategies on the same job — selective compression wins,
//     compressing everything on GPUs can lose.
//   * Figure 5: indivisible vs divisible schemes flip depending on overlap.
//   * Figure 9: compressing a tensor communicated before a bubble only widens the gap.
#include <cstdio>
#include <iostream>

#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/models/model_profile.h"

namespace {

using namespace espresso;

ModelProfile ToyModel(double t0, double t1, double t2) {
  ModelProfile m;
  m.name = "toy";
  m.forward_time_s = 4e-3;
  m.optimizer_time_s = 1e-3;
  m.batch_size = 1;
  m.throughput_unit = "it/s";
  m.tensors = {{"T0", 8 << 20, t0}, {"T1", 8 << 20, t1}, {"T2", 8 << 20, t2}};
  return m;
}

void PrintTimeline(const TimelineEvaluator& evaluator, const Strategy& strategy,
                   const char* title) {
  const TimelineResult result = evaluator.Evaluate(strategy, true);
  std::printf("%s  (iteration %.2f ms)\n", title, result.iteration_time * 1e3);
  for (const auto& e : result.entries) {
    if (e.end - e.start < 1e-5) {
      continue;  // skip sub-10us ops for readability
    }
    std::printf("  %-6s T%zu %-14s %7.2f -> %7.2f ms\n", e.resource.c_str(), e.tensor,
                e.kind.c_str(), e.start * 1e3, e.end * 1e3);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  const ClusterSpec cluster = PcieCluster();

  // ---- Figure 2: strategies on a communication-bound job ----
  std::cout << "==== Figure 2: the choice of compression strategies determines the "
               "iteration time ====\n\n";
  ModelProfile model = ToyModel(6e-3, 6e-3, 6e-3);
  TimelineEvaluator evaluator(model, cluster, *compressor);

  const Strategy fp32 = Fp32Strategy(model, cluster);
  PrintTimeline(evaluator, fp32, "(a) baseline, no compression");

  Strategy only_t2 = fp32;
  only_t2.options[2] = InterOnlyIndivisibleOption(cluster, Device::kGpu);
  PrintTimeline(evaluator, only_t2, "(b) compress T2 with GPUs");

  const Strategy all_gpu =
      UniformStrategy(3, InterOnlyIndivisibleOption(cluster, Device::kGpu));
  PrintTimeline(evaluator, all_gpu, "(c) compress everything with GPUs");

  const Strategy all_cpu = all_gpu.options.empty()
                               ? all_gpu
                               : UniformStrategy(3, InterOnlyIndivisibleOption(
                                                        cluster, Device::kCpu));
  PrintTimeline(evaluator, all_cpu, "(d) compress everything with CPUs");

  EspressoSelector selector(model, cluster, *compressor);
  const SelectionResult espresso = selector.Select();
  PrintTimeline(evaluator, espresso.strategy, "(e) Espresso's strategy");
  std::printf("Espresso %.2f ms <= min(baseline %.2f, all-GPU %.2f, all-CPU %.2f) ms\n\n",
              espresso.iteration_time * 1e3, evaluator.IterationTime(fp32) * 1e3,
              evaluator.IterationTime(all_gpu) * 1e3, evaluator.IterationTime(all_cpu) * 1e3);

  // ---- Figure 9: bubbles ----
  std::cout << "==== Figure 9: tensors communicated before bubbles need no compression "
               "====\n\n";
  ModelProfile bubble_model = ToyModel(1e-3, 60e-3, 1e-3);
  TimelineEvaluator bubble_eval(bubble_model, cluster, *compressor);
  const Strategy bubble_fp32 = Fp32Strategy(bubble_model, cluster);
  PrintTimeline(bubble_eval, bubble_fp32, "(a) T1's long computation leaves a bubble after T0");
  const auto before = bubble_eval.BeforeBubble(bubble_fp32);
  std::printf("BeforeBubble flags: T0=%d T1=%d T2=%d (T0 is ahead of the bubble)\n\n",
              static_cast<int>(before[0]), static_cast<int>(before[1]),
              static_cast<int>(before[2]));

  Strategy compress_t0 = bubble_fp32;
  compress_t0.options[0] = InterOnlyIndivisibleOption(cluster, Device::kGpu);
  Strategy compress_t2 = bubble_fp32;
  compress_t2.options[2] = InterOnlyIndivisibleOption(cluster, Device::kGpu);
  std::printf("compressing T0 (before the bubble): %.2f ms\n",
              bubble_eval.IterationTime(compress_t0) * 1e3);
  std::printf("compressing T2 (after the bubble):  %.2f ms  <- the useful one\n\n",
              bubble_eval.IterationTime(compress_t2) * 1e3);

  // ---- Figure 5: indivisible vs divisible ----
  std::cout << "==== Figure 5: the right communication scheme depends on overlap ====\n\n";
  const Strategy indivisible =
      UniformStrategy(3, InterOnlyIndivisibleOption(cluster, Device::kGpu));
  const Strategy divisible =
      UniformStrategy(3, InterOnlyDivisibleOption(cluster, Device::kGpu));
  std::printf("communication-bound job: indivisible %.2f ms vs divisible %.2f ms\n",
              evaluator.IterationTime(indivisible) * 1e3,
              evaluator.IterationTime(divisible) * 1e3);
  ModelProfile overlap_model = ToyModel(2e-3, 80e-3, 2e-3);
  TimelineEvaluator overlap_eval(overlap_model, cluster, *compressor);
  std::printf("compute-heavy job:       indivisible %.2f ms vs divisible %.2f ms\n",
              overlap_eval.IterationTime(indivisible) * 1e3,
              overlap_eval.IterationTime(divisible) * 1e3);
  std::cout << "\nNeither scheme dominates: Espresso picks per tensor, per job (Reason #2).\n";
  return 0;
}

// Chaos demo: loads a fault configuration, walks a few training iterations of the
// simulated runtime under the resulting fault schedule, and writes a chrome://tracing
// timeline with the injected faults and the strategy hot-swap overlaid as instant
// events on a dedicated "faults" track.
//
// Usage: chaos_demo [faults.ini] [trace.json] [--metrics-out=<file>]...
//                   [--trace-out=<file>]...
//   defaults: configs/faults_default.ini, chaos_trace.json
//
// The trace (positional path and every --trace-out copy) is the extended chrome
// trace: flow arrows along each tensor's compress -> send -> decompress chain,
// counter tracks for simulated link bandwidth and CPU-pool occupancy, fault
// instants, and the process's wall-clock spans. --metrics-out dumps the metrics
// registry (Prometheus text, or JSON for .json paths).
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "src/core/decision_tree.h"
#include "src/fault/chaos_channel.h"
#include "src/fault/drift_monitor.h"
#include "src/fault/resilient_executor.h"
#include "src/models/model_zoo.h"
#include "src/obs/cli.h"
#include "src/obs/span.h"
#include "src/obs/trace_writer.h"

int main(int argc, char** argv) {
  using namespace espresso;
  obs::ObsCliOptions obs_options;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    switch (obs::ObsCliOptions::ParseArg(argc, argv, &i, &obs_options, &error)) {
      case obs::ObsCliOptions::Parse::kConsumed:
        break;
      case obs::ObsCliOptions::Parse::kError:
        std::cerr << "error: " << error << "\n";
        return 2;
      case obs::ObsCliOptions::Parse::kNotMine:
        positional.push_back(argv[i]);
        break;
    }
  }
  obs::GlobalTrace().set_enabled(true);  // the demo's trace always carries wall spans
  const std::string config_path =
      !positional.empty() ? positional[0] : "configs/faults_default.ini";
  const std::string trace_path = positional.size() > 1 ? positional[1] : "chaos_trace.json";

  ConfigFile config = ConfigFile::Load(config_path);
  if (!config.ok()) {
    std::cerr << "cannot load " << config_path << ": " << config.error() << "\n";
    return 1;
  }
  const FaultPlan plan = FaultPlan::FromConfig(config);
  const RetryPolicy retry = RetryPolicy::FromConfig(config);
  const DriftConfig drift = DriftConfig::FromConfig(config);
  for (const std::string& warning : config.warnings()) {
    std::cerr << "warning: " << warning << "\n";
  }
  std::cout << plan.Describe() << "\n";

  const ModelProfile model = Vgg16();
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  const CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  const auto compressor = CreateCompressor(gc);
  const FaultInjector injector(plan);
  OnlineReselector reselector(model, profiled, *compressor, gc, SelectorOptions{}, drift);

  std::cout << "\niter  straggler  cpu_spike  inter_bw  iteration_ms  note\n";
  std::vector<TraceInstant> instants;
  std::vector<TimelineEntry> last_entries;
  const uint64_t iterations = 12;
  for (uint64_t it = 0; it < iterations; ++it) {
    const IterationFaults faults = plan.AtIteration(it);
    TimelineEvaluator evaluator(model, profiled, *compressor);
    evaluator.SetResourceScales(injector.ScalesFor(faults));
    const TimelineResult result =
        evaluator.Evaluate(reselector.strategy(), it + 1 == iterations);
    if (it + 1 == iterations) last_entries = result.entries;

    std::ostringstream note;
    if (faults.straggler_active) {
      instants.push_back({result.iteration_time * it, "straggler",
                          "machine slowed " + std::to_string(faults.compute_slowdown) +
                              "x (iteration " + std::to_string(it) + ")"});
      note << "straggler ";
    }
    if (faults.cpu_contention_active) {
      instants.push_back({result.iteration_time * it, "cpu_contention",
                          "cpu pool slowed (iteration " + std::to_string(it) + ")"});
      note << "cpu-contention ";
    }
    const ClusterSpec observed = injector.PerturbCluster(profiled, faults);
    const auto event = reselector.Step(it, observed);
    if (event.has_value()) {
      std::ostringstream detail;
      detail << "drift " << event->drift << ", " << event->options_changed
             << " options changed, F(S) " << event->stale_iteration_time << " -> "
             << event->new_iteration_time;
      instants.push_back({result.iteration_time * it, "strategy_reselect", detail.str()});
      note << "RESELECTED(" << event->options_changed << " options) ";
    }
    std::cout << it << "     " << (faults.straggler_active ? "yes" : " no ") << "       "
              << (faults.cpu_contention_active ? "yes" : " no ") << "       "
              << faults.inter_bandwidth_factor << "      "
              << result.iteration_time * 1e3 << "  " << note.str() << "\n";
  }

  // One resilient tensor sync so retries/fallbacks appear in the summary.
  const ExecutorConfig exec_config{.machines = 2, .gpus_per_machine = 2};
  const TreeConfig tree{2, 2, false};
  std::vector<RankBuffers> gradients(
      8, RankBuffers(exec_config.ranks(), std::vector<float>(32, 0.5f)));
  const Strategy uniform = UniformStrategy(8, DefaultUncompressedOption(tree));
  const ResilienceReport report =
      ResilientExecuteStrategy(uniform, exec_config, gradients, injector, retry, 0);
  std::cout << "\nresilient sync: " << report.clean << " clean, " << report.retried
            << " retried, " << report.fallbacks << " FP32 fallbacks\n";
  for (const FaultEventRecord& event : report.events) {
    instants.push_back({0.0, event.kind,
                        "tensor " + std::to_string(event.tensor) + " attempt " +
                            std::to_string(event.attempts)});
  }

  std::vector<std::string> trace_paths = {trace_path};
  trace_paths.insert(trace_paths.end(), obs_options.trace_out.begin(),
                     obs_options.trace_out.end());
  for (const std::string& path : trace_paths) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write trace file " << path << "\n";
      return 1;
    }
    obs::WriteExtendedChromeTrace(out, model, profiled, last_entries, instants,
                                  &obs::GlobalTrace());
    std::cout << "trace with " << instants.size() << " fault events: " << path
              << " (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!obs_options.WriteMetricsFiles(obs::GlobalMetrics(), std::cerr)) {
    return 1;
  }
  for (const std::string& path : obs_options.metrics_out) {
    std::cout << "metrics: " << path << "\n";
  }
  return 0;
}

// The Figure-6 front end: Espresso takes three configuration files — model information,
// GC information, and training-system information — selects a near-optimal compression
// strategy offline, and reports the per-tensor decisions and the predicted speedup.
//
// Usage: espresso_cli <model.ini> <gc.ini> <system.ini> [strategy-out.esp]
//                     [--ir-out=<file>] [--ir-in=<file>] [--force-digest]
//                     [--metrics-out=<file>]... [--trace-out=<file>]...
// Try:   espresso_cli configs/model_gpt2.ini configs/gc_dgc.ini configs/system_nvlink.ini
//
// --metrics-out writes the run's metrics registry (Prometheus text, or the JSON dump
// when the file ends in .json); --trace-out writes a Perfetto-loadable chrome trace of
// the selected strategy's simulated timeline (flow arrows + counter tracks) overlaid
// with the process's wall-clock spans.
//
// --ir-out emits the selection as a versioned, digest-stamped strategy IR document
// (docs/DEPLOYMENT.md); --ir-in skips selection and instead loads such a document
// through the fail-closed admission pipeline — digest comparison against the three
// config files, strategy lint, schedule verification — and refuses to run (exit 1)
// when any gate trips. --force-digest downgrades a digest mismatch to a warning for
// deliberate cross-configuration replays.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/ir_validator.h"
#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/core/strategy_io.h"
#include "src/core/strategy_ir.h"
#include "src/ddl/experiment.h"
#include "src/ddl/job_config.h"
#include "src/obs/cli.h"
#include "src/obs/span.h"
#include "src/obs/trace_writer.h"

int main(int argc, char** argv) {
  using namespace espresso;
  obs::ObsCliOptions obs_options;
  std::vector<const char*> positional;
  std::string ir_out;
  std::string ir_in;
  bool force_digest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ir-out=", 0) == 0) {
      ir_out = arg.substr(9);
      continue;
    }
    if (arg.rfind("--ir-in=", 0) == 0) {
      ir_in = arg.substr(8);
      continue;
    }
    if (arg == "--force-digest") {
      force_digest = true;
      continue;
    }
    std::string error;
    switch (obs::ObsCliOptions::ParseArg(argc, argv, &i, &obs_options, &error)) {
      case obs::ObsCliOptions::Parse::kConsumed:
        break;
      case obs::ObsCliOptions::Parse::kError:
        std::cerr << "error: " << error << "\n";
        return 2;
      case obs::ObsCliOptions::Parse::kNotMine:
        positional.push_back(argv[i]);
        break;
    }
  }
  if (positional.size() != 3 && positional.size() != 4) {
    std::cerr << "usage: " << argv[0]
              << " <model.ini> <gc.ini> <system.ini> [strategy-out.esp]"
              << " [--ir-out=<file>] [--ir-in=<file>] [--force-digest]"
              << " [--metrics-out=<file>]... [--trace-out=<file>]...\n";
    return 2;
  }
  obs_options.ApplyTraceEnable();

  const JobConfigResult loaded =
      LoadJobConfigFromFiles(positional[0], positional[1], positional[2]);
  if (!loaded.ok) {
    std::cerr << "error: " << loaded.error << "\n";
    return 1;
  }
  const JobConfig& job = loaded.job;
  const auto compressor = job.MakeCompressor();

  std::cout << "Job: " << job.model.name << " (" << job.model.TensorCount() << " tensors, "
            << static_cast<double>(job.model.TotalBytes()) / (1024.0 * 1024.0) << " MB) + "
            << compressor->name() << " on " << job.cluster.machines << "x"
            << job.cluster.gpus_per_machine << " GPUs (" << job.cluster.intra.name << " / "
            << job.cluster.inter.name << ")";
  if (job.max_compress_ops > 0) {
    std::cout << ", user limit: <= " << job.max_compress_ops << " compression ops/tensor";
  }
  std::cout << "\n\n";

  SelectorOptions options;
  if (job.max_compress_ops > 0) {
    TreeConfig tree{job.cluster.machines, job.cluster.gpus_per_machine,
                    compressor->SupportsCompressedAggregation(), job.max_compress_ops};
    options.candidates = CandidateOptions(tree);
  }
  EspressoSelector selector(job.model, job.cluster, *compressor, options);

  SelectionResult result;
  if (!ir_in.empty()) {
    // Fail-closed deployment path: the document must pass digest comparison, the
    // strategy linter, and the schedule verifier before anything runs with it.
    StrategyIRParseOptions parse_options;
    parse_options.verify_payload_digest = !force_digest;
    StrategyIRParseResult parsed = ReadStrategyIRFile(ir_in, parse_options);
    if (!parsed.ok) {
      std::cerr << "error: " << parsed.error << "\n";
      return 1;
    }
    IRValidationOptions validate;
    validate.force_digest = force_digest;
    validate.max_compress_ops = job.max_compress_ops;
    IRValidationResult admitted = ValidateStrategyIR(parsed.ir, job.model, job.cluster,
                                                     *compressor, job.compressor, validate);
    if (!admitted.report.empty()) {
      admitted.report.PrintTable(std::cout);
      std::cout << "\n";
    }
    if (!admitted.ok) {
      std::cerr << "error: strategy IR " << ir_in
                << " refused by the admission pipeline (fail-closed); the job will not "
                   "run with an unvalidated strategy\n";
      return 1;
    }
    std::cout << "Strategy IR " << ir_in << " admitted (payload digest "
              << DigestHex(parsed.ir.ContentDigest()) << ", origin "
              << parsed.ir.provenance.origin << ", F(S) " << parsed.ir.fs_score * 1e3
              << " ms)\n\n";
    result.strategy = std::move(parsed.ir.strategy);
    result.iteration_time = admitted.evaluated_fs;
  } else {
    result = selector.Select();
  }

  const ThroughputResult fp32 =
      MeasureThroughput(job.model, job.cluster, *compressor,
                        Fp32Strategy(job.model, job.cluster));
  const ThroughputResult espresso = MeasureThroughput(job.model, job.cluster, *compressor,
                                                      result.strategy);

  std::printf("FP32 baseline : %8.2f ms/iter, %10.0f %s (scaling %.2f)\n",
              fp32.iteration_time_s * 1e3, fp32.throughput,
              job.model.throughput_unit.c_str(), fp32.scaling_factor);
  std::printf("Espresso      : %8.2f ms/iter, %10.0f %s (scaling %.2f)  -> %.2fx speedup\n\n",
              espresso.iteration_time_s * 1e3, espresso.throughput,
              job.model.throughput_unit.c_str(), espresso.scaling_factor,
              fp32.iteration_time_s / espresso.iteration_time_s);

  std::cout << "Strategy: " << result.strategy.Summary() << "\n";
  if (ir_in.empty()) {
    std::cout << "Selected in "
              << (result.gpu_stage_seconds + result.offload_stage_seconds) * 1e3 << " ms ("
              << result.timeline_evaluations << " timeline evaluations, "
              << result.offload_combinations << " offload combinations"
              << (result.offload_exact ? "" : ", coordinate descent") << ")";
  }
  std::cout << "\n\n";

  std::cout << "Per-tensor compression options (backward order):\n";
  for (size_t i = 0; i < job.model.tensors.size(); ++i) {
    const auto& t = job.model.tensors[i];
    std::printf("  %-28s %10.2f MB  %s\n", t.name.c_str(),
                static_cast<double>(t.bytes()) / (1024.0 * 1024.0),
                result.strategy.options[i].label.c_str());
    if (i == 11 && job.model.tensors.size() > 14) {
      std::printf("  ... (%zu more tensors)\n", job.model.tensors.size() - 12);
      break;
    }
  }
  if (positional.size() == 4) {
    if (!WriteStrategyFile(positional[3], result.strategy)) {
      std::cerr << "error: cannot write " << positional[3] << "\n";
      return 1;
    }
    std::cout << "\nStrategy written to " << positional[3]
              << " (load it in the runtime with ReadStrategyFile)\n";
  }
  if (!ir_out.empty()) {
    StrategyProvenance provenance;
    provenance.origin = ir_in.empty() ? "selector" : "replay";
    provenance.selector = "espresso";
    const StrategyIR ir = CompileStrategyIR(result.strategy, result.iteration_time,
                                            job.model, job.cluster, job.compressor,
                                            provenance);
    std::string error;
    if (!WriteStrategyIRFile(ir_out, ir, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    std::cout << "\nStrategy IR written to " << ir_out << " (payload digest "
              << DigestHex(ir.ContentDigest())
              << "; redeploy with --ir-in=" << ir_out << ")\n";
  }

  for (const std::string& path : obs_options.trace_out) {
    const TimelineResult timeline =
        selector.evaluator().Evaluate(result.strategy, /*record_entries=*/true);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write trace file " << path << "\n";
      return 1;
    }
    obs::WriteExtendedChromeTrace(out, job.model, job.cluster, timeline.entries,
                                  /*instants=*/{}, &obs::GlobalTrace());
    std::cout << "Trace written to " << path << " (load in ui.perfetto.dev)\n";
  }
  if (!obs_options.WriteMetricsFiles(obs::GlobalMetrics(), std::cerr)) {
    return 1;
  }
  for (const std::string& path : obs_options.metrics_out) {
    std::cout << "Metrics written to " << path << "\n";
  }
  return 0;
}

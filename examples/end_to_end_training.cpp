// The complete Espresso loop on one program (Figure 6):
//   1. profile — measure the model's per-tensor backward times (trace averaging) and
//      the compressor's real host throughput;
//   2. select  — run the decision algorithm for the target cluster;
//   3. execute — train data-parallel workers whose gradient synchronization runs each
//      tensor through its SELECTED compression option with real data movement.
// Reports the predicted speedup next to the achieved accuracy.
#include <cstdio>
#include <iostream>

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/ddl/experiment.h"
#include "src/ddl/profiler.h"
#include "src/ddl/strategy_executor.h"
#include "src/nn/dataset.h"
#include "src/nn/mlp.h"

int main() {
  using namespace espresso;

  // --- The training job: a 4-tensor MLP on 4 simulated workers (2 machines x 2). ---
  const size_t machines = 2, gpus = 2, workers = machines * gpus;
  const Dataset all = MakeGaussianBlobs(1536, 16, 4, 1.6, 77);
  const Dataset train = Slice(all, 0, 1024);
  const Dataset test = Slice(all, 1024, 512);
  Mlp model(16, 512, 4, /*seed=*/3);
  const std::vector<size_t> tensor_sizes = model.ParameterSizes();

  // --- Step 1: profile. Backward times from trace averaging (the MLP's are synthetic
  // here, scaled to its tensor sizes); compression throughput measured for real. ---
  ModelProfile profile;
  profile.name = "mlp-demo";
  profile.forward_time_s = 2e-3;
  profile.optimizer_time_s = 0.3e-3;
  profile.batch_size = 16 * workers;
  profile.throughput_unit = "samples/s";
  const char* names[] = {"w1", "b1", "w2", "b2"};
  for (size_t t = 0; t < tensor_sizes.size(); ++t) {
    // Backward time ~ proportional to parameter count, with a floor.
    profile.tensors.push_back(TensorSpec{
        names[tensor_sizes.size() - 1 - t], tensor_sizes[tensor_sizes.size() - 1 - t],
        std::max(0.05e-3, 2e-9 * static_cast<double>(tensor_sizes[t]))});
  }
  const ModelProfileResult traced = ProfileModel(profile, 100, 0.04, 11);
  std::printf("Profiled %zu tensors over %zu traces (max stddev/mean %.1f%%)\n",
              traced.profile.TensorCount(), traced.iterations,
              traced.max_normalized_stddev * 100.0);

  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.05});
  const CompressorProfileResult measured =
      ProfileCompressor(*compressor, {1 << 10, 1 << 13, 1 << 16}, 20);
  std::printf("Measured host %s throughput: compress %.2f GB/s, decompress %.2f GB/s\n\n",
              compressor->name().data(), measured.fitted.compress_bytes_per_s / 1e9,
              measured.fitted.decompress_bytes_per_s / 1e9);

  // --- Step 2: select a strategy for a bandwidth-starved toy cluster (keeping the
  // tensor/network ratio of a real job: kilobyte tensors over a megabit link stress the
  // network like megabyte tensors over gigabit Ethernet). ---
  ClusterSpec cluster = PcieCluster(machines, gpus);
  cluster.inter.bytes_per_second = 2e6;   // ~16 Mbit/s toy uplink
  cluster.inter.latency_s = 2e-6;
  cluster.intra.bytes_per_second = 2e7;
  cluster.intra.latency_s = 1e-6;
  EspressoSelector selector(traced.profile, cluster, *compressor);
  const SelectionResult selection = selector.Select();
  const double fp32_time = selector.evaluator().IterationTime(
      Fp32Strategy(traced.profile, cluster));
  std::printf("Espresso strategy (%s): predicted %.2f ms/iter vs FP32 %.2f ms (%.2fx)\n",
              selection.strategy.Summary().c_str(), selection.iteration_time * 1e3,
              fp32_time * 1e3, fp32_time / selection.iteration_time);
  for (size_t t = 0; t < traced.profile.tensors.size(); ++t) {
    std::printf("  %-4s (%6zu elems) -> %s\n", traced.profile.tensors[t].name.c_str(),
                traced.profile.tensors[t].elements,
                selection.strategy.options[t].label.c_str());
  }

  // --- Step 3: execute the strategy at run-time inside real training. ---
  std::vector<ErrorFeedback> feedback(workers);
  ExecutorConfig exec{machines, gpus, compressor.get(), &feedback, /*seed=*/0};

  const size_t batch_per_worker = 16;
  const size_t steps_per_epoch = train.size() / (workers * batch_per_worker);
  uint64_t step_counter = 0;
  for (size_t epoch = 0; epoch < 20; ++epoch) {
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      // Per-worker gradients on disjoint shards (replicas stay identical, so one model
      // instance + per-shard gradients is an exact data-parallel simulation).
      std::vector<std::vector<std::vector<float>>> grads(workers);
      for (size_t w = 0; w < workers; ++w) {
        const Dataset shard = Slice(
            train, step * workers * batch_per_worker + w * batch_per_worker,
            batch_per_worker);
        model.ComputeGradients(shard.x, shard.labels, &grads[w]);
      }
      // Tensor-by-tensor synchronization through the SELECTED compression options.
      std::vector<std::vector<float>> aggregated(tensor_sizes.size());
      for (size_t t = 0; t < tensor_sizes.size(); ++t) {
        RankBuffers buffers(workers);
        for (size_t w = 0; w < workers; ++w) {
          buffers[w] = grads[w][t];
        }
        exec.seed = DeriveSeed(42, step_counter * 16 + t);
        // ModelProfile lists tensors in backward order; the Mlp's layout is forward.
        const size_t profile_index = tensor_sizes.size() - 1 - t;
        ExecuteOption(selection.strategy.options[profile_index], exec, t, buffers);
        aggregated[t] = std::move(buffers[0]);
        for (float& v : aggregated[t]) {
          v /= static_cast<float>(workers);
        }
      }
      model.ApplyGradients(aggregated, 0.05);
      ++step_counter;
    }
  }

  std::printf("\nTrained through the selected strategy: test accuracy %.2f%%\n",
              model.Accuracy(test.x, test.labels) * 100.0);
  std::printf("(compression + scheme choices came from the selector; the gradients\n"
              " really moved through compressed collectives with error feedback)\n");
  return 0;
}

// serve_demo: the reference client for espresso_serve (docs/SERVICE.md), and the
// driver CI's release smoke uses to exercise the service end to end.
//
// Usage:
//   serve_demo <port|@port-file> <model.ini> <gc.ini> <system.ini>
//              [--tenant=<name>] [--id=<id>] [--repeat=N] [--deadline-ms=N]
//              [--ir-out=<file>] [--metrics-out=<file>] [--json-metrics]
//
// Sends one select request per --repeat (default 1) carrying the three INI files'
// contents, prints the served digest and telemetry, and writes the LAST response's
// IR document to --ir-out — byte-identical to `espresso_cli --ir-out` on the same
// files, so downstream gates (strategy_lint --ir) apply unchanged. --metrics-out
// scrapes the server's metrics over the same connection. Exits 0 only if every
// request was served and the final health check reports a healthy audit stream.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/server/client.h"
#include "src/util/json_reader.h"
#include "src/util/parse_number.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace espresso;

  std::vector<const char*> positional;
  std::string tenant = "demo";
  std::string id = "serve-demo";
  std::string ir_out;
  std::string metrics_out;
  bool json_metrics = false;
  uint64_t repeat = 1;
  server::RequestBudget budget;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tenant=", 0) == 0) {
      tenant = arg.substr(9);
    } else if (arg.rfind("--id=", 0) == 0) {
      id = arg.substr(5);
    } else if (arg.rfind("--ir-out=", 0) == 0) {
      ir_out = arg.substr(9);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg == "--json-metrics") {
      json_metrics = true;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      if (ParseUint64(arg.substr(9), &repeat) != NumberParse::kOk || repeat == 0) {
        std::cerr << "error: --repeat expects a positive integer\n";
        return 2;
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      int64_t ms = 0;
      if (ParseInt64(arg.substr(14), &ms) != NumberParse::kOk) {
        std::cerr << "error: --deadline-ms expects an integer\n";
        return 2;
      }
      budget.deadline_ms = ms;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag " << arg << "\n";
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 4) {
    std::cerr << "usage: " << argv[0]
              << " <port|@port-file> <model.ini> <gc.ini> <system.ini>"
              << " [--tenant=<name>] [--id=<id>] [--repeat=N] [--deadline-ms=N]"
              << " [--ir-out=<file>] [--metrics-out=<file>] [--json-metrics]\n";
    return 2;
  }

  std::string port_text = positional[0];
  if (!port_text.empty() && port_text[0] == '@') {
    std::string content;
    if (!ReadFile(port_text.substr(1), &content)) {
      std::cerr << "error: cannot read port file " << port_text.substr(1) << "\n";
      return 1;
    }
    // The port file is one decimal line.
    while (!content.empty() && (content.back() == '\n' || content.back() == '\r')) {
      content.pop_back();
    }
    port_text = content;
  }
  uint64_t port = 0;
  if (ParseUint64(port_text, &port) != NumberParse::kOk || port == 0 || port > 65535) {
    std::cerr << "error: '" << port_text << "' is not a TCP port\n";
    return 2;
  }

  std::string model_ini;
  std::string gc_ini;
  std::string system_ini;
  for (const auto& [path, out] :
       {std::pair<const char*, std::string*>{positional[1], &model_ini},
        {positional[2], &gc_ini},
        {positional[3], &system_ini}}) {
    if (!ReadFile(path, out)) {
      std::cerr << "error: cannot read " << path << "\n";
      return 1;
    }
  }

  server::ServeClient client;
  std::string error;
  if (!client.Connect(static_cast<uint16_t>(port), &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  std::string ir_text;
  for (uint64_t round = 0; round < repeat; ++round) {
    const std::string request =
        server::BuildSelectRequest(id + "-" + std::to_string(round), tenant,
                                   model_ini, gc_ini, system_ini, budget);
    std::string response;
    if (!client.Call(request, &response, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    const JsonParseResult parsed = ParseJson(response);
    if (!parsed.ok) {
      std::cerr << "error: response is not valid JSON: " << parsed.error << "\n";
      return 1;
    }
    const JsonValue* ok = parsed.value.Find("ok");
    if (ok == nullptr || !ok->IsBool() || !ok->bool_value) {
      const JsonValue* err = parsed.value.Find("error");
      const JsonValue* code = err != nullptr ? err->Find("code") : nullptr;
      const JsonValue* message = err != nullptr ? err->Find("message") : nullptr;
      std::cerr << "refused: " << (code != nullptr ? code->text : "unknown") << ": "
                << (message != nullptr ? message->text : response) << "\n";
      return 1;
    }
    const JsonValue* ir = parsed.value.Find("ir");
    const JsonValue* digest = parsed.value.Find("payload_digest");
    const JsonValue* telemetry = parsed.value.Find("telemetry");
    const JsonValue* hits =
        telemetry != nullptr ? telemetry->Find("cache_hits") : nullptr;
    const JsonValue* evals =
        telemetry != nullptr ? telemetry->Find("evaluations") : nullptr;
    if (ir == nullptr || !ir->IsString() || digest == nullptr) {
      std::cerr << "error: served response carries no IR\n";
      return 1;
    }
    ir_text = ir->text;
    std::cout << "served round " << round << ": payload digest " << digest->text
              << ", " << (evals != nullptr ? evals->text : "?") << " evaluations, "
              << (hits != nullptr ? hits->text : "?") << " cache hits\n";
  }

  if (!ir_out.empty()) {
    std::ofstream out(ir_out, std::ios::binary);
    out << ir_text;
    if (!out) {
      std::cerr << "error: cannot write " << ir_out << "\n";
      return 1;
    }
    std::cout << "IR written to " << ir_out << "\n";
  }

  if (!metrics_out.empty()) {
    std::string response;
    if (!client.Call(server::BuildMetricsRequest(id, json_metrics ? "json" : "prometheus"),
                     &response, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    const JsonParseResult parsed = ParseJson(response);
    const JsonValue* body = parsed.ok ? parsed.value.Find("body") : nullptr;
    if (body == nullptr || !body->IsString()) {
      std::cerr << "error: metrics response carries no body\n";
      return 1;
    }
    std::ofstream out(metrics_out, std::ios::binary);
    out << body->text;
    if (!out) {
      std::cerr << "error: cannot write " << metrics_out << "\n";
      return 1;
    }
    std::cout << "Metrics written to " << metrics_out << "\n";
  }

  std::string response;
  if (!client.Call(server::BuildHealthRequest(id), &response, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  const JsonParseResult health = ParseJson(response);
  const JsonValue* audit_failed =
      health.ok ? health.value.Find("audit_write_failed") : nullptr;
  if (audit_failed != nullptr && audit_failed->IsBool() && audit_failed->bool_value) {
    std::cerr << "error: server reports a degraded audit stream\n";
    return 1;
  }
  std::cout << "health: ok\n";
  return 0;
}

// Convergence demo: trains a classifier with 8 data-parallel workers whose gradients
// travel through the real compression pipeline — error feedback, the chosen compressor,
// and a functional communication scheme (Figures 3-4) — and prints the per-epoch
// curves against the FP32 baseline (the laptop-scale stand-in for Figure 16).
//
// Usage: convergence_demo [algorithm] [ratio]
#include <cstdio>
#include <iostream>
#include <string>

#include "src/nn/parallel_trainer.h"
#include "src/util/parse_number.h"

int main(int argc, char** argv) {
  using namespace espresso;
  const std::string algorithm = argc > 1 ? argv[1] : "dgc";
  double ratio = 0.05;
  if (argc > 2 && ParseDouble(argv[2], &ratio) != NumberParse::kOk) {
    std::cerr << "error: ratio '" << argv[2] << "' is not a number\n";
    return 2;
  }

  const Dataset all = MakeGaussianBlobs(2048, 16, 5, 2.5, 7);
  const Dataset train = Slice(all, 0, 1536);
  const Dataset test = Slice(all, 1536, 512);

  TrainConfig base;
  base.workers = 8;
  base.hidden_dim = 32;
  base.batch_per_worker = 16;
  base.learning_rate = 0.05;
  base.epochs = 25;
  base.seed = 99;

  std::cout << "Training 8 data-parallel workers on synthetic 5-class data (" << train.size()
            << " train / " << test.size() << " test samples)\n\n";

  const auto fp32 = TrainDataParallel(train, test, base);

  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = algorithm, .ratio = ratio});
  TrainConfig compressed = base;
  compressed.scheme = SyncScheme::kCompressedDivisible;
  compressed.compressor = compressor.get();
  const auto with_gc = TrainDataParallel(train, test, compressed);

  TrainConfig no_ef = compressed;
  no_ef.error_feedback = false;
  const auto without_ef = TrainDataParallel(train, test, no_ef);

  std::printf("%-6s | %-22s | %-22s | %-22s\n", "", "FP32", (algorithm + " + EF").c_str(),
              (algorithm + " no EF").c_str());
  std::printf("%-6s | %-10s %-10s | %-10s %-10s | %-10s %-10s\n", "epoch", "loss",
              "test acc", "loss", "test acc", "loss", "test acc");
  for (size_t e = 0; e < fp32.size(); e += 4) {
    std::printf("%-6zu | %-10.4f %-10.3f | %-10.4f %-10.3f | %-10.4f %-10.3f\n", e,
                fp32[e].train_loss, fp32[e].test_accuracy, with_gc[e].train_loss,
                with_gc[e].test_accuracy, without_ef[e].train_loss,
                without_ef[e].test_accuracy);
  }
  const size_t last = fp32.size() - 1;
  std::printf("%-6s | %-10.4f %-10.3f | %-10.4f %-10.3f | %-10.4f %-10.3f\n", "final",
              fp32[last].train_loss, fp32[last].test_accuracy, with_gc[last].train_loss,
              with_gc[last].test_accuracy, without_ef[last].train_loss,
              without_ef[last].test_accuracy);

  std::printf(
      "\n%s at %.0f%% density with error feedback lands within %.1f%% of FP32 accuracy\n",
      algorithm.c_str(), ratio * 100.0,
      (fp32[last].test_accuracy - with_gc[last].test_accuracy) * 100.0);
  return 0;
}

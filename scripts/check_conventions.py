#!/usr/bin/env python3
"""Source-convention lint for the zero-allocation execution path (docs/MEMORY.md).

The pooled-memory layer promises a zero-allocation steady state, and the grow-only
rule is what keeps warm capacities alive across calls. This script statically
enforces the conventions clang-tidy has no checks for, over the execution-path
subsystems (src/mem, src/collectives, src/compress, src/ddl):

  raw-new           `new` expressions — scratch comes from the arena or the pools,
                    never the heap directly (smart-pointer factories are fine:
                    std::make_unique allocates, but owns).
  raw-delete        `delete` expressions (deleted member functions, `= delete`,
                    are of course allowed).
  shrink-to-fit     `shrink_to_fit()` releases warm capacity.
  shrinking-resize  `resize(0)` destroys warm elements and their capacities;
                    grow-only code writes `clear()` (logical emptying) or
                    `if (c.size() < n) c.resize(n)`.
  unaligned-simd    (src/compress/kernels/ only) raw unaligned vector load/store
                    intrinsics (_mm*_loadu/_mm*_storeu/_mm*_lddqu, NEON vld1/vst1)
                    outside the checked wrappers in aligned.h. Kernel code goes
                    through LoadU/StoreU so every memory touch shares one audited
                    head/tail discipline.

A deliberate cold-path exception (e.g. an explicit Trim() release API) is annotated
in the source with a marker comment on the same line or the line above:

    // conventions:allow(shrink-to-fit) Trim() is the explicit release API
    bucket.shrink_to_fit();

Usage: check_conventions.py [repo_root]   (defaults to the script's parent repo)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import os
import re
import sys

CHECKED_DIRS = ("src/mem", "src/collectives", "src/compress", "src/ddl")
EXTENSIONS = (".h", ".cc")

ALLOW_MARKER = re.compile(r"conventions:allow\(([a-z-]+)\)")

# Applied to code with comments and string/char literals stripped.
RULES = [
    ("raw-new", re.compile(r"(?<!operator\s)(?<!operator)\bnew\b(?!\s*\()")),
    ("raw-delete", re.compile(r"(?<!=)(?<!=\s)(?<!operator\s)(?<!operator)\bdelete\b")),
    ("shrink-to-fit", re.compile(r"\bshrink_to_fit\s*\(")),
    ("shrinking-resize", re.compile(r"\.\s*resize\s*\(\s*0(u|U|l|L|z|Z)*\s*[),]")),
]

# Rules that apply only under a path prefix (relative to the repo root).
SCOPED_RULES = [
    (
        "src/compress/kernels/",
        "unaligned-simd",
        re.compile(
            r"\b(_mm\d*_(loadu|storeu|lddqu)_\w+|v(ld1q?|st1q?)(_lane)?_\w+)\s*\("
        ),
    ),
]


def strip_code(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Removes comments and string/char literal contents from one line.

    Returns the stripped code and whether a /* block comment continues past the
    line. Literal contents are blanked (not removed) so column positions and
    token boundaries survive.
    """
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                break  # line comment: the allow-marker scan uses the raw line
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(c)
            elif c == "'":
                state = "squote"
                out.append(c)
            else:
                out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        else:  # inside a literal
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out), state == "block"


def check_file(path: str, rel: str) -> list[str]:
    rel_posix = rel.replace(os.sep, "/")
    rules = RULES + [
        (rule, pattern)
        for prefix, rule, pattern in SCOPED_RULES
        if rel_posix.startswith(prefix)
    ]
    findings = []
    in_block = False
    carried_allows: set[str] = set()
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            code, in_block = strip_code(raw.rstrip("\n"), in_block)
            if not code.strip():
                # A marker on its own (comment) line covers the next code line.
                carried_allows |= set(ALLOW_MARKER.findall(raw))
                continue
            allowed = set(ALLOW_MARKER.findall(raw)) | carried_allows
            carried_allows = set()
            for rule, pattern in rules:
                if pattern.search(code) and rule not in allowed:
                    findings.append(
                        f"{rel}:{lineno}: {rule}: {raw.strip()}"
                    )
    return findings


def main(argv: list[str]) -> int:
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = os.path.abspath(
        argv[1] if len(argv) == 2 else os.path.join(os.path.dirname(argv[0]), "..")
    )
    findings = []
    files = 0
    for subdir in CHECKED_DIRS:
        base = os.path.join(root, subdir)
        if not os.path.isdir(base):
            print(f"error: missing directory {base}", file=sys.stderr)
            return 2
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if not name.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                files += 1
                findings.extend(check_file(path, os.path.relpath(path, root)))
    for finding in findings:
        print(finding)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"check_conventions: {files} files in {', '.join(CHECKED_DIRS)} — {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Figure 16: convergence validation. The paper fine-tunes BERT-base on SQuAD and trains
// ResNet101 on ImageNet; offline we substitute a data-parallel MLP on a synthetic
// dataset trained through the *real* compression pipeline (error feedback + functional
// collectives), plus the simulated wall-clock speedups for the paper's two setups
// (DESIGN.md documents the substitution).
//
// Paper: BERT F1 with DGC/Randomk matches FP32 at ~1.55x speedup; ResNet101+EFSignSGD
// reaches 77.10% vs 77.18% top-1 at 1.23x speedup.
#include <iostream>

#include "src/compress/compressor.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"
#include "src/nn/parallel_trainer.h"
#include "src/util/table.h"

int main() {
  using namespace espresso;

  // Part 1: accuracy parity of error-compensated compressed training.
  const Dataset all = MakeGaussianBlobs(2048, 16, 5, 1.4, 41);
  const Dataset train = Slice(all, 0, 1536);
  const Dataset test = Slice(all, 1536, 512);

  TrainConfig base;
  base.workers = 8;
  base.hidden_dim = 32;
  base.batch_per_worker = 16;
  base.learning_rate = 0.05;
  base.epochs = 25;
  base.seed = 2026;

  const auto fp32_history = TrainDataParallel(train, test, base);
  const double fp32_acc = fp32_history.back().test_accuracy;

  TextTable accuracy({"Training", "final train loss", "test accuracy", "delta vs FP32"});
  accuracy.AddRow({"FP32 (no compression)",
                   TextTable::Num(fp32_history.back().train_loss, 4),
                   TextTable::Percent(fp32_acc, 2), "--"});
  bool parity = true;
  for (const char* algorithm : {"dgc", "randomk", "efsignsgd"}) {
    const auto compressor =
        CreateCompressor(CompressorConfig{.algorithm = algorithm, .ratio = 0.05});
    TrainConfig config = base;
    config.scheme = SyncScheme::kCompressedDivisible;
    config.compressor = compressor.get();
    const auto history = TrainDataParallel(train, test, config);
    const double acc = history.back().test_accuracy;
    if (acc < fp32_acc - 0.05) {
      parity = false;
    }
    accuracy.AddRow({std::string("Espresso + ") + algorithm + " (EF)",
                     TextTable::Num(history.back().train_loss, 4),
                     TextTable::Percent(acc, 2),
                     TextTable::Percent(acc - fp32_acc, 2)});
  }
  std::cout << "Figure 16 (accuracy): 8 data-parallel workers, real compressed gradient "
               "exchange with error feedback\n";
  accuracy.Print(std::cout);
  std::cout << (parity ? "Shape check PASSED: compression preserves accuracy\n\n"
                       : "Shape check FAILED: accuracy degraded beyond 5%\n\n");

  // Part 2: the speedups the paper pairs with those accuracy curves.
  TextTable speedups({"Setup", "FP32 iter (ms)", "Espresso iter (ms)", "speedup"});
  struct Setup {
    const char* label;
    const char* model;
    const char* algorithm;
  };
  for (const Setup& s : {Setup{"BERT-base + DGC (Fig 16a)", "bert-base", "dgc"},
                         Setup{"BERT-base + Randomk (Fig 16a)", "bert-base", "randomk"},
                         Setup{"ResNet101 + EFSignSGD (Fig 16b)", "resnet101",
                               "efsignsgd"}}) {
    const ModelProfile model = GetModel(s.model);
    const ClusterSpec cluster = NvlinkCluster();
    const auto compressor =
        CreateCompressor(CompressorConfig{.algorithm = s.algorithm, .ratio = 0.01});
    const double fp32 =
        RunScheme(model, cluster, *compressor, Scheme::kFp32).iteration_time_s;
    const double espresso =
        RunScheme(model, cluster, *compressor, Scheme::kEspresso).iteration_time_s;
    speedups.AddRow({s.label, TextTable::Num(fp32 * 1e3, 1),
                     TextTable::Num(espresso * 1e3, 1),
                     TextTable::Num(fp32 / espresso, 2) + "x"});
  }
  std::cout << "Figure 16 (speedup): simulated 64-GPU NVLink testbed\n";
  speedups.Print(std::cout);
  std::cout << "Paper: ~1.55x for BERT-base fine-tuning, 1.23x for ResNet101\n";
  return parity ? 0 : 1;
}

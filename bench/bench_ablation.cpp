// Ablation study of this implementation's own design choices (DESIGN.md §5) — what the
// paper's text motivates but does not measure directly:
//   (a) candidate pruning: Algorithm 1 over the pruned per-tensor candidate set vs the
//       full structural decision tree (quality vs selection-time trade-off, §4.4.2's
//       "eliminate a large number of suboptimal strategies");
//   (b) bubble elimination (Property 1): selection with Remove() on vs off;
//   (c) Algorithm 2's restricted search (Lemma 1) vs coordinate descent budgets;
//   (d) multi-start refinement: the single greedy trajectory vs the full Select().
#include <chrono>
#include <iostream>

#include "src/compress/compressor.h"
#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/models/model_zoo.h"
#include "src/models/tensor_fusion.h"
#include "src/util/table.h"

namespace {

using namespace espresso;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  const ClusterSpec cluster = PcieCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "efsignsgd"});

  // ---- (a) candidate pruning ----
  {
    std::cout << "(a) Candidate pruning (VGG16, PCIe, EFSignSGD)\n";
    const ModelProfile model = Vgg16();
    const TreeConfig config{cluster.machines, cluster.gpus_per_machine, false};

    TextTable table({"Candidate set", "options", "selection (ms)", "iteration (ms)"});
    struct Variant {
      const char* label;
      std::vector<CompressionOption> candidates;
    };
    OptionSpace full_space = EnumerateOptions(config);
    Variant variants[] = {
        {"pruned (CandidateOptions)", CandidateOptions(config)},
        {"full structural tree", std::move(full_space.options)},
    };
    for (Variant& v : variants) {
      SelectorOptions options;
      options.candidates = std::move(v.candidates);
      const double t0 = Now();
      EspressoSelector selector(model, cluster, *compressor, options);
      const SelectionResult result = selector.Select();
      const double elapsed = Now() - t0;
      table.AddRow({v.label, std::to_string(options.candidates.size()),
                    TextTable::Num(elapsed * 1e3, 1),
                    TextTable::Num(result.iteration_time * 1e3, 2)});
    }
    table.Print(std::cout);
    std::cout << "Pruning trades a few percent of strategy quality for an order of "
                 "magnitude in selection time (the elimination step of §4.4.2).\n\n";
  }

  // ---- (b) bubble elimination ----
  {
    std::cout << "(b) Bubble elimination (Property 1) on/off (LSTM, PCIe)\n";
    const ModelProfile model = Lstm();
    TextTable table({"Remove()", "timeline evals", "selection (ms)", "iteration (ms)"});
    for (bool disabled : {false, true}) {
      SelectorOptions options;
      options.disable_bubble_elimination = disabled;
      const double t0 = Now();
      EspressoSelector selector(model, cluster, *compressor, options);
      const SelectionResult result = selector.Select();
      const double elapsed = Now() - t0;
      table.AddRow({disabled ? "off" : "on", std::to_string(result.timeline_evaluations),
                    TextTable::Num(elapsed * 1e3, 2),
                    TextTable::Num(result.iteration_time * 1e3, 2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // ---- (c) offload search budget ----
  {
    std::cout << "(c) Algorithm 2 search: exhaustive product space vs coordinate descent "
                 "(BERT-base, NVLink, Random-k)\n";
    const ModelProfile model = BertBase();
    const ClusterSpec nvlink = NvlinkCluster();
    const auto randomk =
        CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.01});
    TextTable table({"Budget", "mode", "combinations", "offload (ms)", "iteration (ms)"});
    for (size_t budget : {size_t{64}, size_t{3000}, size_t{2000000}}) {
      SelectorOptions options;
      options.offload_search_budget = budget;
      EspressoSelector selector(model, nvlink, *randomk, options);
      const Strategy gpu = selector.SelectGpuCompression();
      size_t combos = 0;
      bool exact = true;
      const double t0 = Now();
      const Strategy offloaded = selector.OffloadToCpu(gpu, &combos, &exact);
      const double elapsed = Now() - t0;
      table.AddRow({std::to_string(budget), exact ? "exhaustive" : "descent",
                    std::to_string(combos), TextTable::Num(elapsed * 1e3, 1),
                    TextTable::Num(selector.evaluator().IterationTime(offloaded) * 1e3, 2)});
    }
    table.Print(std::cout);
    std::cout << "Descent reaches the exhaustive optimum at a fraction of the "
                 "combinations when the space is large.\n\n";
  }

  // ---- (e runs after d) tensor fusion: see below ----
  // ---- (d) multi-start refinement ----
  {
    std::cout << "(d) Single greedy trajectory vs full Select() (VGG16, PCIe)\n";
    const ModelProfile model = Vgg16();
    EspressoSelector selector(model, cluster, *compressor);
    const double t0 = Now();
    Strategy single = selector.SelectGpuCompression();
    single = selector.OffloadToCpu(single);
    const double single_elapsed = Now() - t0;
    const double t1 = Now();
    const SelectionResult full = selector.Select();
    const double full_elapsed = Now() - t1;
    TextTable table({"Pipeline", "selection (ms)", "iteration (ms)"});
    table.AddRow({"Algorithm 1 + 2 only", TextTable::Num(single_elapsed * 1e3, 1),
                  TextTable::Num(selector.evaluator().IterationTime(single) * 1e3, 2)});
    table.AddRow({"with refinement + multi-start", TextTable::Num(full_elapsed * 1e3, 1),
                  TextTable::Num(full.iteration_time * 1e3, 2)});
    table.Print(std::cout);
    std::cout << "The extra trajectories buy the Figure-15 dominance guarantee.\n\n";
  }

  // ---- (e) tensor fusion (MergeComp [69]) composed with selection ----
  {
    std::cout << "(e) Tensor fusion x Espresso (ResNet101, PCIe, DGC)\n";
    const ModelProfile model = ResNet101();
    const auto dgc = CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
    TextTable table({"Bucket size", "tensors", "selection (ms)", "iteration (ms)"});
    for (size_t bucket_mb : {size_t{0}, size_t{1}, size_t{4}, size_t{16}}) {
      const ModelProfile fused = FuseTensors(model, bucket_mb * 1024 * 1024);
      const double t0 = Now();
      EspressoSelector selector(fused, cluster, *dgc);
      const SelectionResult result = selector.Select();
      const double elapsed = Now() - t0;
      table.AddRow({bucket_mb == 0 ? "none" : std::to_string(bucket_mb) + " MB",
                    std::to_string(fused.TensorCount()), TextTable::Num(elapsed * 1e3, 1),
                    TextTable::Num(result.iteration_time * 1e3, 2)});
    }
    table.Print(std::cout);
    std::cout << "Fusion collapses the per-tensor latency constants and shrinks the "
                 "selection problem; past the sweet spot it costs pipelining.\n";
  }
  return 0;
}

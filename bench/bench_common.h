// Shared harness for the Figure 12/13 throughput sweeps: runs every scheme over
// 8..64 GPUs for one (model, algorithm, testbed) combination and prints the series the
// paper plots, plus the speedup factors its text quotes.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/compress/compressor.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"
#include "src/util/table.h"

namespace espresso {

inline void RunThroughputSweep(const std::string& model_name, const std::string& algorithm,
                               bool pcie) {
  const ModelProfile model = GetModel(model_name);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = algorithm, .ratio = 0.01});

  const Scheme schemes[] = {Scheme::kFp32, Scheme::kBytePSCompress, Scheme::kHiTopKComm,
                            Scheme::kHiPress, Scheme::kEspresso, Scheme::kUpperBound};
  const size_t machine_counts[] = {1, 2, 4, 8};

  std::cout << "--- " << model_name << " + " << algorithm << " on "
            << (pcie ? "PCIe-only machines, 25Gbps Ethernet"
                     : "NVLink machines, 100Gbps Ethernet")
            << " (" << model.throughput_unit << ") ---\n";

  TextTable table({"Scheme", "8 GPUs", "16 GPUs", "32 GPUs", "64 GPUs"});
  std::map<Scheme, double> at64;
  for (Scheme scheme : schemes) {
    std::vector<std::string> row = {SchemeName(scheme)};
    for (size_t machines : machine_counts) {
      const ClusterSpec cluster = pcie ? PcieCluster(machines) : NvlinkCluster(machines);
      const ThroughputResult r = RunScheme(model, cluster, *compressor, scheme);
      row.push_back(TextTable::Num(r.throughput, 0));
      if (machines == 8) {
        at64[scheme] = r.throughput;
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  auto speedup = [&](Scheme over) {
    return TextTable::Percent(at64[Scheme::kEspresso] / at64[over] - 1.0, 0);
  };
  std::cout << "Espresso speedup at 64 GPUs: vs FP32 " << speedup(Scheme::kFp32)
            << ", vs BytePS-Compress " << speedup(Scheme::kBytePSCompress)
            << ", vs HiTopKComm " << speedup(Scheme::kHiTopKComm) << ", vs HiPress "
            << speedup(Scheme::kHiPress) << "; gap to Upper Bound "
            << TextTable::Percent(1.0 - at64[Scheme::kEspresso] / at64[Scheme::kUpperBound],
                                  0)
            << "\n\n";
}

}  // namespace espresso

#endif  // BENCH_BENCH_COMMON_H_

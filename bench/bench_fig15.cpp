// Figure 15: the importance of the entire search space. Each panel cripples one of the
// four dimensions and reruns the selection; the full four-dimensional Espresso always
// wins. VGG16 with 64 GPUs; NVLink machines for (a)-(c), EFSignSGD for (d) per the
// paper's setup; panel (d) uses the PCIe testbed to show the intra/inter trade-off.
#include <iostream>

#include "src/compress/compressor.h"
#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"
#include "src/util/table.h"

namespace {

using namespace espresso;

double ScalingOf(const ModelProfile& model, const ClusterSpec& cluster,
                 const Compressor& compressor, const Strategy& strategy) {
  return MeasureThroughput(model, cluster, compressor, strategy).scaling_factor;
}

void Panel(const char* title, const ModelProfile& model, const ClusterSpec& cluster,
           const Compressor& compressor,
           const std::vector<std::pair<const char*, CrippledDimension>>& mechanisms) {
  EspressoSelector selector(model, cluster, compressor);
  const SelectionResult full = selector.Select();
  const double full_scaling =
      MeasureThroughput(model, cluster, compressor, full.strategy).scaling_factor;

  TextTable table({"Mechanism", "scaling factor", "vs Espresso"});
  bool espresso_wins = true;
  for (const auto& [name, dim] : mechanisms) {
    const Strategy s = CrippledStrategy(model, cluster, compressor, dim);
    const double scaling = ScalingOf(model, cluster, compressor, s);
    if (scaling > full_scaling + 1e-9) {
      espresso_wins = false;
    }
    table.AddRow({name, TextTable::Num(scaling, 2),
                  TextTable::Percent(scaling / full_scaling - 1.0, 1)});
  }
  table.AddRow({"Espresso (all 4 dims)", TextTable::Num(full_scaling, 2), "--"});
  std::cout << title << "\n";
  table.Print(std::cout);
  std::cout << (espresso_wins ? "Shape check PASSED: full search space wins\n\n"
                              : "Shape check FAILED: a crippled mechanism won\n\n");
}

}  // namespace

int main() {
  using namespace espresso;
  const ModelProfile model = GetModel("vgg16");
  const auto randomk =
      CreateCompressor(CompressorConfig{.algorithm = "randomk", .ratio = 0.01});
  const auto efsignsgd = CreateCompressor(CompressorConfig{.algorithm = "efsignsgd"});

  // The paper runs (a)-(c) on NVLink machines; on our calibration VGG16+NVLink is
  // compute-bound at 64 GPUs (every mechanism saturates at scaling 1.0), so the panels
  // use the PCIe testbed where the restricted spaces visibly separate — the claim under
  // test (full space >= every crippled space) is testbed-independent.
  std::cout << "Figure 15: crippling any dimension is never better (VGG16, 64 GPUs)\n\n";
  Panel("(a) Restrict Dimension 1 (which tensors to compress) — PCIe + Randomk", model,
        PcieCluster(), *randomk,
        {{"All compression", CrippledDimension::kAllCompression},
         {"Myopic compression", CrippledDimension::kMyopicCompression}});
  Panel("(b) Restrict Dimension 2 (compute resource) — PCIe + Randomk", model,
        PcieCluster(), *randomk,
        {{"GPU compression only", CrippledDimension::kGpuCompression},
         {"CPU compression only", CrippledDimension::kCpuCompression}});
  Panel("(c) Restrict Dimension 3 (communication scheme) — PCIe + Randomk", model,
        PcieCluster(), *randomk,
        {{"Inter Allgather", CrippledDimension::kInterAllgather},
         {"Inter Alltoall", CrippledDimension::kInterAlltoall}});
  Panel("(d) Restrict Dimension 4 (compression choice) — PCIe + EFSignSGD", model,
        PcieCluster(), *efsignsgd,
        {{"Inter Alltoall", CrippledDimension::kInterAlltoall},
         {"Alltoall+Alltoall", CrippledDimension::kAlltoallAlltoall}});
  return 0;
}

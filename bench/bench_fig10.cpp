// Figure 10: the benefit ratio of GPU compression — reduced communication time divided
// by incurred compression time — as a function of tensor size (64 GPUs, NVLink
// machines). The ratio grows with size because every compression pays a constant
// kernel-launch overhead; this is the insight behind Property 2's size prioritization.
#include <iostream>

#include "src/compress/compressor.h"
#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/core/timeline.h"
#include "src/models/model_profile.h"
#include "src/util/table.h"

int main() {
  using namespace espresso;
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});

  TextTable table({"Tensor size", "comm saved (ms)", "compression cost (ms)",
                   "benefit ratio"});
  double previous_ratio = 0.0;
  bool monotone = true;
  for (size_t elements = 1 << 12; elements <= (64 << 20); elements *= 4) {
    ModelProfile model;
    model.name = "probe";
    model.forward_time_s = 1e-3;
    model.optimizer_time_s = 1e-4;
    model.batch_size = 1;
    model.throughput_unit = "it/s";
    model.tensors = {{"probe", elements, 1e-3}};
    TimelineEvaluator evaluator(model, cluster, *compressor);

    const CompressionOption plain =
        DefaultUncompressedOption(TreeConfig{cluster.machines, cluster.gpus_per_machine,
                                             false});
    const CompressionOption compressed = InterOnlyIndivisibleOption(cluster, Device::kGpu);
    double plain_comm = 0.0;
    for (const Op& op : plain.ops) {
      plain_comm += evaluator.OpDuration(op, elements);
    }
    double compressed_comm = 0.0, compression = 0.0;
    for (const Op& op : compressed.ops) {
      const double d = evaluator.OpDuration(op, elements);
      (op.task == ActionTask::kComm ? compressed_comm : compression) += d;
    }
    const double saved = plain_comm - compressed_comm;
    const double ratio = saved / compression;
    if (ratio < previous_ratio) {
      monotone = false;
    }
    previous_ratio = ratio;

    std::string size_label;
    if (elements >= (1 << 20)) {
      size_label = std::to_string(elements >> 20) + "M";
    } else {
      size_label = std::to_string(elements >> 10) + "K";
    }
    table.AddRow({size_label + " elems", TextTable::Num(saved * 1e3, 3),
                  TextTable::Num(compression * 1e3, 3), TextTable::Num(ratio, 2)});
  }
  std::cout << "Figure 10: benefit ratio of GPU compression (DGC 1%, 64 GPUs, NVLink)\n";
  table.Print(std::cout);
  std::cout << (monotone ? "\nShape check PASSED: ratio increases with tensor size "
                           "(matches the paper's Figure 10)\n"
                         : "\nShape check FAILED: ratio is not monotone in size\n");
  return monotone ? 0 : 1;
}

// Selector hot-path benchmark: times EspressoSelector::Select() in two arms per
// (model, GC, system) combo —
//   serial:      threads = 0, memoization off (the pre-acceleration configuration);
//   accelerated: threads = N (default: hardware concurrency), memoized F(S) cache on —
// asserts the two arms select byte-identical strategies (64-bit fingerprint equality),
// and emits a JSON report suitable for committing as BENCH_selector.json.
//
// Usage:
//   bench_selector [--quick] [--threads N] [--configs DIR] [--out FILE] [--check FILE]
//                  [--metrics-out FILE]... [--trace-out FILE]...
//
// --quick       one repetition per arm instead of three (CI perf-smoke mode)
// --threads N   worker threads for the accelerated arm
// --configs DIR directory holding the shipped .ini files (default: configs)
// --out FILE    write the JSON report to FILE instead of stdout
// --check FILE  compare this run's strategy fingerprints against a committed report;
//               exit 1 on any divergence (catches nondeterminism regressions — the
//               committed timings are informational and are not compared)
// --metrics-out write the run's metrics registry (Prometheus text; JSON for .json)
// --trace-out   write the run's wall-clock spans as a chrome trace
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_host.h"
#include "src/core/espresso.h"
#include "src/core/eval_cache.h"
#include "src/ddl/job_config.h"
#include "src/obs/cli.h"
#include "src/obs/span.h"
#include "src/obs/trace_writer.h"
#include "src/util/json_writer.h"

namespace {

using namespace espresso;

struct Combo {
  std::string name;
  std::string model;
  std::string gc;
  std::string system;
};

const Combo kCombos[] = {
    {"custom-dgc-nvlink", "model_custom.ini", "gc_dgc.ini", "system_nvlink.ini"},
    {"custom-efsignsgd-pcie", "model_custom.ini", "gc_efsignsgd_limited.ini",
     "system_pcie.ini"},
    {"gpt2-dgc-nvlink", "model_gpt2.ini", "gc_dgc.ini", "system_nvlink.ini"},
    {"gpt2-efsignsgd-pcie", "model_gpt2.ini", "gc_efsignsgd_limited.ini",
     "system_pcie.ini"},
};

struct ArmResult {
  double seconds = 0.0;  // min over repetitions
  double warm_seconds = 0.0;  // re-selection on the same selector (warm cache); 0 = n/a
  SelectorTelemetry telemetry;
  SelectorTelemetry warm_telemetry;
  uint64_t fingerprint = 0;
  double iteration_time = 0.0;
};

std::string HexFingerprint(uint64_t fp) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, fp);
  return buf;
}

ArmResult RunArm(const JobConfig& job, const Compressor& compressor, size_t threads,
                 size_t cache_capacity, int repetitions) {
  ArmResult arm;
  arm.seconds = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    SelectorOptions options;
    options.threads = threads;
    options.cache_capacity = cache_capacity;
    EspressoSelector selector(job.model, job.cluster, compressor, options);
    const SelectionResult result = selector.Select();  // cold: fresh selector + cache
    const uint64_t fp = StrategyFingerprint(result.strategy);
    if (rep > 0 && fp != arm.fingerprint) {
      std::cerr << "FATAL: selector nondeterministic across repetitions\n";
      std::exit(1);
    }
    arm.fingerprint = fp;
    arm.iteration_time = result.iteration_time;
    if (result.telemetry.total_seconds < arm.seconds) {
      arm.seconds = result.telemetry.total_seconds;
      arm.telemetry = result.telemetry;
    }
    // Warm re-selection: the steady-state cost of re-deciding with unchanged inputs
    // (e.g. after a periodic profiler refresh) — nearly every F(S) query hits the memo.
    if (cache_capacity > 0 && rep + 1 == repetitions) {
      arm.warm_seconds = 1e300;
      for (int warm = 0; warm < repetitions; ++warm) {
        const SelectionResult rewarm = selector.Select();
        if (StrategyFingerprint(rewarm.strategy) != fp) {
          std::cerr << "FATAL: warm re-selection diverged from cold selection\n";
          std::exit(1);
        }
        if (rewarm.telemetry.total_seconds < arm.warm_seconds) {
          arm.warm_seconds = rewarm.telemetry.total_seconds;
          arm.warm_telemetry = rewarm.telemetry;
        }
      }
    }
  }
  return arm;
}

void WriteArm(JsonWriter& json, const char* key, const ArmResult& arm) {
  json.Key(key);
  json.BeginObject();
  json.Field("seconds", arm.seconds);
  json.Field("evaluations", arm.telemetry.evaluations);
  json.Field("simulations", arm.telemetry.simulations);
  json.Field("threads", static_cast<uint64_t>(arm.telemetry.threads));
  json.Field("cache_hits", arm.telemetry.cache_hits);
  json.Field("cache_misses", arm.telemetry.cache_misses);
  json.Field("cache_hit_rate", arm.telemetry.CacheHitRate());
  if (arm.warm_seconds > 0.0) {
    json.Field("warm_seconds", arm.warm_seconds);
    json.Field("warm_evaluations", arm.warm_telemetry.evaluations);
    json.Field("warm_simulations", arm.warm_telemetry.simulations);
    json.Field("warm_cache_hit_rate", arm.warm_telemetry.CacheHitRate());
  }
  json.EndObject();
}

// Pulls "name" -> "strategy_fingerprint" pairs out of a committed report. The report
// is machine-written by this binary, so a positional scan is sufficient — no JSON
// parser needed (the repo deliberately ships only a writer).
bool BaselineFingerprint(const std::string& text, const std::string& combo,
                         std::string* fingerprint) {
  const std::string name_marker = "\"name\":\"" + combo + "\"";
  const size_t at = text.find(name_marker);
  if (at == std::string::npos) {
    return false;
  }
  const std::string fp_marker = "\"strategy_fingerprint\":\"";
  const size_t fp_at = text.find(fp_marker, at);
  if (fp_at == std::string::npos) {
    return false;
  }
  const size_t begin = fp_at + fp_marker.size();
  const size_t end = text.find('"', begin);
  if (end == std::string::npos) {
    return false;
  }
  *fingerprint = text.substr(begin, end - begin);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  size_t threads = std::max(1u, std::thread::hardware_concurrency());
  std::string configs_dir = "configs";
  std::string out_path;
  std::string check_path;
  espresso::obs::ObsCliOptions obs_options;
  for (int i = 1; i < argc; ++i) {
    std::string obs_error;
    const auto obs_parse =
        espresso::obs::ObsCliOptions::ParseArg(argc, argv, &i, &obs_options, &obs_error);
    if (obs_parse == espresso::obs::ObsCliOptions::Parse::kConsumed) {
      continue;
    }
    if (obs_parse == espresso::obs::ObsCliOptions::Parse::kError) {
      std::cerr << obs_error << "\n";
      return 2;
    }
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--threads") {
      threads = std::stoul(next());
    } else if (arg == "--configs") {
      configs_dir = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  const int repetitions = quick ? 1 : 3;
  obs_options.ApplyTraceEnable();

  std::string baseline;
  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    baseline = buf.str();
  }

  std::ostringstream report;
  JsonWriter json(report);
  json.BeginObject();
  json.Field("benchmark", "bench_selector");
  json.Field("quick", quick);
  json.Field("repetitions", static_cast<int64_t>(repetitions));
  WriteHostBlock(json);
  json.Key("combos");
  json.BeginArray();

  bool check_failed = false;
  for (const Combo& combo : kCombos) {
    const JobConfigResult loaded = LoadJobConfigFromFiles(
        configs_dir + "/" + combo.model, configs_dir + "/" + combo.gc,
        configs_dir + "/" + combo.system);
    if (!loaded.ok) {
      std::cerr << combo.name << ": " << loaded.error << "\n";
      return 1;
    }
    const JobConfig& job = loaded.job;
    const auto compressor = job.MakeCompressor();

    const ArmResult serial = RunArm(job, *compressor, 0, 0, repetitions);
    const ArmResult accel =
        RunArm(job, *compressor, threads, SelectorOptions{}.cache_capacity, repetitions);
    if (serial.fingerprint != accel.fingerprint) {
      std::cerr << "FATAL: " << combo.name
                << ": accelerated arm diverged from serial (serial "
                << HexFingerprint(serial.fingerprint) << ", accelerated "
                << HexFingerprint(accel.fingerprint) << ")\n";
      return 1;
    }
    const double speedup = accel.seconds > 0 ? serial.seconds / accel.seconds : 0.0;
    const double warm_speedup =
        accel.warm_seconds > 0 ? serial.seconds / accel.warm_seconds : 0.0;
    const std::string fingerprint = HexFingerprint(serial.fingerprint);

    json.BeginObject();
    json.Field("name", combo.name);
    json.Field("model", combo.model);
    json.Field("gc", combo.gc);
    json.Field("system", combo.system);
    json.Field("tensors", static_cast<uint64_t>(job.model.tensors.size()));
    json.Field("strategy_fingerprint", fingerprint);
    json.Field("iteration_time_ms", serial.iteration_time * 1e3);
    WriteArm(json, "serial", serial);
    WriteArm(json, "accelerated", accel);
    json.Field("speedup", speedup);
    json.Field("warm_speedup", warm_speedup);
    json.EndObject();

    std::fprintf(stderr,
                 "%-24s serial %8.2fms  accelerated %8.2fms (%.2fx)  warm %7.2fms "
                 "(%.1fx)  hit-rate %5.1f%%  %s\n",
                 combo.name.c_str(), serial.seconds * 1e3, accel.seconds * 1e3, speedup,
                 accel.warm_seconds * 1e3, warm_speedup,
                 accel.telemetry.CacheHitRate() * 100.0, fingerprint.c_str());

    if (!check_path.empty()) {
      std::string expected;
      if (!BaselineFingerprint(baseline, combo.name, &expected)) {
        std::fprintf(stderr, "%-24s not in baseline, skipping check\n",
                     combo.name.c_str());
      } else if (expected != fingerprint) {
        std::fprintf(stderr, "FAIL: %s fingerprint %s != committed %s\n",
                     combo.name.c_str(), fingerprint.c_str(), expected.c_str());
        check_failed = true;
      }
    }
  }

  json.EndArray();
  json.EndObject();
  report << "\n";

  if (out_path.empty()) {
    std::cout << report.str();
  } else {
    std::ofstream out(out_path);
    out << report.str();
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
  }
  if (!obs_options.WriteMetricsFiles(espresso::obs::GlobalMetrics(), std::cerr)) {
    return 1;
  }
  for (const std::string& path : obs_options.trace_out) {
    std::ofstream trace_out(path);
    if (!trace_out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    espresso::obs::WriteSpanTrace(trace_out, espresso::obs::GlobalTrace());
  }
  if (check_failed) {
    std::cerr << "selector diverged from the committed baseline\n";
    return 1;
  }
  return 0;
}

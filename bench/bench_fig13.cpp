// Figure 13: training throughput on PCIe-only GPU machines with 25Gbps Ethernet:
// (a) VGG16 + Random-k, (b) LSTM + EFSignSGD, (c) ResNet101 + DGC.
//
// Paper highlights at 64 GPUs: VGG16 — Espresso beats FP32/BytePS-Compress/HiPress by
// 269%/357%/55%; LSTM — beats BytePS-Compress/HiTopKComm/HiPress by 101%/73%/77%
// (BytePS-Compress harms LSTM by 12%); ResNet101 — not communication-intensive, yet
// Espresso still beats FP32/BytePS-Compress/HiPress by up to 20%/18%/24% while
// HiTopKComm's all-tensor compression backfires.
#include "bench/bench_common.h"

int main() {
  using namespace espresso;
  std::cout << "Figure 13: throughput with PCIe-only machines + 25Gbps Ethernet\n\n";
  RunThroughputSweep("vgg16", "randomk", /*pcie=*/true);
  RunThroughputSweep("lstm", "efsignsgd", /*pcie=*/true);
  RunThroughputSweep("resnet101", "dgc", /*pcie=*/true);
  return 0;
}

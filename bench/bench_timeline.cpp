// Performance of the timeline engine itself (google-benchmark): F(S) evaluations are
// the decision algorithm's inner loop (Tables 5-6 depend on this number), so this bench
// is the regression guard for the engine's allocation-light task path.
#include <benchmark/benchmark.h>

#include "src/core/baselines.h"
#include "src/core/timeline.h"
#include "src/models/model_zoo.h"

namespace {

using namespace espresso;

void BM_IterationTime(benchmark::State& state, const std::string& model_name) {
  const ModelProfile model = GetModel(model_name);
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy strategy = HiPressStrategy(model, cluster, *compressor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.IterationTime(strategy));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(model.tensors.size()));
}

void BM_BeforeBubble(benchmark::State& state) {
  const ModelProfile model = ResNet101();
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  TimelineEvaluator evaluator(model, cluster, *compressor);
  const Strategy strategy = Fp32Strategy(model, cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.BeforeBubble(strategy));
  }
}
BENCHMARK(BM_BeforeBubble)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"lstm", "vgg16", "gpt2", "bert-base", "resnet101"}) {
    const std::string label = std::string("IterationTime/") + name;
    const std::string model_name = name;
    benchmark::RegisterBenchmark(label.c_str(), [model_name](benchmark::State& state) {
      BM_IterationTime(state, model_name);
    })->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

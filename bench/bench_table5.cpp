// Table 5: the computational time for Espresso to select compression strategies,
// against the (estimated) brute-force time over |C|^N strategies. Uses
// google-benchmark for the timing and prints the table afterwards.
//
// Paper reference (8 NVLink machines):
//   VGG16 17ms | ResNet101 179ms | UGATIT 84ms | BERT-base 125ms | GPT2 99ms | LSTM 1ms
//   Brute force: > 24h for every model.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "src/core/brute_force.h"
#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/models/model_zoo.h"
#include "src/util/table.h"

namespace {

using namespace espresso;

const char* AlgorithmFor(const std::string& model) {
  // Match the paper's evaluation pairings where given; DGC elsewhere.
  if (model == "bert-base") {
    return "randomk";
  }
  if (model == "gpt2") {
    return "efsignsgd";
  }
  return "dgc";
}

struct Measurement {
  double selection_seconds = 0.0;
  size_t tensors = 0;
  size_t evaluations = 0;
};
std::map<std::string, Measurement> g_measurements;

void BM_SelectStrategy(benchmark::State& state, const std::string& model_name) {
  const ModelProfile model = GetModel(model_name);
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = CreateCompressor(
      CompressorConfig{.algorithm = AlgorithmFor(model_name), .ratio = 0.01});
  Measurement m;
  m.tensors = model.tensors.size();
  for (auto _ : state) {
    EspressoSelector selector(model, cluster, *compressor);
    const SelectionResult result = selector.Select();
    benchmark::DoNotOptimize(result.iteration_time);
    m.selection_seconds = result.gpu_stage_seconds + result.offload_stage_seconds;
    m.evaluations = result.timeline_evaluations;
  }
  g_measurements[model_name] = m;
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"vgg16", "resnet101", "ugatit", "bert-base", "gpt2", "lstm"}) {
    const std::string label = std::string("SelectStrategy/") + name;
    const std::string model_name = name;
    benchmark::RegisterBenchmark(
        label.c_str(), [model_name](benchmark::State& state) { BM_SelectStrategy(state, model_name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  TextTable table({"", "VGG16", "ResNet101", "UGATIT", "BERT-base", "GPT2", "LSTM"});
  std::vector<std::string> tensors = {"# of Tensors"};
  std::vector<std::string> espresso_row = {"Espresso"};
  std::vector<std::string> brute_row = {"Brute force"};
  for (const char* name : {"vgg16", "resnet101", "ugatit", "bert-base", "gpt2", "lstm"}) {
    const Measurement& m = g_measurements[name];
    tensors.push_back(std::to_string(m.tensors));
    espresso_row.push_back(TextTable::Num(m.selection_seconds * 1e3, 1) + "ms");
    const double per_eval =
        m.selection_seconds / static_cast<double>(std::max<size_t>(1, m.evaluations));
    const double brute = EstimateBruteForceSeconds(
        per_eval, CandidateOptions(TreeConfig{8, 8, false}).size(), m.tensors);
    brute_row.push_back(brute >= 24 * 3600.0 ? "> 24h"
                                             : TextTable::Num(brute, 1) + "s");
  }
  table.AddRow(tensors);
  table.AddRow(espresso_row);
  table.AddRow(brute_row);
  std::cout << "\nTable 5: time to select compression strategies (8 NVLink machines)\n";
  table.Print(std::cout);
  std::cout << "Paper: Espresso 17/179/84/125/99/1 ms; brute force > 24h everywhere\n";
  benchmark::Shutdown();
  return 0;
}

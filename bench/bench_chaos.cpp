// Chaos harness: the Espresso runtime under injected faults, end to end.
//
// Scenario (all draws seeded — two runs emit byte-identical JSON):
//   1. Straggler + link-jitter timeline sweep: 200 iterations of VGG16 on the NVLink
//      testbed with a 10% straggler probability and 5% inter-link jitter; reports the
//      iteration-time distribution against the fault-free baseline.
//   2. Lossy-datapath convergence: data-parallel MLP training through the real
//      compressed pipeline with 5% payload drops (error feedback on), compared with the
//      fault-free run — accuracy must land within 1%.
//   3. Retry/fallback sweep: ResilientExecuteStrategy under a 30% phase-failure rate;
//      reports clean/retried/fallback counts and verifies the aggregation stays exact.
//   4. Online re-selection: the inter-machine link degrades 4x mid-run; the drift
//      monitor must trigger a strategy hot-swap that changes at least one tensor option.
//
// Usage: bench_chaos [report.json] [--metrics-out=<file>]... [--trace-out=<file>]...
//   (default report: chaos_report.json)
#include <cmath>
#include <fstream>
#include <iostream>

#include "src/collectives/primitives.h"
#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/fault/chaos_channel.h"
#include "src/fault/drift_monitor.h"
#include "src/fault/resilient_executor.h"
#include "src/models/model_zoo.h"
#include "src/nn/parallel_trainer.h"
#include "src/obs/cli.h"
#include "src/obs/span.h"
#include "src/obs/trace_writer.h"
#include "src/util/json_writer.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace espresso {
namespace {

struct TimelineSweep {
  Summary iteration_times;
  double p99 = 0.0;
  double baseline = 0.0;
  size_t straggler_iterations = 0;
};

TimelineSweep RunTimelineSweep() {
  const ModelProfile model = Vgg16();
  const ClusterSpec cluster = NvlinkCluster(4, 4);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.01});
  EspressoSelector selector(model, cluster, *compressor);
  const Strategy strategy = selector.Select().strategy;

  FaultSpec spec;
  spec.seed = 7;
  spec.straggler_probability = 0.1;
  spec.straggler_slowdown = 2.5;
  spec.link_jitter = 0.05;
  const FaultPlan plan(spec);
  const FaultInjector injector(plan);

  TimelineSweep sweep;
  TimelineEvaluator evaluator(model, cluster, *compressor);
  sweep.baseline = evaluator.IterationTime(strategy);
  std::vector<double> times;
  for (uint64_t it = 0; it < 200; ++it) {
    const IterationFaults faults = plan.AtIteration(it);
    if (faults.straggler_active) ++sweep.straggler_iterations;
    TimelineEvaluator perturbed(model, cluster, *compressor);
    perturbed.SetResourceScales(injector.ScalesFor(faults));
    times.push_back(perturbed.IterationTime(strategy));
  }
  sweep.p99 = Percentile(times, 99.0);
  sweep.iteration_times = Summarize(times);
  return sweep;
}

struct ConvergenceRun {
  double fault_free_accuracy = 0.0;
  double lossy_accuracy = 0.0;
  uint64_t payloads_dropped = 0;
  uint64_t payload_attempts = 0;
};

ConvergenceRun RunLossyConvergence() {
  const Dataset all = MakeGaussianBlobs(1536, 12, 4, 2.5, 99);
  const Dataset train = Slice(all, 0, 1024);
  const Dataset test = Slice(all, 1024, 512);
  const auto compressor =
      CreateCompressor(CompressorConfig{.algorithm = "dgc", .ratio = 0.05});

  TrainConfig config;
  config.workers = 4;
  config.hidden_dim = 24;
  config.batch_per_worker = 16;
  config.learning_rate = 0.05;
  config.epochs = 20;
  config.seed = 1234;
  config.scheme = SyncScheme::kCompressedIndivisible;
  config.compressor = compressor.get();

  ConvergenceRun run;
  run.fault_free_accuracy = TrainDataParallel(train, test, config).back().test_accuracy;

  FaultSpec spec;
  spec.seed = 2024;
  spec.drop_probability = 0.05;
  const FaultPlan plan(spec);
  const FaultInjector injector(plan);
  ChaosChannel channel(&injector);
  TrainConfig lossy = config;
  lossy.channel = &channel;
  run.lossy_accuracy = TrainDataParallel(train, test, lossy).back().test_accuracy;
  run.payloads_dropped = channel.stats().dropped;
  run.payload_attempts = channel.stats().attempts;
  return run;
}

struct ExecutorSweep {
  ResilienceReport report;
  bool aggregation_exact = true;
};

ExecutorSweep RunRetryFallbackSweep() {
  FaultSpec spec;
  spec.seed = 5;
  spec.collective_failure_probability = 0.3;
  const FaultInjector injector{FaultPlan{spec}};
  RetryPolicy policy;
  policy.max_attempts = 3;

  const ExecutorConfig config{.machines = 2, .gpus_per_machine = 2};
  const TreeConfig tree{2, 2, false};
  const size_t tensors = 24, elements = 64;
  const Strategy strategy = UniformStrategy(tensors, DefaultUncompressedOption(tree));

  ExecutorSweep sweep;
  for (uint64_t it = 0; it < 10; ++it) {
    std::vector<RankBuffers> gradients;
    std::vector<std::vector<float>> expected;
    for (size_t t = 0; t < tensors; ++t) {
      RankBuffers buffers(config.ranks(), std::vector<float>(elements));
      for (size_t r = 0; r < config.ranks(); ++r) {
        Rng rng(DeriveSeed(DeriveSeed(17, it), t * 100 + r));
        rng.FillNormal(buffers[r], 0.0, 1.0);
      }
      expected.push_back(NaiveSum(buffers));
      gradients.push_back(std::move(buffers));
    }
    const ResilienceReport report =
        ResilientExecuteStrategy(strategy, config, gradients, injector, policy, it);
    sweep.report.tensors += report.tensors;
    sweep.report.clean += report.clean;
    sweep.report.retried += report.retried;
    sweep.report.fallbacks += report.fallbacks;
    sweep.report.total_retries += report.total_retries;
    sweep.report.backoff_seconds += report.backoff_seconds;
    for (size_t t = 0; t < tensors; ++t) {
      for (size_t r = 0; r < config.ranks(); ++r) {
        for (size_t i = 0; i < elements; ++i) {
          if (std::abs(gradients[t][r][i] - expected[t][i]) > 1e-3f) {
            sweep.aggregation_exact = false;
          }
        }
      }
    }
  }
  return sweep;
}

struct ReselectionRun {
  bool triggered = false;
  ReselectionEvent event;
  size_t trigger_iteration = 0;
};

ReselectionRun RunOnlineReselection() {
  const ModelProfile model = Vgg16();
  const ClusterSpec profiled = NvlinkCluster(4, 4);
  const CompressorConfig gc{.algorithm = "dgc", .ratio = 0.01};
  const auto compressor = CreateCompressor(gc);
  DriftConfig drift;
  drift.threshold = 0.25;
  drift.smoothing = 0.5;
  OnlineReselector reselector(model, profiled, *compressor, gc, SelectorOptions{}, drift);

  // 10 healthy iterations, then the inter link degrades 4x and stays degraded.
  FaultSpec spec;
  spec.seed = 11;
  spec.link_jitter = 0.02;
  FaultSpec degraded_spec = spec;
  degraded_spec.inter_bandwidth_factor = 0.25;
  const FaultPlan healthy(spec);
  const FaultPlan degraded(degraded_spec);
  const FaultInjector healthy_injector(healthy);
  const FaultInjector degraded_injector(degraded);

  ReselectionRun run;
  for (uint64_t it = 0; it < 30; ++it) {
    const bool is_degraded = it >= 10;
    const FaultInjector& injector = is_degraded ? degraded_injector : healthy_injector;
    const FaultPlan& plan = is_degraded ? degraded : healthy;
    const ClusterSpec observed = injector.PerturbCluster(profiled, plan.AtIteration(it));
    const auto event = reselector.Step(it, observed);
    if (event.has_value() && !run.triggered) {
      run.triggered = true;
      run.event = *event;
      run.trigger_iteration = it;
    }
  }
  return run;
}

void WriteReport(std::ostream& os, const TimelineSweep& sweep, const ConvergenceRun& conv,
                 const ExecutorSweep& executor, const ReselectionRun& reselect) {
  JsonWriter json(os);
  json.BeginObject();
  json.Field("bench", "chaos");
  json.Field("seed_note", "all draws seeded; this file is byte-identical across runs");

  json.Key("timeline_sweep");
  json.BeginObject();
  json.Field("baseline_iteration_s", sweep.baseline);
  json.Field("mean_iteration_s", sweep.iteration_times.mean);
  json.Field("max_iteration_s", sweep.iteration_times.max);
  json.Field("p99_iteration_s", sweep.p99);
  json.Field("straggler_iterations", static_cast<uint64_t>(sweep.straggler_iterations));
  json.EndObject();

  json.Key("lossy_convergence");
  json.BeginObject();
  json.Field("fault_free_accuracy", conv.fault_free_accuracy);
  json.Field("lossy_accuracy", conv.lossy_accuracy);
  json.Field("accuracy_delta", conv.lossy_accuracy - conv.fault_free_accuracy);
  json.Field("payloads_dropped", conv.payloads_dropped);
  json.Field("payload_attempts", conv.payload_attempts);
  json.EndObject();

  json.Key("retry_fallback");
  json.BeginObject();
  json.Field("tensors", static_cast<uint64_t>(executor.report.tensors));
  json.Field("clean", static_cast<uint64_t>(executor.report.clean));
  json.Field("retried", static_cast<uint64_t>(executor.report.retried));
  json.Field("fp32_fallbacks", static_cast<uint64_t>(executor.report.fallbacks));
  json.Field("total_retries", static_cast<uint64_t>(executor.report.total_retries));
  json.Field("backoff_seconds", executor.report.backoff_seconds);
  json.Field("aggregation_exact", executor.aggregation_exact);
  json.EndObject();

  json.Key("online_reselection");
  json.BeginObject();
  json.Field("triggered", reselect.triggered);
  json.Field("trigger_iteration", static_cast<uint64_t>(reselect.trigger_iteration));
  json.Field("drift", reselect.event.drift);
  json.Field("options_changed", static_cast<uint64_t>(reselect.event.options_changed));
  json.Field("stale_iteration_s", reselect.event.stale_iteration_time);
  json.Field("new_iteration_s", reselect.event.new_iteration_time);
  json.EndObject();

  json.EndObject();
  os << "\n";
}

int Run(const std::string& report_path) {
  std::cout << "Chaos harness: straggler + lossy datapath + retry/fallback + online "
               "re-selection\n\n";

  const TimelineSweep sweep = RunTimelineSweep();
  TextTable timeline({"metric", "value"});
  timeline.AddRow({"fault-free iteration (ms)", TextTable::Num(sweep.baseline * 1e3, 2)});
  timeline.AddRow({"mean under faults (ms)",
                   TextTable::Num(sweep.iteration_times.mean * 1e3, 2)});
  timeline.AddRow({"p99 under faults (ms)", TextTable::Num(sweep.p99 * 1e3, 2)});
  timeline.AddRow({"straggler iterations / 200",
                   TextTable::Num(static_cast<double>(sweep.straggler_iterations), 0)});
  std::cout << "1) Straggler + link-jitter timeline sweep (VGG16, 16 GPUs)\n";
  timeline.Print(std::cout);

  const ConvergenceRun conv = RunLossyConvergence();
  std::cout << "\n2) Convergence under 5% payload drops (EF on): fault-free "
            << TextTable::Percent(conv.fault_free_accuracy, 2) << " vs lossy "
            << TextTable::Percent(conv.lossy_accuracy, 2) << " (" << conv.payloads_dropped
            << "/" << conv.payload_attempts << " payloads dropped)\n";

  const ExecutorSweep executor = RunRetryFallbackSweep();
  std::cout << "\n3) Retry/fallback sweep (30% phase failures, 240 tensor syncs): "
            << executor.report.clean << " clean, " << executor.report.retried
            << " retried, " << executor.report.fallbacks << " FP32 fallbacks, "
            << "aggregation " << (executor.aggregation_exact ? "exact" : "WRONG") << "\n";

  const ReselectionRun reselect = RunOnlineReselection();
  std::cout << "\n4) Online re-selection (inter link degraded 4x at iteration 10): ";
  if (reselect.triggered) {
    std::cout << "triggered at iteration " << reselect.trigger_iteration << ", drift "
              << TextTable::Num(reselect.event.drift, 3) << ", "
              << reselect.event.options_changed << " tensor options changed, F(S) "
              << TextTable::Num(reselect.event.stale_iteration_time * 1e3, 2) << " -> "
              << TextTable::Num(reselect.event.new_iteration_time * 1e3, 2) << " ms\n";
  } else {
    std::cout << "NOT triggered\n";
  }

  std::ofstream out(report_path);
  WriteReport(out, sweep, conv, executor, reselect);
  std::cout << "\nJSON report: " << report_path << "\n";

  const bool straggled = sweep.straggler_iterations > 0 &&
                         sweep.iteration_times.max > sweep.baseline;
  const bool converged =
      std::abs(conv.lossy_accuracy - conv.fault_free_accuracy) <= 0.01 &&
      conv.payloads_dropped > 0;
  const bool resilient = executor.aggregation_exact && executor.report.fallbacks > 0;
  const bool reselected = reselect.triggered && reselect.event.options_changed > 0;
  const bool pass = straggled && converged && resilient && reselected;
  std::cout << (pass ? "Chaos checks PASSED"
                     : "Chaos checks FAILED")
            << ": stragglers " << (straggled ? "ok" : "MISSING") << ", convergence "
            << (converged ? "ok" : "DEGRADED") << ", fallback "
            << (resilient ? "ok" : "BROKEN") << ", re-selection "
            << (reselected ? "ok" : "MISSING") << "\n";
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace espresso

int main(int argc, char** argv) {
  using espresso::obs::ObsCliOptions;
  ObsCliOptions obs_options;
  std::string report_path = "chaos_report.json";
  bool have_report_path = false;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    switch (ObsCliOptions::ParseArg(argc, argv, &i, &obs_options, &error)) {
      case ObsCliOptions::Parse::kConsumed:
        break;
      case ObsCliOptions::Parse::kError:
        std::cerr << "error: " << error << "\n";
        return 2;
      case ObsCliOptions::Parse::kNotMine:
        if (have_report_path) {
          std::cerr << "usage: " << argv[0]
                    << " [report.json] [--metrics-out=<file>]... [--trace-out=<file>]...\n";
          return 2;
        }
        report_path = argv[i];
        have_report_path = true;
        break;
    }
  }
  obs_options.ApplyTraceEnable();
  const int status = espresso::Run(report_path);
  if (status != 0) {
    return status;
  }
  if (!obs_options.WriteMetricsFiles(espresso::obs::GlobalMetrics(), std::cerr)) {
    return 1;
  }
  for (const std::string& path : obs_options.trace_out) {
    std::ofstream trace_out(path);
    if (!trace_out) {
      std::cerr << "error: cannot write " << path << "\n";
      return 1;
    }
    espresso::obs::WriteSpanTrace(trace_out, espresso::obs::GlobalTrace());
  }
  return 0;
}

// Scale-out projection (beyond the paper's 64 GPUs): §5.2.1 observes that "when DDL
// scales out, the computational overhead caused by compression also increases, and
// Espresso becomes more beneficial". This bench extends the Figure-12/13 sweeps to 128
// and 256 GPUs and checks that Espresso's margin over the best baseline is monotone
// non-decreasing in cluster size.
#include <algorithm>
#include <iostream>

#include "src/compress/compressor.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"
#include "src/util/table.h"

int main() {
  using namespace espresso;
  struct Job {
    const char* model;
    const char* algorithm;
    bool pcie;
  };
  bool monotone = true;
  for (const Job& job : {Job{"bert-base", "randomk", false}, Job{"vgg16", "randomk", true}}) {
    const ModelProfile model = GetModel(job.model);
    const auto compressor =
        CreateCompressor(CompressorConfig{.algorithm = job.algorithm, .ratio = 0.01});
    std::cout << "--- " << job.model << " + " << job.algorithm << " on "
              << (job.pcie ? "PCIe/25G" : "NVLink/100G") << " ---\n";
    TextTable table({"GPUs", "FP32", "best baseline", "Espresso", "margin"});
    double previous_margin = 0.0;
    for (size_t machines : {4u, 8u, 16u, 32u}) {
      const ClusterSpec cluster =
          job.pcie ? PcieCluster(machines) : NvlinkCluster(machines);
      const double fp32 =
          RunScheme(model, cluster, *compressor, Scheme::kFp32).throughput;
      double best_baseline = fp32;
      for (Scheme scheme :
           {Scheme::kBytePSCompress, Scheme::kHiTopKComm, Scheme::kHiPress}) {
        best_baseline = std::max(
            best_baseline, RunScheme(model, cluster, *compressor, scheme).throughput);
      }
      const double espresso =
          RunScheme(model, cluster, *compressor, Scheme::kEspresso).throughput;
      const double margin = espresso / best_baseline - 1.0;
      if (margin + 1e-6 < previous_margin && machines > 4) {
        monotone = false;
      }
      previous_margin = std::max(previous_margin, margin);
      table.AddRow({std::to_string(machines * cluster.gpus_per_machine),
                    TextTable::Num(fp32, 0), TextTable::Num(best_baseline, 0),
                    TextTable::Num(espresso, 0), TextTable::Percent(margin, 1)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << (monotone
                    ? "Shape check PASSED: Espresso's margin over the best baseline does "
                      "not shrink as the cluster grows\n"
                    : "Shape check NOTE: margin dipped at some scale (see table)\n");
  return 0;
}

// Option-space statistics (§4.4.1): the size of the compression-option space |C| that
// makes brute force intractable, for several cluster shapes and with/without
// compressed-domain aggregation. The paper quotes |C| = 4341 for its full tree; the
// structure (hundreds of structural paths times 2^slots device choices) is the
// contract, and EXPERIMENTS.md records our constant.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/decision_tree.h"
#include "src/util/table.h"

namespace {

using namespace espresso;

void BM_EnumerateOptions(benchmark::State& state) {
  const TreeConfig config{static_cast<size_t>(state.range(0)),
                          static_cast<size_t>(state.range(1)), state.range(2) != 0};
  for (auto _ : state) {
    OptionSpace space = EnumerateOptions(config);
    benchmark::DoNotOptimize(space.options.data());
  }
}
BENCHMARK(BM_EnumerateOptions)
    ->Args({8, 8, 0})
    ->Args({8, 8, 1})
    ->Args({16, 4, 0})
    ->Args({1, 8, 0})
    ->Unit(benchmark::kMicrosecond);

void BM_CandidateOptions(benchmark::State& state) {
  const TreeConfig config{8, 8, state.range(0) != 0};
  for (auto _ : state) {
    auto candidates = CandidateOptions(config);
    benchmark::DoNotOptimize(candidates.data());
  }
}
BENCHMARK(BM_CandidateOptions)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace espresso;
  TextTable table({"Cluster", "compressed agg", "structural paths", "|C| with devices",
                   "Algorithm-1 candidates"});
  struct Shape {
    size_t machines, gpus;
    bool agg;
  };
  for (const Shape& s : {Shape{8, 8, false}, Shape{8, 8, true}, Shape{16, 4, false},
                         Shape{1, 8, false}, Shape{4, 1, false}}) {
    const TreeConfig config{s.machines, s.gpus, s.agg};
    const OptionSpace space = EnumerateOptions(config);
    table.AddRow({std::to_string(s.machines) + "x" + std::to_string(s.gpus),
                  s.agg ? "yes" : "no", std::to_string(space.options.size()),
                  std::to_string(space.TotalWithDeviceChoices()),
                  std::to_string(CandidateOptions(config).size())});
  }
  std::cout << "\nOption-space sizes (paper quotes |C| = 4341 for its tree)\n";
  table.Print(std::cout);
  benchmark::Shutdown();
  return 0;
}

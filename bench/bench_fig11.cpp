// Figure 11: number of tensors sharing the same size, per model. Few distinct sizes is
// what keeps Algorithm 2's product space small (Theorem 1, Table 6).
#include <algorithm>
#include <iostream>

#include "src/models/model_stats.h"
#include "src/models/model_zoo.h"
#include "src/util/table.h"

int main() {
  using namespace espresso;
  TextTable table({"Model", "# tensors", "distinct sizes", "largest group",
                   "top size groups (size x count)"});
  for (const ModelProfile& model : AllModels()) {
    const auto histogram = SizeHistogram(model);
    size_t largest = 0;
    // Pick the three most-populated size groups for the summary column.
    std::vector<std::pair<size_t, size_t>> by_count(histogram.begin(), histogram.end());
    std::sort(by_count.begin(), by_count.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::string top;
    for (size_t i = 0; i < std::min<size_t>(3, by_count.size()); ++i) {
      largest = std::max(largest, by_count[i].second);
      if (!top.empty()) {
        top += ", ";
      }
      top += std::to_string(by_count[i].first) + "x" + std::to_string(by_count[i].second);
    }
    table.AddRow({model.name, std::to_string(model.TensorCount()),
                  std::to_string(histogram.size()), std::to_string(largest), top});
  }
  std::cout << "Figure 11: tensors sharing the same size per model\n";
  table.Print(std::cout);
  std::cout << "\nPaper's point: hundreds of tensors collapse into a handful of size "
               "groups, so Algorithm 2's offload space stays a few thousand choices\n";
  return 0;
}

// Table 1: scaling factors of three popular DNN models with 64 GPUs and hierarchical
// communication. FP32 is training without GC; "GC with GPU" / "GC with CPU" apply the
// paper's per-model compression algorithm on the respective device (the GPU/CPU-only
// framework configurations the paper measured).
//
// Paper reference values (64 GPUs):
//   GPT2      NVLink+100Gbps  FP32 0.58   GC-GPU 0.67 (+15%)  GC-CPU 0.64 (+10%)
//   BERT-base NVLink+100Gbps  FP32 0.51   GC-GPU 0.55 (+8%)   GC-CPU 0.61 (+20%)
//   LSTM      PCIe+25Gbps     FP32 0.46   GC-GPU 0.43 (-6%)   GC-CPU 0.42 (-9%)
#include <iostream>

#include "src/compress/compressor.h"
#include "src/core/baselines.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"
#include "src/util/table.h"

int main() {
  using namespace espresso;
  struct Row {
    const char* model;
    const char* algorithm;
    bool pcie;
  };
  const Row rows[] = {
      {"gpt2", "dgc", false},
      {"bert-base", "efsignsgd", false},
      {"lstm", "dgc", true},
  };

  TextTable table({"Model", "Networks", "FP32", "GC with GPU", "GC with CPU"});
  for (const Row& row : rows) {
    const ModelProfile model = GetModel(row.model);
    const ClusterSpec cluster = row.pcie ? PcieCluster() : NvlinkCluster();
    const auto compressor = CreateCompressor(
        CompressorConfig{.algorithm = row.algorithm, .ratio = 0.01});

    const double fp32 =
        RunScheme(model, cluster, *compressor, Scheme::kFp32).scaling_factor;
    // GC with GPU: the GPU-compression framework configuration (HiPress-style
    // selective inter-machine compression on GPUs).
    const double gpu = MeasureThroughput(model, cluster, *compressor,
                                         HiPressStrategy(model, cluster, *compressor))
                           .scaling_factor;
    // GC with CPU: the CPU-compression framework configuration — every tensor
    // compressed on host CPUs for the inter-machine phase (sharded after the intra
    // reduce-scatter, unlike the PS-style BytePS-Compress baseline of Figures 12-13).
    const Strategy cpu_strategy = UniformStrategy(
        model.tensors.size(), InterOnlyIndivisibleOption(cluster, Device::kCpu));
    const double cpu =
        MeasureThroughput(model, cluster, *compressor, cpu_strategy).scaling_factor;

    auto delta = [&](double v) {
      return TextTable::Num(v, 2) + " (" +
             (v >= fp32 ? "+" : "") + TextTable::Percent((v - fp32) / fp32, 0) + ")";
    };
    table.AddRow({model.name, row.pcie ? "PCIe, 25Gbps" : "NVLink, 100Gbps",
                  TextTable::Num(fp32, 2), delta(gpu), delta(cpu)});
  }
  std::cout << "Table 1: scaling factors with 64 GPUs (8 GPUs per machine)\n";
  table.Print(std::cout);
  std::cout << "\nPaper: GPT2 0.58/0.67/0.64; BERT-base 0.51/0.55/0.61; "
               "LSTM 0.46/0.43/0.42\n";
  return 0;
}

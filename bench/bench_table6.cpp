// Table 6: the time to find the best CPU offloading solution (Algorithm 2), with the
// number of tensors left for offloading after Algorithm 1, against brute force over all
// 2^k offload subsets (estimated when infeasible).
//
// Paper reference: VGG16 1ms/1ms | ResNet101 30ms/>24h | UGATIT 12ms/1.9h |
//                  BERT-base 44ms/>24h | GPT2 18ms/7.6h | LSTM 1ms/1ms
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <iostream>
#include <map>

#include "src/core/brute_force.h"
#include "src/core/espresso.h"
#include "src/models/model_zoo.h"
#include "src/util/table.h"

namespace {

using namespace espresso;

const char* AlgorithmFor(const std::string& model) {
  if (model == "bert-base") {
    return "randomk";
  }
  if (model == "gpt2") {
    return "efsignsgd";
  }
  return "dgc";
}

struct Measurement {
  double offload_seconds = 0.0;
  size_t offload_tensors = 0;
  size_t combinations = 0;
  bool exact = true;
  double per_eval = 1e-4;
};
std::map<std::string, Measurement> g_measurements;

void BM_OffloadSearch(benchmark::State& state, const std::string& model_name) {
  const ModelProfile model = GetModel(model_name);
  const ClusterSpec cluster = NvlinkCluster();
  const auto compressor = CreateCompressor(
      CompressorConfig{.algorithm = AlgorithmFor(model_name), .ratio = 0.01});
  EspressoSelector selector(model, cluster, *compressor);
  const Strategy gpu_stage = selector.SelectGpuCompression();

  Measurement m;
  for (const auto& option : gpu_stage.options) {
    if (option.Compressed() && option.UsesDevice(Device::kGpu)) {
      ++m.offload_tensors;
    }
  }
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    size_t combos = 0;
    bool exact = true;
    size_t evals = 0;
    const Strategy offloaded = selector.OffloadToCpu(gpu_stage, &combos, &exact, &evals);
    benchmark::DoNotOptimize(offloaded.options.data());
    m.offload_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    m.combinations = combos;
    m.exact = exact;
    if (evals > 0) {
      m.per_eval = m.offload_seconds / static_cast<double>(evals);
    }
  }
  g_measurements[model_name] = m;
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"vgg16", "resnet101", "ugatit", "bert-base", "gpt2", "lstm"}) {
    const std::string label = std::string("OffloadSearch/") + name;
    const std::string model_name = name;
    benchmark::RegisterBenchmark(
        label.c_str(), [model_name](benchmark::State& state) { BM_OffloadSearch(state, model_name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  TextTable table({"", "VGG16", "ResNet101", "UGATIT", "BERT-base", "GPT2", "LSTM"});
  std::vector<std::string> tensors = {"# of Tensors"};
  std::vector<std::string> espresso_row = {"Espresso"};
  std::vector<std::string> combos_row = {"U combinations"};
  std::vector<std::string> brute_row = {"Brute force"};
  for (const char* name : {"vgg16", "resnet101", "ugatit", "bert-base", "gpt2", "lstm"}) {
    const Measurement& m = g_measurements[name];
    tensors.push_back(std::to_string(m.offload_tensors));
    espresso_row.push_back(TextTable::Num(m.offload_seconds * 1e3, 1) + "ms" +
                           (m.exact ? "" : "*"));
    combos_row.push_back(std::to_string(m.combinations));
    // Brute force: 2^k offload subsets at the measured per-evaluation cost.
    double brute = 1e18;
    if (m.offload_tensors < 60) {
      brute = m.per_eval * std::pow(2.0, static_cast<double>(m.offload_tensors));
    }
    brute_row.push_back(brute >= 24 * 3600.0
                            ? "> 24h"
                            : (brute >= 1.0 ? TextTable::Num(brute, 1) + "s"
                                            : TextTable::Num(brute * 1e3, 1) + "ms"));
  }
  table.AddRow(tensors);
  table.AddRow(espresso_row);
  table.AddRow(combos_row);
  table.AddRow(brute_row);
  std::cout << "\nTable 6: time to find the best CPU offloading ("
               "* = coordinate descent beyond the exhaustive budget)\n";
  table.Print(std::cout);
  std::cout << "Paper: Espresso 1/30/12/44/18/1 ms; brute force 1ms/>24h/1.9h/>24h/7.6h/1ms\n";
  benchmark::Shutdown();
  return 0;
}

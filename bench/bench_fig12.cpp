// Figure 12: training throughput on NVLink-based GPU machines with 100Gbps Ethernet:
// (a) BERT-base + Random-k, (b) GPT2 + EFSignSGD, (c) UGATIT + DGC, each across
// 8..64 GPUs for FP32 / BytePS-Compress / HiTopKComm / HiPress / Espresso /
// Upper Bound.
//
// Paper highlights at 64 GPUs: BERT-base — Espresso beats BytePS-Compress/HiTopKComm/
// HiPress by 31%/54%/40%; GPT2 — beats BytePS-Compress/HiPress by 42%/33%;
// UGATIT — beats FP32/BytePS-Compress/HiTopKComm/HiPress by 149%/205%/50%/35%
// (BytePS-Compress harms UGATIT).
#include "bench/bench_common.h"

int main() {
  using namespace espresso;
  std::cout << "Figure 12: throughput with NVLink machines + 100Gbps Ethernet\n\n";
  RunThroughputSweep("bert-base", "randomk", /*pcie=*/false);
  RunThroughputSweep("gpt2", "efsignsgd", /*pcie=*/false);
  RunThroughputSweep("ugatit", "dgc", /*pcie=*/false);
  return 0;
}

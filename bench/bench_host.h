// Host capability block shared by the JSON-report benchmarks (bench_executor,
// bench_selector). Committed baselines carry it so a fingerprint divergence can be
// traced back to the machine that produced the report: logical cpu count, the kernel
// ISA features the host exposes, and the table the kernel registry actually picked.
// Fingerprints themselves are ISA-independent (every SIMD table is bit-identical to
// the scalar reference), so --check never compares this block.
#ifndef BENCH_BENCH_HOST_H_
#define BENCH_BENCH_HOST_H_

#include <cstdint>
#include <thread>

#include "src/compress/kernels/kernels.h"
#include "src/util/json_writer.h"

namespace espresso {

inline void WriteHostBlock(JsonWriter& json) {
  json.Key("host");
  json.BeginObject();
  json.Field("cpus", static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.Field("active_kernel_isa", kernels::Active().isa);
  json.Key("isa_features");
  json.BeginArray();
  for (const char* feature : kernels::HostIsaFeatures()) {
    json.Value(feature);
  }
  json.EndArray();
  json.EndObject();
}

}  // namespace espresso

#endif  // BENCH_BENCH_HOST_H_

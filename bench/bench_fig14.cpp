// Figure 14: cumulative distribution of the performance difference from the Upper Bound
// across every (model x GC algorithm) combination with 64 GPUs, for both testbeds.
// The paper's claim: Espresso stays within 10% of the Upper Bound everywhere, while
// every baseline has a long tail.
#include <iostream>
#include <map>

#include "src/compress/compressor.h"
#include "src/ddl/experiment.h"
#include "src/models/model_zoo.h"
#include "src/util/stats.h"
#include "src/util/table.h"

int main() {
  using namespace espresso;
  const char* algorithms[] = {"randomk", "dgc", "efsignsgd"};
  const Scheme schemes[] = {Scheme::kBytePSCompress, Scheme::kHiTopKComm, Scheme::kHiPress,
                            Scheme::kEspresso};

  for (bool pcie : {false, true}) {
    std::cout << "Figure 14" << (pcie ? "(b): PCIe-only machines" : "(a): NVLink machines")
              << ", 64 GPUs — perf. difference from Upper Bound\n";
    const ClusterSpec cluster = pcie ? PcieCluster() : NvlinkCluster();

    std::map<Scheme, std::vector<double>> differences;
    for (const ModelProfile& model : AllModels()) {
      for (const char* algorithm : algorithms) {
        const auto compressor =
            CreateCompressor(CompressorConfig{.algorithm = algorithm, .ratio = 0.01});
        const double bound =
            RunScheme(model, cluster, *compressor, Scheme::kUpperBound).throughput;
        for (Scheme scheme : schemes) {
          const double t = RunScheme(model, cluster, *compressor, scheme).throughput;
          differences[scheme].push_back((bound - t) / bound * 100.0);
        }
      }
    }

    TextTable table({"Scheme", "p25", "median", "p75", "p90", "max"});
    for (Scheme scheme : schemes) {
      auto& d = differences[scheme];
      table.AddRow({SchemeName(scheme), TextTable::Num(Percentile(d, 25), 1) + "%",
                    TextTable::Num(Percentile(d, 50), 1) + "%",
                    TextTable::Num(Percentile(d, 75), 1) + "%",
                    TextTable::Num(Percentile(d, 90), 1) + "%",
                    TextTable::Num(Percentile(d, 100), 1) + "%"});
    }
    table.Print(std::cout);

    // Full Espresso CDF (the paper's headline series).
    std::cout << "Espresso CDF: ";
    for (const CdfPoint& p : EmpiricalCdf(differences[Scheme::kEspresso])) {
      std::cout << TextTable::Num(p.value, 1) << "%@" << TextTable::Num(p.cumulative, 2)
                << " ";
    }
    std::cout << "\n\n";
  }
  std::cout << "Paper: Espresso always within 10% of Upper Bound (e.g. GPT2+EFSignSGD 3%, "
               "UGATIT+DGC 5%, BERT-base+Randomk 7%)\n";
  return 0;
}

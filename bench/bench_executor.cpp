// Executor dataplane benchmark: steady-state step time and heap-allocation counts for
// the pooled execution path, in two arms per scenario —
//   cold: a fresh ExecutorWorkspace per step (every container re-grown from nothing);
//   warm: ONE workspace reused across steps (the trainer/strategy configuration) —
// asserts the two arms produce bit-identical aggregates (64-bit fingerprint equality),
// asserts the warm arm performs ZERO heap allocations per measured step, and emits a
// JSON report suitable for committing as BENCH_executor.json.
//
// Usage:
//   bench_executor [--quick] [--out FILE] [--check FILE]
//
// --quick   fewer measured steps (CI perf-smoke mode)
// --out     write the JSON report to FILE instead of stdout
// --check   compare this run's result fingerprints against a committed report; exit 1
//           on any divergence (the committed timings are informational only)
//
// The global allocating operators are replaced with counting forwarders, which is why
// this lives in its own binary: the zero-allocation claim is measured, not inferred.
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {
std::atomic<unsigned long long> g_allocations{0};

unsigned long long AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_host.h"
#include "src/compress/kernels/kernels.h"
#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/ddl/strategy_executor.h"
#include "src/mem/arena.h"
#include "src/mem/batch_plan.h"
#include "src/util/json_writer.h"
#include "src/util/rng.h"

namespace {

using namespace espresso;

struct Scenario {
  std::string name;
  CompressorConfig compressor;
  bool aggregation_tree = false;  // EnumerateOptions({2,2,true}) instead of candidates
  size_t elements = 4096;
};

const Scenario kScenarios[] = {
    {"fp16-candidates", {.algorithm = "fp16"}, false, 4096},
    {"topk-candidates", {.algorithm = "topk", .ratio = 0.05}, false, 4096},
    {"qsgd-candidates", {.algorithm = "qsgd", .bits = 4}, false, 4096},
    {"randomk-aggregation", {.algorithm = "randomk", .ratio = 0.05}, true, 4096},
};

std::vector<CompressionOption> ScenarioOptions(const Scenario& scenario) {
  if (scenario.aggregation_tree) {
    return EnumerateOptions(TreeConfig{2, 2, true}).options;
  }
  const ClusterSpec cluster = NvlinkCluster(2, 2);
  std::vector<CompressionOption> options = CandidateOptions(TreeConfig{2, 2, false});
  options.push_back(InterOnlyIndivisibleOption(cluster, Device::kGpu));
  options.push_back(InterOnlyDivisibleOption(cluster, Device::kGpu));
  options.push_back(AlltoallAlltoallOption(cluster, Device::kGpu));
  return options;
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string HexFingerprint(uint64_t fp) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, fp);
  return buf;
}

struct ArmResult {
  double step_seconds = 0.0;               // min measured step wall time
  unsigned long long allocations = 0;      // heap allocations across measured steps
  uint64_t fingerprint = 0x0CF1BBCDCB7A5AULL;  // FNV offset basis variant
};

// Runs `steps` measured steps (after `warmup` unmeasured ones). `shared` selects the
// warm arm: one workspace for every step; the cold arm constructs a workspace per
// step. Both arms execute the identical option/seed/gradient sequence and fold every
// rank's final bits into the fingerprint.
ArmResult RunArm(const Scenario& scenario, const std::vector<CompressionOption>& options,
                 bool shared, int warmup, int steps) {
  const size_t ranks = 4;
  RankBuffers initial(ranks, std::vector<float>(scenario.elements));
  for (size_t r = 0; r < ranks; ++r) {
    Rng rng(DeriveSeed(2024, r));
    rng.FillNormal(initial[r], 0.0, 1.0);
  }
  RankBuffers buffers = initial;
  const auto compressor = CreateCompressor(scenario.compressor);
  std::vector<ErrorFeedback> feedback(ranks);
  ExecutorWorkspace workspace;  // used by the warm arm only

  ArmResult arm;
  arm.step_seconds = 1e300;
  for (int step = 0; step < warmup + steps; ++step) {
    const bool measured = step >= warmup;
    const auto start = std::chrono::steady_clock::now();
    const unsigned long long allocs_before = AllocationCount();
    ExecutorWorkspace* ws = &workspace;
    std::optional<ExecutorWorkspace> cold;
    if (!shared) {
      cold.emplace();  // the cold arm pays construction + growth every step
      ws = &*cold;
    }
    for (size_t o = 0; o < options.size(); ++o) {
      ExecutorConfig config{.machines = 2, .gpus_per_machine = 2,
                            .compressor = compressor.get(), .feedback = &feedback,
                            .seed = static_cast<uint64_t>(step)};
      for (size_t r = 0; r < ranks; ++r) {
        buffers[r].assign(initial[r].begin(), initial[r].end());
      }
      ExecuteOption(options[o], config, /*tensor_id=*/o, buffers, ws);
      // Fold only the first 3 measured steps so --quick (3 steps) and the full run
      // (10 steps) produce the same fingerprint and --check works across modes.
      if (measured && step < warmup + 3) {
        for (size_t r = 0; r < ranks; ++r) {
          arm.fingerprint = Fnv1a(arm.fingerprint, buffers[r].data(),
                                  buffers[r].size() * sizeof(float));
        }
      }
    }
    const unsigned long long allocs = AllocationCount() - allocs_before;
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start).count();
    if (measured) {
      arm.allocations += allocs;
      arm.step_seconds = std::min(arm.step_seconds, seconds);
    }
  }
  return arm;
}

// --- Kernel throughput arms ----------------------------------------------------------
//
// Per-compressor elements/s over the five vectorized hot loops, three arms each:
//   scalar:  per-tensor Compress with the scalar reference table forced;
//   simd:    per-tensor Compress with the best host-supported table forced;
//   batched: the SoA path — all tensors staged into one BatchedCompressPlan column
//            (the staging copy is part of the measured time) and compressed in a
//            single CompressBatch on the best table.
// All three arms see identical (data, seed) pairs, so their payloads must be
// byte-identical; the run aborts with exit 1 if any arm's payload fingerprint
// diverges. The fingerprint is computed on the scalar arm, which makes it
// host-independent and safe to --check against a baseline from any ISA.

struct KernelScenario {
  std::string name;
  CompressorConfig compressor;
};

const KernelScenario kKernelScenarios[] = {
    {"kernel-topk", {.algorithm = "topk", .ratio = 0.05}},
    {"kernel-qsgd", {.algorithm = "qsgd", .bits = 4}},
    {"kernel-terngrad", {.algorithm = "terngrad"}},
    {"kernel-efsignsgd", {.algorithm = "efsignsgd"}},
    {"kernel-fp16", {.algorithm = "fp16"}},
};

// The kernel workload mirrors the trainer's batching shape: many tensors at the
// default batch cutoff size.
constexpr size_t kKernelTensors = 64;
constexpr size_t kKernelElements = 4096;

uint64_t FoldPayload(uint64_t fp, const CompressedTensor& p) {
  fp = Fnv1a(fp, &p.original_elements, sizeof(p.original_elements));
  fp = Fnv1a(fp, p.indices.data(), p.indices.size() * sizeof(uint32_t));
  fp = Fnv1a(fp, p.values.data(), p.values.size() * sizeof(float));
  fp = Fnv1a(fp, p.scales.data(), p.scales.size() * sizeof(float));
  fp = Fnv1a(fp, p.bytes.data(), p.bytes.size());
  return fp;
}

struct KernelArmResult {
  double elements_per_second = 0.0;  // total elements / min pass wall time
  uint64_t fingerprint = 0;          // all payloads, in tensor order
};

uint64_t FingerprintPayloads(const std::vector<CompressedTensor>& payloads) {
  uint64_t fp = 0x0CF1BBCDCB7A5AULL;
  for (const CompressedTensor& p : payloads) {
    fp = FoldPayload(fp, p);
  }
  return fp;
}

// Per-tensor Compress arm with `table` forced (nullptr = automatic best choice).
KernelArmResult RunKernelPerTensorArm(const Compressor& compressor,
                                      const kernels::KernelOps* table,
                                      const std::vector<std::vector<float>>& tensors,
                                      std::vector<CompressedTensor>& payloads,
                                      int passes) {
  kernels::SetActiveForTesting(table);
  double best = 1e300;
  size_t total = 0;
  for (const auto& t : tensors) {
    total += t.size();
  }
  for (int pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t t = 0; t < tensors.size(); ++t) {
      compressor.Compress(tensors[t], DeriveSeed(2024, t), &payloads[t]);
    }
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start).count());
  }
  kernels::SetActiveForTesting(nullptr);
  KernelArmResult arm;
  arm.elements_per_second = best > 0 ? static_cast<double>(total) / best : 0.0;
  arm.fingerprint = FingerprintPayloads(payloads);
  return arm;
}

// SoA-batched arm on the best table: stage + CompressBatch per pass, both measured.
KernelArmResult RunKernelBatchedArm(const Compressor& compressor,
                                    const std::vector<std::vector<float>>& tensors,
                                    std::vector<CompressedTensor>& payloads,
                                    int passes) {
  mem::Arena arena;
  mem::BatchedCompressPlan plan;
  size_t padded_total = 0;
  size_t total = 0;
  for (const auto& t : tensors) {
    padded_total += mem::BatchedCompressPlan::Padded(t.size());
    total += t.size();
  }
  double best = 1e300;
  for (int pass = 0; pass < passes; ++pass) {
    mem::ArenaScope scope(arena);
    const auto start = std::chrono::steady_clock::now();
    plan.Begin(arena, padded_total);
    for (size_t t = 0; t < tensors.size(); ++t) {
      std::span<float> slot = plan.Stage(tensors[t].size(), DeriveSeed(2024, t),
                                         &payloads[t]);
      std::copy(tensors[t].begin(), tensors[t].end(), slot.begin());
    }
    plan.Execute(compressor);
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start).count());
  }
  KernelArmResult arm;
  arm.elements_per_second = best > 0 ? static_cast<double>(total) / best : 0.0;
  arm.fingerprint = FingerprintPayloads(payloads);
  return arm;
}

// Positional scan of a committed report for "name" -> "result_fingerprint" (the report
// is machine-written by this binary; the repo deliberately ships only a JSON writer).
bool BaselineFingerprint(const std::string& text, const std::string& name,
                         std::string* fingerprint) {
  const std::string name_marker = "\"name\":\"" + name + "\"";
  const size_t at = text.find(name_marker);
  if (at == std::string::npos) {
    return false;
  }
  const std::string fp_marker = "\"result_fingerprint\":\"";
  const size_t fp_at = text.find(fp_marker, at);
  if (fp_at == std::string::npos) {
    return false;
  }
  const size_t begin = fp_at + fp_marker.size();
  const size_t end = text.find('"', begin);
  if (end == std::string::npos) {
    return false;
  }
  *fingerprint = text.substr(begin, end - begin);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  // Capacities circulate between workspace containers (StableVec::Swap exchanges whole
  // backing stores between the gather/alltoall staging vectors and per-rank payload
  // sets), so a buffer reaches its orbit's peak capacity only after visiting every
  // growth site: steady state arrives after 3 full option cycles, measured 4 for margin.
  const int warmup = 4;
  const int steps = quick ? 3 : 10;

  std::string baseline;
  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    baseline = buf.str();
  }

  std::ostringstream report;
  JsonWriter json(report);
  json.BeginObject();
  json.Field("benchmark", "bench_executor");
  json.Field("quick", quick);
  json.Field("warmup_steps", static_cast<int64_t>(warmup));
  json.Field("measured_steps", static_cast<int64_t>(steps));
  WriteHostBlock(json);
  json.Key("scenarios");
  json.BeginArray();

  bool failed = false;
  bool check_failed = false;
  for (const Scenario& scenario : kScenarios) {
    const std::vector<CompressionOption> options = ScenarioOptions(scenario);
    const ArmResult cold = RunArm(scenario, options, /*shared=*/false, warmup, steps);
    const ArmResult warm = RunArm(scenario, options, /*shared=*/true, warmup, steps);

    if (cold.fingerprint != warm.fingerprint) {
      std::cerr << "FATAL: " << scenario.name
                << ": pooled (warm) arm diverged from per-step (cold) arm (cold "
                << HexFingerprint(cold.fingerprint) << ", warm "
                << HexFingerprint(warm.fingerprint) << ")\n";
      failed = true;
    }
    if (warm.allocations != 0) {
      std::cerr << "FATAL: " << scenario.name << ": warm arm performed "
                << warm.allocations << " heap allocations in " << steps
                << " steady-state steps (expected 0)\n";
      failed = true;
    }
    const double speedup =
        warm.step_seconds > 0 ? cold.step_seconds / warm.step_seconds : 0.0;
    const std::string fingerprint = HexFingerprint(warm.fingerprint);

    json.BeginObject();
    json.Field("name", scenario.name);
    json.Field("compressor", scenario.compressor.algorithm);
    json.Field("options", static_cast<uint64_t>(options.size()));
    json.Field("elements", static_cast<uint64_t>(scenario.elements));
    json.Field("result_fingerprint", fingerprint);
    json.Field("cold_step_seconds", cold.step_seconds);
    json.Field("warm_step_seconds", warm.step_seconds);
    json.Field("speedup", speedup);
    json.Field("cold_allocations_per_step",
               static_cast<uint64_t>(cold.allocations / static_cast<unsigned>(steps)));
    json.Field("warm_steady_state_allocations", static_cast<uint64_t>(warm.allocations));
    json.EndObject();

    std::fprintf(stderr,
                 "%-22s cold %8.3fms (%6llu allocs/step)  warm %8.3fms (%llu allocs, "
                 "%.2fx)  %s\n",
                 scenario.name.c_str(), cold.step_seconds * 1e3,
                 cold.allocations / static_cast<unsigned long long>(steps),
                 warm.step_seconds * 1e3, warm.allocations, speedup,
                 fingerprint.c_str());

    if (!check_path.empty()) {
      std::string expected;
      if (!BaselineFingerprint(baseline, scenario.name, &expected)) {
        std::fprintf(stderr, "%-22s not in baseline, skipping check\n",
                     scenario.name.c_str());
      } else if (expected != fingerprint) {
        std::fprintf(stderr, "FAIL: %s fingerprint %s != committed %s\n",
                     scenario.name.c_str(), fingerprint.c_str(), expected.c_str());
        check_failed = true;
      }
    }
  }

  json.EndArray();

  // Kernel throughput arms: scalar vs best-ISA vs SoA-batched, payload-identical.
  const int kernel_passes = quick ? 5 : 30;
  const kernels::KernelOps* best = kernels::SupportedOps().back();
  json.Key("kernels");
  json.BeginArray();
  for (const KernelScenario& scenario : kKernelScenarios) {
    std::vector<std::vector<float>> tensors(kKernelTensors,
                                            std::vector<float>(kKernelElements));
    for (size_t t = 0; t < kKernelTensors; ++t) {
      Rng rng(DeriveSeed(77, t));
      rng.FillNormal(tensors[t], 0.0, 1.0);
    }
    std::vector<CompressedTensor> payloads(kKernelTensors);
    const auto compressor = CreateCompressor(scenario.compressor);

    const KernelArmResult scalar = RunKernelPerTensorArm(
        *compressor, &kernels::Scalar(), tensors, payloads, kernel_passes);
    const KernelArmResult simd =
        RunKernelPerTensorArm(*compressor, best, tensors, payloads, kernel_passes);
    const KernelArmResult batched =
        RunKernelBatchedArm(*compressor, tensors, payloads, kernel_passes);

    if (simd.fingerprint != scalar.fingerprint ||
        batched.fingerprint != scalar.fingerprint) {
      std::cerr << "FATAL: " << scenario.name << ": payload divergence (scalar "
                << HexFingerprint(scalar.fingerprint) << ", " << best->isa << " "
                << HexFingerprint(simd.fingerprint) << ", batched "
                << HexFingerprint(batched.fingerprint) << ")\n";
      failed = true;
    }
    const double simd_speedup = scalar.elements_per_second > 0
                                    ? simd.elements_per_second / scalar.elements_per_second
                                    : 0.0;
    const double batched_speedup =
        scalar.elements_per_second > 0
            ? batched.elements_per_second / scalar.elements_per_second
            : 0.0;
    const std::string fingerprint = HexFingerprint(scalar.fingerprint);

    json.BeginObject();
    json.Field("name", scenario.name);
    json.Field("compressor", scenario.compressor.algorithm);
    json.Field("tensors", static_cast<uint64_t>(kKernelTensors));
    json.Field("elements_per_tensor", static_cast<uint64_t>(kKernelElements));
    json.Field("result_fingerprint", fingerprint);
    json.Field("scalar_elements_per_second", scalar.elements_per_second);
    json.Field("simd_isa", best->isa);
    json.Field("simd_elements_per_second", simd.elements_per_second);
    json.Field("simd_speedup", simd_speedup);
    json.Field("batched_elements_per_second", batched.elements_per_second);
    json.Field("batched_speedup", batched_speedup);
    json.EndObject();

    std::fprintf(stderr,
                 "%-22s scalar %8.1fMe/s  %-6s %8.1fMe/s (%.2fx)  batched %8.1fMe/s "
                 "(%.2fx)  %s\n",
                 scenario.name.c_str(), scalar.elements_per_second * 1e-6, best->isa,
                 simd.elements_per_second * 1e-6, simd_speedup,
                 batched.elements_per_second * 1e-6, batched_speedup,
                 fingerprint.c_str());

    if (!check_path.empty()) {
      std::string expected;
      if (!BaselineFingerprint(baseline, scenario.name, &expected)) {
        std::fprintf(stderr, "%-22s not in baseline, skipping check\n",
                     scenario.name.c_str());
      } else if (expected != fingerprint) {
        std::fprintf(stderr, "FAIL: %s fingerprint %s != committed %s\n",
                     scenario.name.c_str(), fingerprint.c_str(), expected.c_str());
        check_failed = true;
      }
    }
  }
  json.EndArray();
  json.EndObject();
  report << "\n";

  if (out_path.empty()) {
    std::cout << report.str();
  } else {
    std::ofstream out(out_path);
    out << report.str();
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
  }
  if (check_failed) {
    std::cerr << "executor diverged from the committed baseline\n";
    return 1;
  }
  return failed ? 1 : 0;
}
